# Liquid Metal reproduction — common development targets.

PYTHON ?= python

.PHONY: test bench examples all clean

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/gpu_option_pricing.py
	$(PYTHON) examples/fpga_waveform.py
	$(PYTHON) examples/heterogeneous_pipeline.py
	$(PYTHON) examples/adaptive_migration.py
	$(PYTHON) examples/reproduce_speedups.py

all: test bench

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
