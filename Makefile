# Liquid Metal reproduction — common development targets.

PYTHON ?= python

.PHONY: test bench bench-smoke bench-gate examples trace-smoke \
	fault-smoke profile-smoke health-smoke harvest-smoke serve-smoke \
	recover-smoke all clean

test: trace-smoke fault-smoke profile-smoke health-smoke harvest-smoke \
		serve-smoke recover-smoke bench-smoke bench-gate
	$(PYTHON) -m pytest tests/

# The -m "" overrides pyproject's default "not slow" filter so the
# full-scale benchmark variants run too.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -m ""

# Fast marshaling/fusion/cache/recovery benchmarks: produce
# benchmarks/out/BENCH_marshal.json (>=2x batched throughput bar,
# docs/PERFORMANCE.md), benchmarks/out/BENCH_fusion.json (>=2x
# fused device-path speedup with strictly fewer boundary crossings,
# docs/FUSION.md), and benchmarks/out/BENCH_recovery.json (<10%
# modeled checkpoint overhead at the default cadence,
# docs/RECOVERY.md) without the slow variants.
bench-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest \
		benchmarks/test_bench_marshal_batch.py \
		benchmarks/test_bench_fusion.py \
		benchmarks/test_bench_artifact_cache.py \
		benchmarks/test_bench_recovery.py \
		--benchmark-disable -q

# The performance-trajectory regression gate (docs/TRAJECTORY.md):
# compare the last two committed snapshots under benchmarks/changelogs/
# and fail on any >10% modeled regression along the critical path.
# Skips gracefully (exit 0) while the changelog has fewer than two
# entries, so a fresh checkout still builds.
bench-gate:
	PYTHONPATH=src $(PYTHON) -m repro bench gate --threshold 10

# AOT-harvest the whole app suite into a scratch cache, prove every
# backend warm-starts (the harvest command exits non-zero otherwise),
# then integrity-check every stored entry and print the stats summary
# (docs/CACHING.md).
harvest-smoke:
	mkdir -p benchmarks/out
	rm -rf benchmarks/out/cache_smoke
	PYTHONPATH=src $(PYTHON) -m repro harvest \
		--cache-dir benchmarks/out/cache_smoke \
		-o benchmarks/out/harvest_smoke.json > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro cache verify \
		--cache-dir benchmarks/out/cache_smoke
	PYTHONPATH=src $(PYTHON) -m repro cache stats \
		--cache-dir benchmarks/out/cache_smoke

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/gpu_option_pricing.py
	$(PYTHON) examples/fpga_waveform.py
	$(PYTHON) examples/heterogeneous_pipeline.py
	$(PYTHON) examples/adaptive_migration.py
	$(PYTHON) examples/reproduce_speedups.py

# Export a Chrome trace end-to-end and re-validate it against the
# trace-event schema (the `python -m repro trace` command already
# validates in-process; the second load catches serialization bugs).
trace-smoke:
	mkdir -p benchmarks/out
	PYTHONPATH=src $(PYTHON) -m repro trace mandelbrot \
		-o benchmarks/out/trace_smoke.json \
		--jsonl benchmarks/out/trace_smoke.jsonl
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.obs import validate_trace_file; \
	validate_trace_file('benchmarks/out/trace_smoke.json'); \
	print('trace-smoke: benchmarks/out/trace_smoke.json valid')"

# Profile a GPU map app and a streaming graph app end-to-end, writing
# the machine-readable reports, then re-validate both files against
# the repro.profile/1 schema (docs/PROFILING.md). Catches regressions
# in the metrics registry, the profiler, and the report serializer.
profile-smoke:
	mkdir -p benchmarks/out
	PYTHONPATH=src $(PYTHON) -m repro profile mandelbrot --json \
		-o benchmarks/out/profile_smoke_mandelbrot.json > /dev/null
	PYTHONPATH=src $(PYTHON) -m repro profile bitflip \
		--scheduler threaded --json \
		-o benchmarks/out/profile_smoke_bitflip.json > /dev/null
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.obs import validate_profile_file; \
	validate_profile_file('benchmarks/out/profile_smoke_mandelbrot.json'); \
	validate_profile_file('benchmarks/out/profile_smoke_bitflip.json'); \
	print('profile-smoke: both profile reports valid')"

# Transient-window recovery end-to-end: the first device call fails, so
# the GPU span is demoted, shadow-probed after the breaker cools down,
# and re-promoted within the same run — with output identical to a
# cpu-only run — then the emitted report is re-validated against the
# repro.health/1 schema (docs/RESILIENCE.md).
health-smoke:
	mkdir -p benchmarks/out
	PYTHONPATH=src $(PYTHON) -m repro health gray_pipeline \
		--plan examples/fault_plans/transient_gpu_window.json \
		--scheduler sequential --batch-size 16 \
		--require-repromotions 1 \
		-o benchmarks/out/health_smoke.json > /dev/null
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.runtime import validate_health_file; \
	validate_health_file('benchmarks/out/health_smoke.json'); \
	print('health-smoke: benchmarks/out/health_smoke.json valid')"

# Multi-tenant co-execution service smoke: 3 tenants x 4 jobs through
# the long-lived service (admission control, device-pool leasing,
# shared breakers), every job verified bit-identical to a standalone
# run, report validated as repro.service/1 (docs/SERVICE.md).
serve-smoke:
	mkdir -p benchmarks/out
	PYTHONPATH=src $(PYTHON) -m repro serve \
		--tenants 3 --jobs-per-tenant 4 --scheduler sequential \
		--verify -o benchmarks/out/serve_smoke.json > /dev/null
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.service import validate_service_file; \
	validate_service_file('benchmarks/out/serve_smoke.json'); \
	print('serve-smoke: benchmarks/out/serve_smoke.json valid')"

# Crash-consistent recovery smoke: submit 6 jobs against a journaled
# service, crash at a seeded device consult, restart-and-recover in a
# loop until convergence, verify every job's digest is bit-identical
# to an uninterrupted baseline, then re-validate the emitted report
# against the repro.recover/1 schema (docs/RECOVERY.md).
recover-smoke:
	mkdir -p benchmarks/out
	rm -rf benchmarks/out/recover_smoke_journal
	PYTHONPATH=src $(PYTHON) -m repro recover \
		--journal-dir benchmarks/out/recover_smoke_journal \
		--jobs 6 --scheduler sequential --seed 1 --crash-call 3 \
		-o benchmarks/out/recover_smoke.json > /dev/null
	PYTHONPATH=src $(PYTHON) -c "\
	from repro.service import validate_recover_file; \
	validate_recover_file('benchmarks/out/recover_smoke.json'); \
	print('recover-smoke: benchmarks/out/recover_smoke.json valid')"

# Kill every accelerator call against a GPU map app and an FPGA stream
# app: both runs must still produce output identical to a cpu-only run,
# with at least one recorded demotion to bytecode (docs/RESILIENCE.md).
fault-smoke:
	PYTHONPATH=src $(PYTHON) -m repro faults mandelbrot \
		--plan examples/fault_plans/kill_devices.json \
		--require-demotions 1
	PYTHONPATH=src $(PYTHON) -m repro faults bitflip \
		--plan examples/fault_plans/kill_devices.json \
		--require-demotions 1

all: test bench

clean:
	rm -rf .pytest_cache .benchmarks benchmarks/out
	find . -name __pycache__ -type d -exec rm -rf {} +
