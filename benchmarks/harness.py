"""Shared measurement and scaling utilities for the benchmark suite.

Every benchmark executes *functionally real* workloads at laptop scale
and reads simulated times from the runtime's ledger. For the headline
speedup table (Experiment E5) the harness additionally extrapolates the
ledger's fixed/variable cost components to the paper-era problem sizes
("paper scale"): per-item compute scales with items x inner work,
memory and transfer volumes scale with items, launch/latency overheads
stay fixed. The decomposition uses the same cost constants the models
were built from, so the extrapolation is exact with respect to the
simulator (not a curve fit).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.apps import SUITE, compile_app
from repro.obs.trajectory import bench_envelope, bench_metric
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.runtime.marshaling import MarshalingBoundary

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def write_bench_report(
    bench: str, metrics: dict, legacy: "dict | None" = None
) -> str:
    """Write ``benchmarks/out/BENCH_<bench>.json`` in the shared
    ``repro.bench/1`` envelope (docs/TRAJECTORY.md) and return its
    path.

    ``metrics`` maps metric name -> :func:`repro.obs.bench_metric`
    (value + unit + higher/lower direction + modeled/wall kind); the
    trajectory collector (``python -m repro bench collect``) aggregates
    these into the per-PR changelog and the regression gate judges the
    modeled ones direction-aware. ``legacy`` keys are merged at top
    level unchanged so pre-envelope consumers of the original three
    reports keep working.
    """
    payload = bench_envelope(bench, metrics, legacy=legacy)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"BENCH_{bench}.json")
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def cpu_runtime(compiled, **config_kwargs) -> Runtime:
    config = RuntimeConfig(
        policy=SubstitutionPolicy(use_accelerators=False), **config_kwargs
    )
    return Runtime(compiled, config)


def accel_runtime(compiled, **config_kwargs) -> Runtime:
    return Runtime(compiled, RuntimeConfig(**config_kwargs))


@dataclass
class MeasuredPair:
    """One benchmark measured on CPU-only and on CPU+accelerator."""

    name: str
    cpu_outcome: object
    gpu_outcome: object
    gpu_runtime: Runtime

    @property
    def cpu_s(self) -> float:
        return self.cpu_outcome.seconds

    @property
    def gpu_s(self) -> float:
        return self.gpu_outcome.seconds

    @property
    def speedup(self) -> float:
        return self.cpu_s / self.gpu_s


def measure_pair(name: str, entry_args=None) -> MeasuredPair:
    compiled = compile_app(name)
    entry, args = entry_args or SUITE[name].default_args()
    cpu_outcome = cpu_runtime(compiled).run(entry, args)
    runtime = accel_runtime(compiled)
    gpu_outcome = runtime.run(entry, args)
    _assert_equal(cpu_outcome.value, gpu_outcome.value, name)
    return MeasuredPair(name, cpu_outcome, gpu_outcome, runtime)


def _assert_equal(a, b, name):
    if a != b:
        raise AssertionError(
            f"{name}: accelerated result differs from bytecode result"
        )


# ---------------------------------------------------------------------------
# Marshaling throughput (batched fast path vs per-element crossings)
# ---------------------------------------------------------------------------


def marshal_stream_seconds(
    n_items: int, batch_size: int, boundary: MarshalingBoundary = None
) -> float:
    """Modeled time to stream ``n_items`` int values across a boundary
    and back, crossing in ``batch_size`` chunks.

    ``batch_size=1`` is the per-element slow path (one tagged scalar
    frame and one full fixed crossing cost per value, each way);
    larger sizes use the 0x09 batch frame, so N values share one
    header and one set of fixed serialize/JNI/convert costs. This is
    the microbenchmark behind BENCH_marshal.json
    (docs/PERFORMANCE.md)."""
    boundary = boundary if boundary is not None else MarshalingBoundary()
    values = list(range(n_items))
    if batch_size <= 1:
        for value in values:
            boundary.round_trip(value)
    else:
        for start in range(0, n_items, batch_size):
            boundary.transfer_batch(values[start : start + batch_size])
    return boundary.total_seconds


def marshal_throughput(n_items: int, batch_size: int) -> float:
    """Values per modeled second for the stream above."""
    return n_items / marshal_stream_seconds(n_items, batch_size)


# ---------------------------------------------------------------------------
# Paper-scale extrapolation
# ---------------------------------------------------------------------------


def _transfer_variable_s(record, boundary) -> float:
    c = boundary.costs
    per_byte = (
        c.serialize_per_byte_s + c.crossing_per_byte_s + c.convert_per_byte_s
    )
    return record.num_bytes * (
        per_byte + 1.0 / boundary.link.bandwidth_bytes_per_s
    )


def scaled_cpu_s(pair: MeasuredPair, item_scale: float, work_scale: float) -> float:
    """CPU time is per-item work throughout; scale multiplicatively."""
    return pair.cpu_outcome.ledger.host_s * item_scale * work_scale


def scaled_gpu_s(pair: MeasuredPair, item_scale: float, work_scale: float) -> float:
    ledger = pair.gpu_outcome.ledger
    total = ledger.host_s  # host-side setup: treated as fixed
    for offload in ledger.offloads:
        compute = offload.compute_s * item_scale * work_scale
        memory = offload.memory_s * item_scale
        total += offload.launch_s + max(compute, memory)
        boundary = (
            pair.gpu_runtime.gpu_boundary
            if offload.device == "gpu"
            else pair.gpu_runtime.fpga_boundary
        )
        for record in offload.transfers:
            variable = _transfer_variable_s(record, boundary)
            fixed = max(record.total_s - variable, 0.0)
            total += fixed + variable * item_scale
    for run in ledger.graph_runs:
        total += run.wall_s * item_scale * work_scale
    return total


@dataclass
class ScaledResult:
    name: str
    measured_cpu_s: float
    measured_gpu_s: float
    measured_speedup: float
    paper_cpu_s: float
    paper_gpu_s: float
    paper_speedup: float
    paper_label: str


# Paper-scale definitions: (item_scale, work_scale, human label).
# item_scale multiplies the number of parallel work items; work_scale
# multiplies per-item inner work (bodies for n-body, matrix dimension
# for matmul, iterations for mandelbrot, taps for convolution, ...).
PAPER_SCALES = {
    "saxpy": (1024.0, 1.0, "4M elements"),
    "vector_sum": (1024.0, 1.0, "4M elements"),
    "black_scholes": (2048.0, 1.0, "4M options"),
    "mandelbrot": (682.7, 256 / 48, "1024x1024, 256 iters"),
    "nbody": (16.0, 16.0, "3072 bodies"),
    "matmul": (455.1, 512 / 24, "512x512 matrices"),
    "convolution": (512.0, 63 / 17, "1M samples, 63 taps"),
    "dct8x8": (2048.0, 1.0, "1024x1024 image"),
    "kmeans": (1024.0, 32 / 12, "1M points, 32 clusters"),
}


def paper_scale(pair: MeasuredPair) -> ScaledResult:
    item_scale, work_scale, label = PAPER_SCALES[pair.name]
    cpu_s = scaled_cpu_s(pair, item_scale, work_scale)
    gpu_s = scaled_gpu_s(pair, item_scale, work_scale)
    return ScaledResult(
        name=pair.name,
        measured_cpu_s=pair.cpu_s,
        measured_gpu_s=pair.gpu_s,
        measured_speedup=pair.speedup,
        paper_cpu_s=cpu_s,
        paper_gpu_s=gpu_s,
        paper_speedup=cpu_s / gpu_s,
        paper_label=label,
    )


def format_table(headers: list, rows: list) -> str:
    """Simple fixed-width table renderer for bench reports."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def fmt(cells):
        return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(r) for r in rows]
    return "\n".join(lines)
