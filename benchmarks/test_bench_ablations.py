"""Ablations over the design choices DESIGN.md calls out.

These benches vary one model parameter at a time and check the
direction and rough magnitude of the effect:

* memory coalescing on the GPU (the SIMT memory model);
* GPU core count scaling (compute-bound kernels scale ~linearly);
* FPGA clock frequency from synthesis vs a fixed conservative clock;
* marshaling per-byte costs (the knob that decides the saxpy
  crossover);
* FIFO queue capacity in the threaded scheduler (functional only).
"""

import pytest

from repro.apps import SUITE, compile_app
from repro.devices.gpu.timing import GTX580, GPUSpec, data_parallel_time
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.runtime.marshaling import BoundaryCosts, MarshalingBoundary
from repro.values import KIND_INT, ValueArray

from harness import bench_metric, format_table, write_bench_report


def test_bench_coalescing_ablation(benchmark, capsys):
    """Strided access pays the uncoalesced bandwidth penalty on a
    memory-bound kernel but is irrelevant on a compute-bound one."""

    def run():
        n = 1_000_000  # large enough to amortize the launch overhead
        memory_bound = {
            coalesced: data_parallel_time(
                GTX580,
                [20] * n,
                bytes_in=n * 16,
                bytes_out=n * 4,
                coalesced=coalesced,
            )
            for coalesced in (True, False)
        }
        compute_bound = {
            coalesced: data_parallel_time(
                GTX580,
                [20000] * n,
                bytes_in=n * 16,
                bytes_out=n * 4,
                coalesced=coalesced,
            )
            for coalesced in (True, False)
        }
        return memory_bound, compute_bound

    memory_bound, compute_bound = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    mem_ratio = (
        memory_bound[False].kernel_s / memory_bound[True].kernel_s
    )
    comp_ratio = (
        compute_bound[False].kernel_s / compute_bound[True].kernel_s
    )
    print(
        f"\n[ablation] uncoalesced slowdown: memory-bound "
        f"{mem_ratio:.1f}x, compute-bound {comp_ratio:.2f}x"
    )
    assert mem_ratio > 3  # bandwidth penalty bites
    assert comp_ratio < 1.2  # hidden under compute
    write_bench_report(
        "ablation_coalescing",
        {
            "uncoalesced_slowdown.memory_bound": bench_metric(
                mem_ratio, unit="x", direction="higher"
            ),
            "uncoalesced_slowdown.compute_bound": bench_metric(
                comp_ratio, unit="x", direction="lower"
            ),
        },
    )


def test_bench_gpu_core_scaling(benchmark, capsys):
    """A compute-bound kernel's time scales ~1/cores."""

    def run():
        out = {}
        for cores in (64, 128, 256, 512):
            spec = GPUSpec(name=f"{cores}c", cuda_cores=cores)
            timing = data_parallel_time(
                spec, [5000] * 8192, bytes_in=0, bytes_out=0
            )
            out[cores] = timing.kernel_s
        return out

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[c, f"{t * 1e6:.1f}us"] for c, t in times.items()]
    print(
        "\n[ablation] GPU core scaling (compute-bound):\n"
        + format_table(["cores", "kernel time"], rows)
    )
    # Doubling cores ~halves time (modulo the fixed launch overhead).
    assert times[64] / times[512] > 5
    write_bench_report(
        "ablation_core_scaling",
        {
            "scaling_64_to_512": bench_metric(
                times[64] / times[512], unit="x", direction="higher"
            ),
        },
    )


def test_bench_fpga_clock_from_synthesis(benchmark, capsys):
    """The runtime clocks each module at its synthesized Fmax (capped);
    a deep datapath (CRC) therefore streams slower than a trivial one
    (bitflip) even at the same cycle count per item."""

    def run():
        out = {}
        for app in ("bitflip", "crc8"):
            compiled = compile_app(app)
            (artifact,) = compiled.store.for_device("fpga")
            out[app] = artifact.payload.synthesis.fmax_hz
        return out

    fmax = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[ablation] synthesized Fmax: bitflip "
        f"{fmax['bitflip'] / 1e6:.0f}MHz vs crc8 "
        f"{fmax['crc8'] / 1e6:.0f}MHz"
    )
    assert fmax["bitflip"] > fmax["crc8"] * 4


def test_bench_marshal_cost_sweep(benchmark, capsys):
    """The per-byte serialization cost decides where the saxpy-style
    crossover falls: with slow (1 GB/s) marshaling the GPU loses; with
    fast (8 GB/s) marshaling it at least breaks even at scale."""
    compiled = compile_app("saxpy")
    entry, args = SUITE["saxpy"].default_args()

    def run():
        out = {}
        for label, per_byte in (("slow 1GB/s", 1e-9), ("fast 8GB/s", 0.125e-9)):
            runtime = Runtime(compiled, RuntimeConfig())
            costs = BoundaryCosts(
                serialize_per_byte_s=per_byte,
                crossing_per_byte_s=per_byte / 2,
                convert_per_byte_s=per_byte / 2,
            )
            runtime.gpu_boundary = MarshalingBoundary(
                runtime.config.gpu_link, costs
            )
            gpu = runtime.run(entry, args)
            cpu = Runtime(
                compiled,
                RuntimeConfig(
                    policy=SubstitutionPolicy(use_accelerators=False)
                ),
            ).run(entry, args)
            out[label] = cpu.seconds / gpu.seconds
        return out

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\n[ablation] saxpy speedup vs marshal throughput: "
        f"{speedups}"
    )
    assert speedups["fast 8GB/s"] > speedups["slow 1GB/s"]


def test_bench_queue_capacity_functional(benchmark):
    """Queue capacity changes scheduling interleavings but never
    results (bounded FIFOs only add backpressure)."""
    from repro.runtime.scheduler import ThreadedScheduler

    compiled = compile_app("crc8")
    xs = ValueArray(KIND_INT, [i % 256 for i in range(200)])

    def run():
        results = []
        for capacity in (1, 2, 64, 1024):
            runtime = Runtime(compiled, RuntimeConfig())
            runtime.scheduler = ThreadedScheduler(queue_capacity=capacity)
            results.append(runtime.call("Crc8.checksums", [xs]))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(r == results[0] for r in results)


def test_bench_retiming_ablation(benchmark, capsys):
    """Behavioral-synthesis retiming: cutting the CRC datapath into
    register stages raises Fmax and, for long pipelined streams, cuts
    kernel time — at the cost of latency and flip-flops."""
    from repro.compiler import CompileOptions, compile_program

    source = SUITE["crc8"].source

    def run():
        rows = []
        for label, opts in (
            ("II=3, 1 stage (Figure 4)", CompileOptions()),
            ("II=1, 1 stage", CompileOptions(fpga_pipelined=True)),
            (
                "II=1, retimed (depth<=6)",
                CompileOptions(fpga_pipelined=True, fpga_max_stage_depth=6),
            ),
        ):
            compiled = compile_program(source, options=opts)
            (artifact,) = compiled.store.for_device("fpga")
            bundle = artifact.payload
            report = bundle.synthesis
            rows.append(
                (
                    label,
                    bundle.compute_stages,
                    report.fmax_hz,
                    report.flipflops,
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["configuration", "stages", "Fmax", "FFs"],
        [
            [label, stages, f"{fmax / 1e6:.0f}MHz", ffs]
            for label, stages, fmax, ffs in rows
        ],
    )
    print("\n[ablation] CRC-8 module retiming:\n" + table)
    base_fmax = rows[0][2]
    retimed_fmax = rows[2][2]
    assert retimed_fmax > base_fmax * 2
    assert rows[2][1] > 1
    assert rows[2][3] > rows[0][3]  # flip-flop cost
    write_bench_report(
        "ablation_retiming",
        {
            "crc8.retimed_fmax_ratio": bench_metric(
                retimed_fmax / base_fmax, unit="x", direction="higher"
            ),
            "crc8.retimed_fmax_hz": bench_metric(
                retimed_fmax, unit="Hz", direction="higher"
            ),
        },
    )
