"""Artifact cache: modeled warm-start speedup over cold codegen.

The tentpole claim of docs/CACHING.md, measured: a cold compile pays
the modeled codegen cost of every backend (bytecode emission is cheap;
OpenCL codegen costs milliseconds; Verilog synthesis costs modeled
*seconds* per artifact), while a warm start pays only manifest
verification plus payload deserialization — modeled as a flat overhead
and a disk-bandwidth term. The acceptance bar is a >= 5x modeled
speedup of the backend compile path, summed over the harvested app
suite; the actual factor is orders of magnitude larger because Verilog
synthesis dominates the cold path.

Results land in ``benchmarks/out/BENCH_artifact_cache.json`` — one
JSON object with per-app cold/warm modeled seconds and the aggregate
speedup. Wall-clock is reported as a sanity signal only; the modeled
clock is the accepted metric (same convention as BENCH_marshal).
"""

import time

from repro.apps import SUITE
from repro.backends.artifacts import CacheOptions
from repro.compiler import CompileOptions, CompilerSession

from harness import bench_metric, format_table, write_bench_report

#: Modeled speedup the warm path must clear, summed across the suite.
ACCEPTANCE_SPEEDUP = 5.0


def test_bench_artifact_cache_warm_start(benchmark, tmp_path, capsys):
    cache = CacheOptions(
        cache_dir=str(tmp_path / "cache"), mode="readwrite"
    )
    options = CompileOptions(cache=cache)
    names = sorted(SUITE)

    def run():
        apps = {}
        cold_wall = time.perf_counter()
        cold_session = CompilerSession(options)
        for name in names:
            result = cold_session.compile(
                SUITE[name].source, filename=f"<{name}.lime>"
            )
            assert not result.warm, f"{name}: first compile must be cold"
            apps[name] = {"modeled_cold_s": result.modeled_compile_s}
        cold_wall = time.perf_counter() - cold_wall

        warm_wall = time.perf_counter()
        warm_session = CompilerSession(options)
        for name in names:
            result = warm_session.compile(
                SUITE[name].source, filename=f"<{name}.lime>"
            )
            assert result.warm, f"{name}: second compile must warm-start"
            apps[name]["modeled_warm_s"] = result.modeled_compile_s
            apps[name]["payload_bytes"] = sum(
                info.get("payload_bytes", 0)
                for info in result.cache_info.values()
            )
        warm_wall = time.perf_counter() - warm_wall
        return apps, cold_wall, warm_wall

    apps, cold_wall, warm_wall = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    rows = []
    for name in sorted(apps):
        entry = apps[name]
        entry["speedup"] = (
            entry["modeled_cold_s"] / entry["modeled_warm_s"]
        )
        rows.append(
            [
                name,
                f"{entry['modeled_cold_s'] * 1e3:,.1f}ms",
                f"{entry['modeled_warm_s'] * 1e6:,.0f}us",
                f"{entry['payload_bytes']:,}",
                f"{entry['speedup']:,.0f}x",
            ]
        )
    total_cold = sum(e["modeled_cold_s"] for e in apps.values())
    total_warm = sum(e["modeled_warm_s"] for e in apps.values())
    speedup = total_cold / total_warm
    rows.append(
        [
            "TOTAL",
            f"{total_cold * 1e3:,.1f}ms",
            f"{total_warm * 1e6:,.0f}us",
            f"{sum(e['payload_bytes'] for e in apps.values()):,}",
            f"{speedup:,.0f}x",
        ]
    )
    print(
        "\n[artifact-cache] modeled backend compile path, cold vs "
        "warm start:\n"
        + format_table(
            ["app", "cold", "warm", "payload", "speedup"], rows
        )
    )

    write_bench_report(
        "artifact_cache",
        {
            "totals.modeled_speedup": bench_metric(
                speedup, unit="x", direction="higher"
            ),
            "totals.modeled_cold_s": bench_metric(
                total_cold, unit="s", direction="lower"
            ),
            "totals.modeled_warm_s": bench_metric(
                total_warm, unit="s", direction="lower"
            ),
            "totals.cold_wall_s": bench_metric(
                cold_wall, unit="s", direction="lower", kind="wall"
            ),
            "totals.warm_wall_s": bench_metric(
                warm_wall, unit="s", direction="lower", kind="wall"
            ),
        },
        legacy={
            "acceptance_speedup": ACCEPTANCE_SPEEDUP,
            "apps": apps,
            "totals": {
                "modeled_cold_s": total_cold,
                "modeled_warm_s": total_warm,
                "modeled_speedup": speedup,
                "cold_wall_s": cold_wall,
                "warm_wall_s": warm_wall,
            },
        },
    )

    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"warm start only {speedup:.2f}x the cold compile path on the "
        f"modeled clock; the cache is not amortizing backend codegen"
    )
    # Every single app clears the bar on its own too — the speedup is
    # not carried by one Verilog-heavy outlier.
    for name, entry in apps.items():
        assert entry["speedup"] >= ACCEPTANCE_SPEEDUP, name
