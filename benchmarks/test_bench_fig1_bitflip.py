"""E1 — Figure 1: the Bitflip running example.

Reproduces the three forms of Figure 1 (scalar ``flip``, data-parallel
``mapFlip``, streaming ``taskFlip``), checks they agree, and measures
the task-graph path on every device.

NOTE on the paper text: Section 2.2 states "The result of
mapFlip(100b) is a bit array equal to the bit literal 001b" — under the
paper's own indexing (bit literals written MSB-first, ``bit[0]`` the
last character) flipping every bit of ``100b`` yields ``011b``; ``001b``
appears to be a typo in the paper. We assert the self-consistent
``011b``.
"""

import pytest

from repro.apps import compile_app
from repro.backends.common import BYTECODE, FPGA, GPU
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_BIT, Bit, ValueArray, parse_bit_literal

from harness import bench_metric, format_table, write_bench_report


def bits(text):
    return ValueArray(KIND_BIT, parse_bit_literal(text))


def runtime_for(device):
    compiled = compile_app("bitflip")
    flip_id = compiled.task_graphs[0].stages[1].task_id
    if device == BYTECODE:
        policy = SubstitutionPolicy(use_accelerators=False)
    else:
        policy = SubstitutionPolicy(directives={flip_id: device})
    return Runtime(compiled, RuntimeConfig(policy=policy))


class TestFigure1Semantics:
    def test_flip_form(self):
        runtime = runtime_for(BYTECODE)
        assert runtime.call("Bitflip.flip", [Bit.ZERO]) is Bit.ONE

    def test_mapflip_100b(self):
        runtime = runtime_for(BYTECODE)
        assert runtime.call("Bitflip.mapFlip", [bits("100")]) == bits("011")

    def test_three_forms_agree(self):
        runtime = runtime_for(BYTECODE)
        stream = bits("110010111")
        map_result = runtime.call("Bitflip.mapFlip", [stream])
        task_result = runtime.call("Bitflip.taskFlip", [stream])
        assert map_result == task_result

    def test_all_devices_agree(self):
        stream = bits("110010111" * 8)
        results = {
            device: runtime_for(device).call("Bitflip.taskFlip", [stream])
            for device in (BYTECODE, GPU, FPGA)
        }
        assert results[BYTECODE] == results[GPU] == results[FPGA]


@pytest.mark.parametrize("device", [BYTECODE, GPU, FPGA])
def test_bench_taskflip_per_device(benchmark, device):
    """Throughput of the Figure 1 task graph per execution device."""
    runtime = runtime_for(device)
    stream = bits("110010111" * 28)  # 252 bits
    expected = ValueArray(KIND_BIT, [~b for b in stream])

    def run():
        return runtime.run("Bitflip.taskFlip", [stream])

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    assert outcome.value == expected
    benchmark.extra_info["simulated_seconds"] = outcome.seconds
    benchmark.extra_info["device"] = device


def test_bench_fig1_report(benchmark, capsys):
    """Summary row set: simulated time per device for one 252-bit run."""
    stream = bits("110010111" * 28)
    rows = []
    outcomes = {}
    for device in (BYTECODE, GPU, FPGA):
        runtime = runtime_for(device)
        outcome = runtime.run("Bitflip.taskFlip", [stream])
        outcomes[device] = outcome
        rows.append(
            [
                device,
                f"{outcome.seconds * 1e6:.1f}us",
                len(outcome.ledger.offloads),
            ]
        )

    def report():
        return format_table(
            ["device", "simulated time", "offloads"], rows
        )

    table = benchmark.pedantic(report, rounds=1, iterations=1)
    print("\n[E1] Figure 1 taskFlip, 252 bits:\n" + table)
    write_bench_report(
        "fig1_bitflip",
        {
            f"taskflip.{device}.simulated_s": bench_metric(
                outcomes[device].seconds, unit="s", direction="lower"
            )
            for device in (BYTECODE, GPU, FPGA)
        },
    )
    # On a 252-bit toy stream the fixed device overheads dominate: the
    # bytecode path must win, which is exactly why the runtime offers
    # manual direction.
    assert outcomes[BYTECODE].seconds < outcomes[GPU].seconds
    assert outcomes[BYTECODE].seconds < outcomes[FPGA].seconds
