"""E2 — Figure 2: the compilation toolchain.

Compiles the entire application suite through the frontend and all
three backends, and reports the artifact matrix: which tasks received
bytecode / OpenCL / Verilog implementations and which were excluded and
why. This is the textual equivalent of Figure 2's artifact flow (and of
the IDE's per-task markers in Figure 4's top half).
"""

from repro.apps import SUITE
from repro.compiler import compile_program, compile_report

from harness import bench_metric, format_table, write_bench_report


def _suite_compile():
    results = {}
    for name, spec in SUITE.items():
        results[name] = compile_program(spec.source, filename=name)
    return results


def test_bench_compile_suite(benchmark):
    """Wall time to push the whole suite through the toolchain."""
    results = benchmark.pedantic(_suite_compile, rounds=1, iterations=1)
    assert len(results) == len(SUITE)


def test_bench_fig2_artifact_matrix(benchmark, capsys):
    results = benchmark.pedantic(_suite_compile, rounds=1, iterations=1)
    rows = []
    totals = {"bytecode": 0, "gpu": 0, "fpga": 0, "excluded": 0}
    for name, result in sorted(results.items()):
        gpu = len(result.store.for_device("gpu"))
        fpga = len(result.store.for_device("fpga"))
        excluded = len(result.store.exclusions)
        graphs = len(result.task_graphs)
        rows.append([name, graphs, 1, gpu, fpga, excluded])
        totals["bytecode"] += 1
        totals["gpu"] += gpu
        totals["fpga"] += fpga
        totals["excluded"] += excluded
    table = format_table(
        ["program", "graphs", "bytecode", "gpu", "fpga", "exclusions"],
        rows,
    )
    print("\n[E2] Toolchain artifact matrix:\n" + table)
    write_bench_report(
        "fig2_toolchain",
        {
            "artifacts.gpu": bench_metric(
                totals["gpu"], unit="count", direction="higher"
            ),
            "artifacts.fpga": bench_metric(
                totals["fpga"], unit="count", direction="higher"
            ),
            "artifacts.excluded": bench_metric(
                totals["excluded"], unit="count", direction="lower"
            ),
        },
    )

    # Structural claims from Section 3:
    # 1. The CPU backend always compiles the entire program.
    assert totals["bytecode"] == len(SUITE)
    # 2. Every map-flavor program produced at least one GPU artifact.
    for name, spec in SUITE.items():
        if spec.flavor in ("map", "reduce", "hybrid"):
            assert results[name].store.for_device("gpu"), name
    # 3. The FPGA backend is narrower: the float-typed map kernels are
    #    not synthesizable, so FPGA artifacts exist only for the
    #    bit/int streaming programs.
    fpga_programs = {
        name for name, r in results.items() if r.store.for_device("fpga")
    }
    assert fpga_programs == {
        "bitflip", "crc8", "parity", "gray_pipeline", "hybrid",
    }
    # 4. Exclusions carry human-readable reasons.
    some = [e for r in results.values() for e in r.store.exclusions]
    assert all(e.reason for e in some)


def test_bench_fig2_report_renders(benchmark):
    result = compile_program(SUITE["bitflip"].source)
    text = benchmark.pedantic(
        lambda: compile_report(result), rounds=1, iterations=1
    )
    assert "task graphs:" in text
    assert "source(1) => [flip] => sink" in text
    assert "bytecode:program" in text
    assert "gpu:" in text and "fpga:" in text
