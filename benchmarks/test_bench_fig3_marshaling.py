"""E3 — Figure 3: data transfer between the JVM and a native device.

Reproduces the figure's scenario — a float array as input and an int
array as output — across sizes, reporting the modeled cost of each of
the three steps (serialize to byte array, cross the JNI boundary,
convert to a packed C value) plus the physical link, in both
directions. The shape to reproduce: fixed overheads dominate small
transfers; per-byte serialization dominates large ones; the payload is
densely packed (bit arrays 8x smaller than byte-per-bit).
"""

import pytest

from repro.devices.interconnect import PCIE_GEN2_X16
from repro.runtime.marshaling import MarshalingBoundary
from repro.values import (
    KIND_BIT,
    KIND_FLOAT,
    KIND_INT,
    Bit,
    ValueArray,
)

from harness import bench_metric, format_table, write_bench_report

SIZES = [1_000, 10_000, 100_000, 1_000_000]


def _roundtrip(boundary, n):
    floats_in = ValueArray(KIND_FLOAT, [float(i) * 0.5 for i in range(n)])
    ints_out = ValueArray(KIND_INT, list(range(n)))
    data, out_rec = boundary.to_device(floats_in)
    value, back_rec = boundary.from_device(
        __import__("repro.values", fromlist=["serialize"]).serialize(ints_out)
    )
    assert value == ints_out
    return out_rec, back_rec


def test_bench_fig3_step_table(benchmark, capsys):
    boundary = MarshalingBoundary(PCIE_GEN2_X16)

    def run():
        return [(n,) + _roundtrip(boundary, n) for n in SIZES]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, out_rec, back_rec in results:
        rows.append(
            [
                n,
                f"{out_rec.num_bytes}",
                f"{out_rec.serialize_s * 1e6:.2f}us",
                f"{out_rec.crossing_s * 1e6:.2f}us",
                f"{out_rec.convert_s * 1e6:.2f}us",
                f"{out_rec.link_s * 1e6:.2f}us",
                f"{(out_rec.total_s + back_rec.total_s) * 1e6:.2f}us",
            ]
        )
    table = format_table(
        [
            "elements",
            "bytes",
            "serialize",
            "jni-cross",
            "native-conv",
            "pcie",
            "round-trip",
        ],
        rows,
    )
    print("\n[E3] Figure 3 float-in / int-out transfer:\n" + table)

    metrics = {}
    for n, out_rec, back_rec in results:
        metrics[f"roundtrip.{n}.total_s"] = bench_metric(
            out_rec.total_s + back_rec.total_s, unit="s", direction="lower"
        )
        metrics[f"roundtrip.{n}.bytes"] = bench_metric(
            out_rec.num_bytes, unit="bytes", direction="lower"
        )
    write_bench_report("fig3_marshaling", metrics)

    small = results[0]
    large = results[-1]
    # Fixed overheads dominate the small transfer...
    assert small[1].crossing_s > small[1].serialize_s * 0.5
    # ... while per-byte costs dominate the large one, scaling ~linearly.
    ratio = large[1].total_s / small[1].total_s
    assert 100 < ratio < 2000


def test_bench_fig3_total_scales_linearly(benchmark):
    boundary = MarshalingBoundary(PCIE_GEN2_X16)

    def run(n):
        arr = ValueArray(KIND_FLOAT, [0.0] * n)
        _, rec = boundary.to_device(arr)
        return rec

    rec_a = run(100_000)
    rec_b = benchmark.pedantic(
        lambda: run(200_000), rounds=1, iterations=1
    )
    # Twice the elements: per-byte parts double, fixed parts do not.
    assert rec_b.total_s < 2 * rec_a.total_s
    assert rec_b.total_s > 1.5 * rec_a.total_s


def test_bench_fig3_dense_bit_packing(benchmark):
    """Bit arrays cross the wire densely packed (Section 4.3: the
    native side data is 'generally densely packed')."""
    boundary = MarshalingBoundary(PCIE_GEN2_X16)
    n = 80_000
    bits = ValueArray(KIND_BIT, [Bit(i & 1) for i in range(n)])
    ints = ValueArray(KIND_INT, [i & 1 for i in range(n)])

    def run():
        _, bit_rec = boundary.to_device(bits)
        _, int_rec = boundary.to_device(ints)
        return bit_rec, int_rec

    bit_rec, int_rec = benchmark.pedantic(run, rounds=1, iterations=1)
    # 1 bit vs 32 bits per element: ~32x fewer bytes, modulo headers.
    assert int_rec.num_bytes / bit_rec.num_bytes > 30
    assert bit_rec.total_s < int_rec.total_s
