"""E4 — Figure 4 (bottom): co-execution with the Verilog simulator.

Drives the generated Bitflip module with the figure's 9 input bits and
checks the waveform facts the paper narrates:

* 9 transitions on ``inReady`` (one per input);
* the FIFO "produces a value on the next rising edge of the clock" —
  ``inData`` goes high one cycle after ``inReady``;
* "another three cycles later, the output of the module is ready" —
  one cycle to read, one to compute, one to publish;
* the module I/O "is not fully pipelined" (initiation interval 3 by
  default); the pipelined variant is the ablation.

The VCD waveform is written next to this file for inspection in any
waveform viewer.
"""

import os

import pytest

from repro.apps import compile_app
from repro.compiler import CompileOptions
from repro.devices.fpga import FPGASimulator
from repro.values import parse_bit_literal

from harness import bench_metric, write_bench_report

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

# Figure 4 drives 9 input bits; we use the literal from the test deck.
NINE_BITS = [int(b) for b in parse_bit_literal("110010111")]


def bitflip_bundle(pipelined=False):
    compiled = compile_app(
        "bitflip", options=CompileOptions(fpga_pipelined=pipelined)
    )
    (artifact,) = compiled.store.for_device("fpga")
    return artifact.payload


def run_waveform(pipelined=False):
    bundle = bitflip_bundle(pipelined)
    sim = FPGASimulator(period_ns=4)
    return sim.run_stream(
        bundle.elaborate(), list(NINE_BITS), return_to_zero=True
    )


def test_bench_fig4_waveform(benchmark, capsys):
    result = benchmark.pedantic(run_waveform, rounds=1, iterations=1)
    # Functional: every bit flipped, in order.
    assert result.outputs == [1 - b for b in NINE_BITS]
    # 9 transitions on inReady.
    assert len(result.vcd.rising_edges("inReady")) == 9
    assert len(result.details["enqueue_times"]) == 9
    # FIFO latency: inData one cycle after inReady (period = 4ns).
    in_ready_t = result.vcd.rising_edges("inReady")[0]
    fifo_t = result.vcd.rising_edges("fifo_valid")[0]
    assert fifo_t - in_ready_t == 4
    # Read + compute + publish: outReady three cycles after the FIFO.
    out_t = result.vcd.rising_edges("outReady")[0]
    assert out_t - fifo_t == 3 * 4
    os.makedirs(OUT_DIR, exist_ok=True)
    vcd_path = os.path.join(OUT_DIR, "fig4_bitflip.vcd")
    with open(vcd_path, "w") as f:
        f.write(result.vcd.render())
    print(
        f"\n[E4] Figure 4 waveform: 9 inputs, {result.cycles} cycles, "
        f"latency 4 cycles (1 FIFO + read/compute/publish); "
        f"VCD written to {vcd_path}"
    )
    benchmark.extra_info["cycles"] = result.cycles


def test_bench_fig4_pipelining_ablation(benchmark, capsys):
    """The paper notes its module 'is not fully pipelined'; compare the
    default II=3 module against the II=1 variant on a longer stream."""
    stream = [i & 1 for i in range(256)]

    def run_both():
        results = {}
        for pipelined in (False, True):
            bundle = bitflip_bundle(pipelined)
            sim = FPGASimulator()
            results[pipelined] = sim.run_stream(
                bundle.elaborate(), list(stream)
            )
        return results

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    plain, piped = results[False], results[True]
    assert plain.outputs == piped.outputs
    print(
        f"\n[E4-ablation] 256-bit stream: II=3 module {plain.cycles} "
        f"cycles ({plain.throughput_items_per_cycle:.2f} items/cycle) "
        f"vs II=1 module {piped.cycles} cycles "
        f"({piped.throughput_items_per_cycle:.2f} items/cycle)"
    )
    # Non-pipelined: about one item per 3-4 cycles.
    assert 2.5 < 1 / plain.throughput_items_per_cycle < 4.5
    # Pipelined: approaches one item per cycle.
    assert piped.throughput_items_per_cycle > 0.85
    assert piped.cycles < plain.cycles / 2
    write_bench_report(
        "fig4_waveform",
        {
            "stream256.ii3.cycles": bench_metric(
                plain.cycles, unit="cycles", direction="lower"
            ),
            "stream256.ii1.cycles": bench_metric(
                piped.cycles, unit="cycles", direction="lower"
            ),
            "stream256.ii1.items_per_cycle": bench_metric(
                piped.throughput_items_per_cycle,
                unit="items/cycle",
                direction="higher",
            ),
        },
    )


def test_bench_fig4_synthesis_report(benchmark, capsys):
    """Per-module synthesis estimates (the vendor-flow stand-in)."""
    from harness import format_table

    rows = []
    for app in ("bitflip", "crc8", "parity", "gray_pipeline"):
        compiled = compile_app(app)
        for artifact in compiled.store.for_device("fpga"):
            report = artifact.payload.synthesis
            rows.append(
                [
                    report.module,
                    report.luts,
                    report.flipflops,
                    report.brams,
                    f"{report.fmax_hz / 1e6:.0f}MHz",
                ]
            )

    table = benchmark.pedantic(
        lambda: format_table(
            ["module", "LUTs", "FFs", "BRAMs", "Fmax"], rows
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[E4] FPGA synthesis estimates:\n" + table)
    # The CRC/parity datapaths (unrolled loops) cost far more logic
    # than the single-gate bitflip.
    luts = {r[0]: r[1] for r in rows}
    assert luts["mod_Bitflip_flip"] < 8
    assert luts["mod_Crc8_step"] > luts["mod_Bitflip_flip"] * 10
    assert luts["mod_Parity_parity"] > luts["mod_Bitflip_flip"] * 10
