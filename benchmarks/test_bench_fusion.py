"""Task fusion: boundary crossings and modeled time, fused vs unfused.

The tentpole claim of docs/FUSION.md, measured on the marshaling-bound
apps of ``BENCH_marshal.json``: fusing the two-stage gray_pipeline
stream collapses four boundary crossings per batch into two (one in,
one out for the whole span), halving the modeled graph time; fusing
the photo_pipeline map chain collapses two kernel launches (each with
its own round trip) into one composite kernel.

Results land in ``benchmarks/out/BENCH_fusion.json`` — per app: the
crossing counts, the modeled seconds, and the speedup on the device
path. The acceptance bar is a >= 2x modeled speedup on the fused
device path with strictly fewer crossings; runs in the tier-1 suite
and ``make bench-smoke``.
"""

from repro.apps import compile_app, workloads
from repro.compiler import CompileOptions
from repro.ir.fusion import FusionOptions
from repro.obs import Tracer
from repro.runtime import Runtime, RuntimeConfig

from harness import bench_metric, format_table, write_bench_report

AUTO = CompileOptions(fusion=FusionOptions(mode="auto"))

#: The marshaling-bound workloads of BENCH_marshal.json, plus the map
#: chain. device_path selects the ledger bucket fusion accelerates:
#: the stream pipeline crosses inside the graph, the map chain in
#: per-call offloads.
APPS = {
    "gray_pipeline": (lambda: workloads.gray_pipeline_args(256), "graph_s"),
    "photo_pipeline": (
        lambda: workloads.photo_pipeline_args(256),
        "offload_s",
    ),
}


def _measure(name, fused):
    entry, args = APPS[name][0]()
    compiled = compile_app(name, AUTO if fused else CompileOptions())
    tracer = Tracer()
    outcome = Runtime(
        compiled,
        RuntimeConfig(
            scheduler="sequential",
            tracer=tracer,
            fusion="auto" if fused else "off",
        ),
    ).run(entry, args)
    counters = tracer.counters.snapshot()
    summary = outcome.ledger.summary()
    return {
        "crossings": counters.get("marshal.crossings", 0),
        "total_s": summary["total_s"],
        "device_path_s": summary[APPS[name][1]],
        "value": repr(outcome.value),
    }


def test_bench_fusion_speedup(benchmark, capsys):
    def run():
        return {
            name: {
                "unfused": _measure(name, fused=False),
                "fused": _measure(name, fused=True),
            }
            for name in sorted(APPS)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    report = {}
    for name, modes in sorted(results.items()):
        unfused, fused = modes["unfused"], modes["fused"]
        # Fusion must be invisible in the answer...
        assert unfused["value"] == fused["value"], name
        # ...strictly cheaper at the boundary...
        assert fused["crossings"] < unfused["crossings"], name
        # ...and >= 2x faster on the device path it collapses (the
        # whole intermediate round trip disappears).
        speedup = unfused["device_path_s"] / fused["device_path_s"]
        assert speedup >= 2.0, (
            f"{name}: fused device path only {speedup:.2f}x faster; "
            f"fusion is not eliminating the intermediate crossings"
        )
        end_to_end = unfused["total_s"] / fused["total_s"]
        report[name] = {
            "device_path": APPS[name][1],
            "unfused": {
                k: v for k, v in unfused.items() if k != "value"
            },
            "fused": {k: v for k, v in fused.items() if k != "value"},
            "device_path_speedup": speedup,
            "end_to_end_speedup": end_to_end,
        }
        rows.append(
            [
                name,
                f"{unfused['crossings']:g} -> {fused['crossings']:g}",
                f"{unfused['device_path_s'] * 1e6:.2f}us",
                f"{fused['device_path_s'] * 1e6:.2f}us",
                f"{speedup:.2f}x",
                f"{end_to_end:.2f}x",
            ]
        )

    print(
        "\n[fusion] fused vs unfused, sequential scheduler:\n"
        + format_table(
            [
                "app",
                "crossings",
                "unfused dev",
                "fused dev",
                "dev speedup",
                "end-to-end",
            ],
            rows,
        )
    )

    metrics = {}
    for name, entry in report.items():
        metrics[f"{name}.device_path_speedup"] = bench_metric(
            entry["device_path_speedup"], unit="x", direction="higher"
        )
        metrics[f"{name}.end_to_end_speedup"] = bench_metric(
            entry["end_to_end_speedup"], unit="x", direction="higher"
        )
        metrics[f"{name}.fused.crossings"] = bench_metric(
            entry["fused"]["crossings"], unit="count", direction="lower"
        )
        metrics[f"{name}.fused.device_path_s"] = bench_metric(
            entry["fused"]["device_path_s"], unit="s", direction="lower"
        )
    write_bench_report("fusion", metrics, legacy=report)
