"""Batched wire-format fast path: throughput vs per-element crossings.

The tentpole claim of docs/PERFORMANCE.md, measured: streaming 1000 int
values through a marshaling boundary one at a time pays ~2.7us of fixed
serialize/JNI/convert cost (plus link latency) per value *each way*;
crossing in 0x09 batch frames amortizes all of that over the batch. The
acceptance bar is a >= 2x modeled throughput improvement at batch size
64 on the 1000-element stream; the actual improvement is far larger.

Results land in ``benchmarks/out/BENCH_marshal.json`` — one JSON object
with the microbenchmark sweep and an app-level batch_size=1 vs 64
comparison (see docs/PERFORMANCE.md for how to read it). The fast tests
here run in the tier-1 suite (and ``make bench-smoke``); the
``slow``-marked variants sweep full-scale streams.
"""

import pytest

from repro.apps import compile_app, workloads
from repro.runtime import Runtime, RuntimeConfig
from repro.runtime.marshaling import MarshalingBoundary

from harness import (
    bench_metric,
    format_table,
    marshal_stream_seconds,
    write_bench_report,
)

STREAM_ITEMS = 1000
BATCH_SIZES = [8, 64, 256, 1000]

#: App-level comparison workloads: filter pipelines that actually drain
#: their FIFOs through the batched device boundary, at reduced sizes.
APP_WORKLOADS = {
    "bitflip": lambda: workloads.bitflip_args(256),
    "gray_pipeline": lambda: workloads.gray_pipeline_args(256),
}


def _app_seconds(name, batch_size):
    entry, args = APP_WORKLOADS[name]()
    runtime = Runtime(
        compile_app(name), RuntimeConfig(batch_size=batch_size)
    )
    outcome = runtime.run(entry, args)
    return outcome


def test_bench_marshal_batch_throughput(benchmark, capsys):
    def run():
        per_element_s = marshal_stream_seconds(STREAM_ITEMS, 1)
        batched = {
            size: marshal_stream_seconds(STREAM_ITEMS, size)
            for size in BATCH_SIZES
        }
        return per_element_s, batched

    per_element_s, batched = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            1,
            f"{per_element_s * 1e6:.1f}us",
            f"{STREAM_ITEMS / per_element_s:,.0f}/s",
            "1.00x",
        ]
    ]
    for size in BATCH_SIZES:
        rows.append(
            [
                size,
                f"{batched[size] * 1e6:.1f}us",
                f"{STREAM_ITEMS / batched[size]:,.0f}/s",
                f"{per_element_s / batched[size]:.2f}x",
            ]
        )
    print(
        "\n[marshal] 1000-int stream, modeled boundary time by batch "
        "size:\n"
        + format_table(["batch", "total", "throughput", "speedup"], rows)
    )

    # App level: the same knob, end to end. Output equality is the
    # differential suite's job; here we only require it not to regress.
    apps = {}
    for name in sorted(APP_WORKLOADS):
        scalar = _app_seconds(name, 1)
        fast = _app_seconds(name, 64)
        assert scalar.value == fast.value, name
        apps[name] = {
            "batch_1_s": scalar.seconds,
            "batch_64_s": fast.seconds,
            "improvement": scalar.seconds / fast.seconds,
        }

    improvement_64 = per_element_s / batched[64]
    metrics = {
        "stream.per_element_s": bench_metric(
            per_element_s, unit="s", direction="lower"
        ),
        "stream.throughput_improvement_at_64": bench_metric(
            improvement_64, unit="x", direction="higher"
        ),
    }
    for size in BATCH_SIZES:
        metrics[f"stream.batched_s.{size}"] = bench_metric(
            batched[size], unit="s", direction="lower"
        )
    for name, entry in apps.items():
        metrics[f"apps.{name}.improvement"] = bench_metric(
            entry["improvement"], unit="x", direction="higher"
        )
        metrics[f"apps.{name}.batch_64_s"] = bench_metric(
            entry["batch_64_s"], unit="s", direction="lower"
        )
    write_bench_report(
        "marshal",
        metrics,
        legacy={
            "stream": {
                "items": STREAM_ITEMS,
                "kind": "int",
                "per_element_s": per_element_s,
                "batched_s": {str(k): v for k, v in batched.items()},
                "throughput_improvement_at_64": improvement_64,
            },
            "apps": apps,
        },
    )

    # The acceptance bar: batching must at least double the modeled
    # throughput of the per-element path on this stream.
    assert improvement_64 >= 2.0, (
        f"batched throughput only {improvement_64:.2f}x the per-element "
        f"path; the fast path is not amortizing fixed crossing costs"
    )
    # Bigger batches amortize strictly better on a fixed stream.
    assert batched[1000] <= batched[64] <= batched[8] < per_element_s
    for name, entry in apps.items():
        assert entry["improvement"] >= 1.0, (
            f"{name}: batch_size=64 modeled slower than per-element"
        )


@pytest.mark.slow
def test_bench_marshal_batch_large_stream(benchmark):
    # Full-scale sweep: 100k elements. The fixed-cost amortization
    # saturates (per-byte costs dominate), so the improvement over
    # per-element crossing grows with N before leveling off.
    n = 100_000
    def run():
        return (
            marshal_stream_seconds(n, 1),
            marshal_stream_seconds(n, 4096),
        )

    per_element_s, batched_s = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert per_element_s / batched_s >= 10.0


@pytest.mark.slow
def test_bench_marshal_batch_apps_default_scale(benchmark):
    # App-level differential at the apps' default (full) workloads.
    from repro.apps import SUITE

    def run():
        out = {}
        for name in sorted(APP_WORKLOADS):
            entry, args = SUITE[name].default_args()
            scalar = Runtime(
                compile_app(name), RuntimeConfig(batch_size=1)
            ).run(entry, args)
            fast = Runtime(
                compile_app(name), RuntimeConfig(batch_size=64)
            ).run(entry, args)
            assert scalar.value == fast.value, name
            out[name] = (scalar.seconds, fast.seconds)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (scalar_s, fast_s) in results.items():
        assert fast_s <= scalar_s, name
