"""Crash-consistent recovery: modeled checkpoint overhead and
restart/recovery latency (docs/RECOVERY.md).

Two claims, measured:

1. **Checkpoint overhead** — persisting delta frames at the default
   cadence (every 32nd decision point) costs a modeled
   ``PERSIST_FIXED_S + bytes / PERSIST_BYTES_PER_S`` per frame. Summed
   over a run, that must stay under 10% of the run's own modeled
   seconds for every streaming app measured — otherwise crash
   consistency would not be a default-on-able feature.

2. **Recovery latency** — the wall-clock cost of the full
   crash/restart loop (journal replay, checkpoint resume, convergence)
   and of replaying a journal alone. Wall metrics are informational
   (``kind="wall"``): recovery work is real Python execution, not
   simulated time, so the trajectory gate does not judge them.

Results land in ``benchmarks/out/BENCH_recovery.json`` in the
``repro.bench/1`` envelope, so the PR 9 trajectory gate tracks the
modeled overhead per PR.
"""

import time

from repro.apps import compile_app, workloads
from repro.runtime import CheckpointRecorder, Runtime, RuntimeConfig
from repro.service import load_journal, run_recovery_driver

from harness import bench_metric, format_table, write_bench_report

#: Modeled checkpoint overhead every measured app must stay under at
#: the default cadence (docs/RECOVERY.md).
ACCEPTANCE_OVERHEAD_PCT = 10.0

#: Streaming apps measured, with workloads scaled to 4096-item
#: streams in 64-item batches so the default cadence actually fires
#: (64 decision points -> 2 frames at interval 32). These bit-op
#: streams are launch-dominated — the worst case for the fixed persist
#: latency — so clearing the bar here clears it for compute-heavy
#: apps too. Map apps make a single device consult and never reach the
#: interval; their overhead is trivially zero.
APPS = ("bitflip", "gray_pipeline", "parity", "crc8")
STREAM_ITEMS = 4096
BATCH = 64


def _measure_overhead(name: str, tmp_path) -> dict:
    entry, args = getattr(workloads, f"{name}_args")(STREAM_ITEMS)
    compiled = compile_app(name)
    recorder = CheckpointRecorder(
        str(tmp_path / f"{name}.ckpt"), job_id=f"bench-{name}"
    )
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            scheduler="sequential",
            batch_size=BATCH,
            device_batch_size=BATCH,
        ),
        checkpointer=recorder,
    )
    outcome = runtime.run(entry, args)
    overhead_pct = 100.0 * recorder.modeled_persist_s / (
        outcome.ledger.total_s or 1.0
    )
    return {
        "app": name,
        "run_modeled_s": outcome.ledger.total_s,
        "persist_modeled_s": recorder.modeled_persist_s,
        "frames": recorder.frames_persisted,
        "overhead_pct": overhead_pct,
    }


def test_bench_recovery(benchmark, tmp_path, capsys):
    def run():
        rows = [_measure_overhead(name, tmp_path) for name in APPS]

        journal_dir = str(tmp_path / "journal")
        recover_wall = time.perf_counter()
        report = run_recovery_driver(
            journal_dir, jobs=6, scheduler="sequential", seed=1,
            crash_call=3,
        )
        recover_wall = time.perf_counter() - recover_wall

        replay_wall = time.perf_counter()
        snapshot = load_journal(journal_dir)
        replay_wall = time.perf_counter() - replay_wall
        return rows, report, recover_wall, replay_wall, snapshot

    rows, report, recover_wall, replay_wall, snapshot = (
        benchmark.pedantic(run, rounds=1, iterations=1)
    )

    worst = max(rows, key=lambda r: r["overhead_pct"])
    driver = report["driver"]
    assert driver["verified_jobs"] == 6
    assert driver["restarts"] >= 1
    for row in rows:
        assert row["frames"] >= 1, f"{row['app']}: no frames persisted"
        assert row["overhead_pct"] < ACCEPTANCE_OVERHEAD_PCT, (
            f"{row['app']}: modeled checkpoint overhead "
            f"{row['overhead_pct']:.2f}% breaches the "
            f"{ACCEPTANCE_OVERHEAD_PCT:.0f}% bar"
        )

    table = [
        [
            row["app"],
            f"{row['run_modeled_s'] * 1e3:,.2f}ms",
            f"{row['persist_modeled_s'] * 1e6:,.0f}us",
            f"{row['frames']}",
            f"{row['overhead_pct']:.2f}%",
        ]
        for row in rows
    ]
    with capsys.disabled():
        print()
        print(
            format_table(
                ["app", "modeled run", "modeled persist", "frames",
                 "overhead"],
                table,
            )
        )
        print(
            f"recovery: {driver['restarts']} restart(s), "
            f"{driver['checkpoint_resumes']} checkpoint resume(s), "
            f"{driver['verified_jobs']} job(s) verified in "
            f"{recover_wall:.2f}s wall; journal replay of "
            f"{snapshot.records} record(s) in "
            f"{replay_wall * 1e3:.1f}ms wall"
        )

    path = write_bench_report(
        "recovery",
        {
            "checkpoint_overhead_pct": bench_metric(
                worst["overhead_pct"], unit="percent", direction="lower"
            ),
            "checkpoint_persist_s": bench_metric(
                sum(r["persist_modeled_s"] for r in rows),
                unit="seconds",
                direction="lower",
            ),
            "recovery_wall_s": bench_metric(
                recover_wall, unit="seconds", direction="lower",
                kind="wall",
            ),
            "journal_replay_wall_s": bench_metric(
                replay_wall, unit="seconds", direction="lower",
                kind="wall",
            ),
        },
        legacy={
            "apps": {row["app"]: row for row in rows},
            "acceptance_overhead_pct": ACCEPTANCE_OVERHEAD_PCT,
            "driver": driver,
            "journal_records": snapshot.records,
        },
    )
    with capsys.disabled():
        print(f"wrote {path}")
