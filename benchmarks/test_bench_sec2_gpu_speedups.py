"""E5 — Section 2.2's quantified claim: "We achieved end-to-end
speedups of 12x-431x for a number of benchmarks co-executing between
CPU and GPU using an NVidia GTX580 (Fermi)".

The harness measures every benchmark at laptop scale (functionally real
execution) and extrapolates the simulated cost model to paper-era
problem sizes. The assertions target the published *shape*:

* the compute-bound benchmarks all win by double digits or more;
* the slowest winner lands near the paper's 12x floor;
* the fastest winners land in the hundreds, near the 431x ceiling;
* memory-/transfer-bound kernels (saxpy, bare reduction) do NOT win —
  the crossover the paper's communication-cost discussion implies.
"""

import pytest

from harness import (
    PAPER_SCALES,
    bench_metric,
    format_table,
    measure_pair,
    paper_scale,
    write_bench_report,
)

COMPUTE_BOUND = [
    "black_scholes",
    "kmeans",
    "convolution",
    "mandelbrot",
    "dct8x8",
    "matmul",
    "nbody",
]
TRANSFER_BOUND = ["saxpy", "vector_sum"]


def _measure_all():
    return {name: paper_scale(measure_pair(name)) for name in PAPER_SCALES}


@pytest.fixture(scope="module")
def results():
    return _measure_all()


def test_bench_sec2_speedup_table(benchmark, results, capsys):
    table_rows = []
    for name in COMPUTE_BOUND + TRANSFER_BOUND:
        r = results[name]
        table_rows.append(
            [
                name,
                r.paper_label,
                f"{r.measured_speedup:6.2f}x",
                f"{r.paper_speedup:7.1f}x",
            ]
        )
    table = benchmark.pedantic(
        lambda: format_table(
            ["benchmark", "paper scale", "measured", "paper-scale model"],
            table_rows,
        ),
        rounds=1,
        iterations=1,
    )
    print("\n[E5] CPU+GPU end-to-end speedups (paper: 12x-431x):\n" + table)

    metrics = {
        f"paper_speedup.{name}": bench_metric(
            results[name].paper_speedup, unit="x", direction="higher"
        )
        for name in COMPUTE_BOUND
    }
    metrics["paper_speedup.floor"] = bench_metric(
        min(results[n].paper_speedup for n in COMPUTE_BOUND),
        unit="x",
        direction="higher",
    )
    metrics["paper_speedup.ceiling"] = bench_metric(
        max(results[n].paper_speedup for n in COMPUTE_BOUND),
        unit="x",
        direction="higher",
    )
    write_bench_report("sec2_gpu_speedups", metrics)

    speedups = [results[n].paper_speedup for n in COMPUTE_BOUND]
    low, high = min(speedups), max(speedups)
    # Shape of the published range: double-digit floor near 12x,
    # ceiling in the hundreds near 431x.
    assert 8 <= low <= 40, f"floor {low:.1f}x out of band"
    assert 200 <= high <= 800, f"ceiling {high:.1f}x out of band"
    # Every compute-bound benchmark wins decisively.
    assert all(s > 5 for s in speedups)


def test_bench_sec2_transfer_bound_crossover(benchmark, results):
    """Transfer-dominated kernels must not show the headline wins."""

    def check():
        return {n: results[n].paper_speedup for n in TRANSFER_BOUND}

    speedups = benchmark.pedantic(check, rounds=1, iterations=1)
    for name, speedup in speedups.items():
        assert speedup < 3, name


def test_bench_sec2_ordering(benchmark, results):
    """Relative ordering: per-item arithmetic intensity decides rank."""
    ranked = benchmark.pedantic(
        lambda: sorted(
            COMPUTE_BOUND, key=lambda n: results[n].paper_speedup
        ),
        rounds=1,
        iterations=1,
    )
    assert ranked.index("nbody") > ranked.index("mandelbrot")
    assert ranked.index("mandelbrot") > ranked.index("black_scholes")
    assert ranked.index("matmul") > ranked.index("kmeans")


def test_bench_sec2_amd_gpu_also_wins(benchmark):
    """Section 7: "significant performance gains on AMD and NVidia
    GPUs" — swap in the Cayman-class device model."""
    from repro.apps import SUITE, compile_app
    from repro.devices.gpu.timing import RADEON_HD6970
    from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

    compiled = compile_app("dct8x8")
    entry, args = SUITE["dct8x8"].default_args()

    def run():
        cpu = Runtime(
            compiled,
            RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
        ).run(entry, args)
        amd = Runtime(compiled, RuntimeConfig(gpu=RADEON_HD6970)).run(
            entry, args
        )
        return cpu, amd

    cpu, amd = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cpu.value == amd.value
    assert cpu.seconds / amd.seconds > 10


def test_bench_sec2_divergence_penalty(benchmark):
    """SIMT ablation: mandelbrot's per-pixel iteration counts diverge
    within warps; warp-max timing must exceed the ideal sum/width."""
    from harness import measure_pair as mp

    pair = mp("mandelbrot")
    offload = pair.gpu_outcome.ledger.offloads[0]
    # Reconstruct: divergence-inflated lane cycles vs ideal.
    from repro.apps import SUITE, compile_app
    from repro.runtime import Runtime, RuntimeConfig

    runtime = Runtime(compile_app("mandelbrot"), RuntimeConfig())
    entry, args = SUITE["mandelbrot"].default_args()
    benchmark.pedantic(
        lambda: runtime.run(entry, args), rounds=1, iterations=1
    )
    timing = runtime.gpu.kernel_log[-1]
    ideal = timing.total_abstract_cycles
    diverged = timing.warp_lane_cycles
    assert diverged > ideal * 1.05  # real divergence observed
