"""E6 — Section 4.2: the task substitution algorithm.

Ablates the runtime's substitution policy on the two-stage
gray_pipeline graph:

* the paper's primitive algorithm (prefer larger, prefer accelerators);
* prefer-smaller (two single-stage substitutions -> twice the boundary
  crossings);
* bytecode-only (manual direction to the CPU);
* the communication-aware policy the paper leaves to future work,
  which must refuse the accelerator for tiny streams and accept it for
  compute-heavy ones.
"""

import pytest

from repro.apps import SUITE, compile_app
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_INT, ValueArray

from harness import bench_metric, format_table, write_bench_report


def run_policy(policy, n=512):
    compiled = compile_app("gray_pipeline")
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))
    xs = ValueArray(KIND_INT, [i * 7 % 65536 for i in range(n)])
    outcome = runtime.run("GrayCoder.pipeline", [xs])
    expected = ValueArray(
        KIND_INT, [((x ^ (x >> 1)) * 3 + 1) for x in xs]
    )
    assert outcome.value == expected
    _, decisions = runtime.substitution_log[-1]
    return outcome, decisions


def test_bench_sec4_policy_table(benchmark, capsys):
    policies = {
        "primitive (prefer larger)": SubstitutionPolicy(),
        "prefer smaller": SubstitutionPolicy(prefer_larger=False),
        "bytecode only": SubstitutionPolicy(use_accelerators=False),
        "communication-aware": SubstitutionPolicy(
            communication_aware=True
        ),
    }

    def run_all():
        return {name: run_policy(p) for name, p in policies.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for name, (outcome, decisions) in results.items():
        spans = [len(d.covered_task_ids) for d in decisions]
        rows.append(
            [
                name,
                str(spans) if spans else "(none)",
                len(outcome.ledger.offloads),
                f"{outcome.seconds * 1e6:.1f}us",
            ]
        )
    table = format_table(
        ["policy", "substituted spans", "offloads", "simulated time"],
        rows,
    )
    print("\n[E6] Substitution policy ablation (512-item stream):\n" + table)

    primitive = results["primitive (prefer larger)"]
    smaller = results["prefer smaller"]
    # Prefer-larger picks the single fused 2-stage artifact...
    assert [len(d.covered_task_ids) for d in primitive[1]] == [2]
    # ... prefer-smaller picks two 1-stage artifacts.
    assert [len(d.covered_task_ids) for d in smaller[1]] == [1, 1]
    # The fused substitution crosses the boundary once instead of
    # twice, so it is strictly cheaper.
    assert primitive[0].seconds < smaller[0].seconds
    write_bench_report(
        "sec4_substitution",
        {
            "primitive.simulated_s": bench_metric(
                primitive[0].seconds, unit="s", direction="lower"
            ),
            "prefer_smaller.simulated_s": bench_metric(
                smaller[0].seconds, unit="s", direction="lower"
            ),
            "primitive_vs_smaller.speedup": bench_metric(
                smaller[0].seconds / primitive[0].seconds,
                unit="x",
                direction="higher",
            ),
        },
    )


def test_bench_sec4_fused_halves_crossings(benchmark):
    primitive, _ = benchmark.pedantic(
        lambda: run_policy(SubstitutionPolicy()), rounds=1, iterations=1
    )
    smaller, _ = run_policy(SubstitutionPolicy(prefer_larger=False))
    crossings = lambda outcome: sum(  # noqa: E731
        len(o.transfers) for o in outcome.ledger.offloads
    )
    assert crossings(primitive) * 2 == crossings(smaller)


def test_bench_sec4_communication_aware_threshold(benchmark, capsys):
    """The future-work policy: accelerate only when compute beats
    transfer. Tiny stream -> CPU; compute-heavy filter -> accelerator."""
    policy = SubstitutionPolicy(communication_aware=True)

    def tiny():
        return run_policy(policy, n=4)

    _, tiny_decisions = benchmark.pedantic(tiny, rounds=1, iterations=1)
    assert tiny_decisions == []

    # The CRC filter does ~8 rounds of bit work per item: compute-heavy
    # enough for the estimator to approve on a long stream.
    compiled = compile_app("crc8")
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))
    xs = ValueArray(KIND_INT, [i % 256 for i in range(4096)])
    runtime.run("Crc8.checksums", [xs])
    _, decisions = runtime.substitution_log[-1]
    assert len(decisions) == 1
    print(
        "\n[E6] communication-aware: tiny stream -> no substitution; "
        f"4096-item CRC stream -> {decisions[0].device} substitution"
    )


def test_bench_sec4_manual_direction(benchmark):
    """Manual direction overrides the primitive preference."""
    compiled = compile_app("gray_pipeline")
    stage_ids = [s.task_id for s in compiled.task_graphs[0].stages]
    policy = SubstitutionPolicy(
        directives={stage_ids[1]: "fpga", stage_ids[2]: "fpga"}
    )
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))
    xs = ValueArray(KIND_INT, list(range(64)))

    outcome = benchmark.pedantic(
        lambda: runtime.run("GrayCoder.pipeline", [xs]),
        rounds=1,
        iterations=1,
    )
    _, decisions = runtime.substitution_log[-1]
    assert {d.device for d in decisions} == {"fpga"}
    assert outcome.value == ValueArray(
        KIND_INT, [((x ^ (x >> 1)) * 3 + 1) for x in range(64)]
    )


def test_bench_sec4_runtime_adaptation(benchmark, capsys):
    """The paper's remaining future work: dynamic migration / runtime
    adaptation. The adaptive task probes the CPU, probes the device at
    two batch sizes (separating fixed launch/transfer overhead from
    marginal cost), then migrates the stream to the winner."""
    from repro.values import KIND_INT, ValueArray

    def run():
        out = {}
        for n in (96, 4096):
            compiled = compile_app("crc8")
            runtime = Runtime(
                compiled,
                RuntimeConfig(policy=SubstitutionPolicy(adaptive=True)),
            )
            xs = ValueArray(KIND_INT, [i % 256 for i in range(n)])
            outcome = runtime.run("Crc8.checksums", [xs])
            record = (
                runtime.adaptation_log[0]
                if runtime.adaptation_log
                else None
            )
            out[n] = (outcome, record)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, (outcome, record) in results.items():
        if record is None:
            rows.append([n, "(stream ended during probing)", "-", "-"])
        else:
            rows.append(
                [
                    n,
                    record.chosen,
                    f"{record.cpu_s_per_item * 1e9:.0f}ns",
                    f"{record.device_s_per_item * 1e9:.0f}ns",
                ]
            )
    table = format_table(
        ["stream", "migrated to", "cpu/item", "device/item (amortized)"],
        rows,
    )
    print("\n[E6] runtime adaptation (CRC-8):\n" + table)
    _, long_record = results[4096]
    assert long_record is not None
    # Compute-heavy CRC at full batches: the device must win.
    assert long_record.chosen == long_record.device
    assert (
        long_record.device_s_per_item < long_record.cpu_s_per_item
    )
