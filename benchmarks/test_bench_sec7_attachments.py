"""E7 — Section 7: device attachments and three-way co-execution.

The paper's runtime supports PCIe-attached FPGAs (Nallatech 280) and
UART-attached development boards (XUP V5, Spartan LX9). This bench
contrasts the two attachments on the same CRC stream — the UART's
~92 KB/s serial link must dominate end-to-end time by orders of
magnitude — and demonstrates the CPU+GPU+FPGA co-execution the paper
lists as a current direction.
"""

import pytest

from repro.apps import SUITE, compile_app
from repro.devices.interconnect import PCIE_GEN2_X8, UART_921600
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_INT, ValueArray

from harness import bench_metric, format_table, write_bench_report


def crc_runtime(link):
    compiled = compile_app("crc8")
    crc_id = compiled.task_graphs[0].stages[1].task_id
    policy = SubstitutionPolicy(directives={crc_id: "fpga"})
    config = RuntimeConfig(policy=policy, fpga_link=link)
    return Runtime(compiled, config)


def test_bench_sec7_pcie_vs_uart(benchmark, capsys):
    xs = ValueArray(KIND_INT, [i % 256 for i in range(2048)])

    def run_both():
        out = {}
        for label, link in (
            ("PCIe x8 (Nallatech 280)", PCIE_GEN2_X8),
            ("UART 921600 (XUP V5)", UART_921600),
        ):
            runtime = crc_runtime(link)
            out[label] = runtime.run("Crc8.checksums", [xs])
        return out

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = []
    for label, outcome in results.items():
        offload = outcome.ledger.offloads[0]
        rows.append(
            [
                label,
                f"{offload.kernel_s * 1e6:9.1f}us",
                f"{offload.transfer_s * 1e6:9.1f}us",
                f"{outcome.seconds * 1e3:9.3f}ms",
            ]
        )
    table = format_table(
        ["attachment", "fpga compute", "transfer", "end-to-end"], rows
    )
    print("\n[E7] FPGA attachment comparison (2048-word CRC stream):\n" + table)

    pcie = results["PCIe x8 (Nallatech 280)"]
    uart = results["UART 921600 (XUP V5)"]
    assert pcie.value == uart.value
    # Same silicon, ~3 orders of magnitude apart end-to-end.
    assert uart.seconds / pcie.seconds > 100
    # Over UART the link utterly dominates the FPGA compute time.
    uart_offload = uart.ledger.offloads[0]
    assert uart_offload.transfer_s > uart_offload.kernel_s * 50
    write_bench_report(
        "sec7_attachments",
        {
            "crc2048.pcie.end_to_end_s": bench_metric(
                pcie.seconds, unit="s", direction="lower"
            ),
            "crc2048.uart.end_to_end_s": bench_metric(
                uart.seconds, unit="s", direction="lower"
            ),
        },
    )


def test_bench_sec7_three_way_coexecution(benchmark, capsys):
    """CPU host + GPU map + FPGA stream in one Lime program."""
    compiled = compile_app("hybrid")
    pack_id = compiled.task_graphs[0].stages[1].task_id
    policy = SubstitutionPolicy(directives={pack_id: "fpga"})
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))
    entry, args = SUITE["hybrid"].default_args()

    outcome = benchmark.pedantic(
        lambda: runtime.run(entry, args), rounds=1, iterations=1
    )
    devices = sorted({o.device for o in outcome.ledger.offloads})
    assert devices == ["fpga", "gpu"]
    assert outcome.ledger.host_s > 0
    rows = [
        [
            o.device,
            o.kind,
            o.items,
            f"{o.kernel_s * 1e6:.1f}us",
            f"{o.transfer_s * 1e6:.1f}us",
        ]
        for o in outcome.ledger.offloads
    ]
    table = format_table(
        ["device", "kind", "items", "compute", "transfer"], rows
    )
    print(
        "\n[E7] Three-way co-execution (hybrid app), host "
        f"{outcome.ledger.host_s * 1e6:.1f}us:\n" + table
    )
    # Cross-check against the pure-bytecode run.
    plain = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    assert outcome.value == pytest.approx(plain.value)


def test_bench_sec7_uart_only_viable_for_tiny_payloads(benchmark):
    """Why the dev boards are still useful: at very small payloads the
    UART's fixed latency is tolerable and iteration speed is what
    matters (the design-flow story of Section 5)."""
    xs_small = ValueArray(KIND_INT, [1, 2, 3, 4])
    runtime = crc_runtime(UART_921600)
    outcome = benchmark.pedantic(
        lambda: runtime.run("Crc8.checksums", [xs_small]),
        rounds=1,
        iterations=1,
    )
    assert outcome.seconds < 0.01  # 10ms: fine for interactive debug
