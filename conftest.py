"""Pytest root configuration: make ``src/`` importable without install.

The canonical installation is ``pip install -e .``; this fallback keeps
the test suite runnable in offline environments where the editable
build cannot fetch the ``wheel`` build dependency.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "benchmarks"))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
