#!/usr/bin/env python3
"""Runtime adaptation demo (§4.2's future work, implemented).

Runs the same CRC-8 task graph twice with the adaptive substitution
policy: a short stream, where the device's fixed launch/transfer
overhead makes the CPU the right home, and a long stream, where the
device's tiny marginal per-item cost wins. The adaptive task probes
both implementations online and migrates accordingly — no programmer
annotation changes.

Run:  python examples/adaptive_migration.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.apps import compile_app
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_INT, ValueArray


def run_stream(n: int) -> None:
    compiled = compile_app("crc8")
    runtime = Runtime(
        compiled, RuntimeConfig(policy=SubstitutionPolicy(adaptive=True))
    )
    xs = ValueArray(KIND_INT, [i % 256 for i in range(n)])
    outcome = runtime.run("Crc8.checksums", [xs])
    print(f"stream of {n} items -> {len(outcome.value)} checksums")
    if not runtime.adaptation_log:
        print("  stream ended during probing; stayed on the CPU\n")
        return
    record = runtime.adaptation_log[0]
    print(
        f"  probe: cpu {record.cpu_s_per_item * 1e9:7.1f} ns/item vs "
        f"{record.device} {record.device_s_per_item * 1e9:7.1f} ns/item "
        f"(amortized; fixed overhead {record.device_fixed_s * 1e6:.1f} us)"
    )
    print(f"  migrated to: {record.chosen}\n")


def main() -> None:
    print("adaptive task placement for the CRC-8 pipeline\n")
    run_stream(96)
    run_stream(8192)


if __name__ == "__main__":
    main()
