#!/usr/bin/env python3
"""FPGA design flow: Verilog generation, cycle simulation, waveform.

Reproduces the Figure 4 workflow: compile a Lime task to Verilog,
simulate it driving the paper's 9 input bits, and write a VCD waveform
(openable in GTKWave) showing the inReady/inData/outReady handshake
with the 1-cycle FIFO and the read/compute/publish pipeline.

Run:  python examples/fpga_waveform.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.apps import compile_app
from repro.devices.fpga import FPGASimulator
from repro.values import parse_bit_literal


def main() -> None:
    compiled = compile_app("bitflip")
    (artifact,) = compiled.store.for_device("fpga")
    bundle = artifact.payload

    print("generated Verilog:")
    print("-" * 60)
    print(artifact.text)
    print("-" * 60)
    report = bundle.synthesis
    print(
        f"synthesis estimate: {report.luts} LUTs, "
        f"{report.flipflops} FFs, {report.brams} BRAM, "
        f"Fmax {report.fmax_hz / 1e6:.0f} MHz\n"
    )

    nine_bits = [int(b) for b in parse_bit_literal("110010111")]
    sim = FPGASimulator(period_ns=4)
    result = sim.run_stream(
        bundle.elaborate(), nine_bits, return_to_zero=True
    )

    print(f"drove 9 input bits; outputs: {result.outputs}")
    print(f"total cycles: {result.cycles}")
    in_ready = result.vcd.rising_edges("inReady")
    fifo = result.vcd.rising_edges("fifo_valid")
    out_ready = result.vcd.rising_edges("outReady")
    print(f"inReady transitions: {len(in_ready)} (paper: 9)")
    print(
        f"FIFO latency: {(fifo[0] - in_ready[0]) // 4} cycle; "
        f"read+compute+publish: {(out_ready[0] - fifo[0]) // 4} cycles "
        "(paper: one cycle each)"
    )

    out_path = os.path.join(os.path.dirname(__file__), "bitflip.vcd")
    with open(out_path, "w") as f:
        f.write(result.vcd.render())
    print(f"\nVCD waveform written to {out_path}")


if __name__ == "__main__":
    main()
