#!/usr/bin/env python3
"""GPU co-execution: Black-Scholes option pricing.

Demonstrates the map/reduce offload path of Section 2.2: a pure Lime
method is compiled to an OpenCL kernel, the runtime marshals the option
arrays across the Figure 3 boundary, the SIMT simulator executes the
kernel, and the ledger reports the simulated CPU-vs-GPU speedup.

Run:  python examples/gpu_option_pricing.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.apps import SUITE, compile_app
from repro.apps.workloads import black_scholes_args
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy


def main() -> None:
    compiled = compile_app("black_scholes")
    print("generated OpenCL kernel:")
    print("-" * 60)
    kernel_text = compiled.artifact_texts("gpu")[
        "gpu:map:BlackScholes.callPrice"
    ]
    print(kernel_text)
    print("-" * 60)

    entry, args = black_scholes_args(n=2048)

    cpu = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    gpu_runtime = Runtime(compiled)
    gpu = gpu_runtime.run(entry, args)

    assert cpu.value == gpu.value, "GPU result must match the CPU result"
    print(f"\npriced {len(gpu.value)} options")
    print(f"first five prices: {[round(p, 3) for p in list(gpu.value)[:5]]}")
    print(f"CPU (bytecode) simulated time: {cpu.seconds * 1e3:8.3f} ms")
    print(f"CPU+GPU simulated time:        {gpu.seconds * 1e3:8.3f} ms")
    print(f"end-to-end speedup:            {cpu.seconds / gpu.seconds:8.2f}x")

    offload = gpu.ledger.offloads[0]
    print("\noffload breakdown:")
    print(f"  kernel compute : {offload.compute_s * 1e6:8.2f} us")
    print(f"  kernel memory  : {offload.memory_s * 1e6:8.2f} us")
    print(f"  launch         : {offload.launch_s * 1e6:8.2f} us")
    print(f"  marshal+PCIe   : {offload.transfer_s * 1e6:8.2f} us")


if __name__ == "__main__":
    main()
