#!/usr/bin/env python3
"""Three-way co-execution: CPU + GPU + FPGA from one Lime program.

The ``Hybrid`` application contains a data-parallel map (offloaded to
the simulated GTX580), a streaming task graph (manually directed onto
the simulated FPGA, as Section 4.2 allows), and host code tying them
together — the CPU+GPU+FPGA direction Section 7 describes.

Run:  python examples/heterogeneous_pipeline.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.apps import SUITE, compile_app
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy


def main() -> None:
    compiled = compile_app("hybrid")
    print("Lime source:")
    print(SUITE["hybrid"].source)

    # Manual direction: pin the stream filter to the FPGA so the map
    # uses the GPU and the stream uses the FPGA simultaneously.
    pack_id = compiled.task_graphs[0].stages[1].task_id
    policy = SubstitutionPolicy(directives={pack_id: "fpga"})
    runtime = Runtime(compiled, RuntimeConfig(policy=policy))

    entry, args = SUITE["hybrid"].default_args()
    outcome = runtime.run(entry, args)

    print(f"result: {outcome.value:.4f}")
    print(f"host (bytecode) time: {outcome.ledger.host_s * 1e6:9.2f} us")
    for offload in outcome.ledger.offloads:
        print(
            f"  {offload.device:5s} {offload.kind:13s} "
            f"{offload.items:5d} items  "
            f"compute {offload.kernel_s * 1e6:8.2f} us  "
            f"transfer {offload.transfer_s * 1e6:8.2f} us"
        )
    print(f"total simulated time: {outcome.seconds * 1e3:.3f} ms")

    # Functional cross-check against the bytecode-only configuration.
    plain = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run(entry, args)
    assert abs(outcome.value - plain.value) < 1e-6
    print("matches the bytecode-only run: OK")


if __name__ == "__main__":
    main()
