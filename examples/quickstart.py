#!/usr/bin/env python3
"""Quickstart: compile and run the paper's Figure 1 example.

Compiles the Bitflip Lime class through the full Liquid Metal
toolchain (bytecode + OpenCL + Verilog backends), prints the compile
report, and runs the ``taskFlip`` task graph with automatic task
substitution onto the simulated GPU.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)

from repro.compiler import compile_program, compile_report
from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy
from repro.values import KIND_BIT, ValueArray, parse_bit_literal

LIME_SOURCE = """
public class Bitflip {
    local static bit flip(bit b) {
        return ~b;
    }
    local static bit[[]] mapFlip(bit[[]] input) {
        var flipped = Bitflip @ flip(input);
        return flipped;
    }
    static bit[[]] taskFlip(bit[[]] input) {
        bit[] result = new bit[input.length];
        var flipit = input.source(1)
            => ([ task flip ])
            => result.<bit>sink();
        flipit.finish();
        return new bit[[]](result);
    }
}
"""


def main() -> None:
    print("compiling Figure 1 ...")
    compiled = compile_program(LIME_SOURCE, filename="Bitflip.lime")
    print(compile_report(compiled))
    print()

    stream = ValueArray(KIND_BIT, parse_bit_literal("110010111"))
    print(f"input : {stream!r}")

    # Accelerated run: the runtime substitutes the [flip] region.
    runtime = Runtime(compiled)
    outcome = runtime.run("Bitflip.taskFlip", [stream])
    graph_id, decisions = runtime.substitution_log[0]
    chosen = decisions[0].device if decisions else "bytecode"
    print(f"output: {outcome.value!r}   (flip ran on: {chosen})")
    print(f"simulated end-to-end time: {outcome.seconds * 1e6:.2f} us")

    # Same graph pinned to bytecode, for comparison.
    plain = Runtime(
        compiled,
        RuntimeConfig(policy=SubstitutionPolicy(use_accelerators=False)),
    ).run("Bitflip.taskFlip", [stream])
    print(
        f"bytecode-only time:        {plain.seconds * 1e6:.2f} us "
        "(tiny streams stay faster on the CPU — exactly why the "
        "runtime lets you direct placement)"
    )

    # The data-parallel form of the same computation.
    map_result = runtime.call("Bitflip.mapFlip", [stream])
    assert map_result == outcome.value
    print(f"mapFlip agrees: {map_result!r}")


if __name__ == "__main__":
    main()
