#!/usr/bin/env python3
"""Regenerate the headline result: §2.2's 12×–431× CPU+GPU speedups.

Runs every GPU benchmark functionally at laptop scale, then
extrapolates the simulator's own fixed/variable cost decomposition to
paper-era problem sizes, printing the speedup table EXPERIMENTS.md
records. Expect ~30-60 seconds of wall time (the bytecode interpreter
executes every work item twice, once per device path).

Run:  python examples/reproduce_speedups.py
"""

import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "src")
)
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
)

from harness import PAPER_SCALES, format_table, measure_pair, paper_scale


def main() -> None:
    print("measuring CPU vs CPU+GPU (simulated GTX580) ...\n")
    rows = []
    winners = []
    for name in PAPER_SCALES:
        result = paper_scale(measure_pair(name))
        rows.append(
            [
                name,
                result.paper_label,
                f"{result.measured_speedup:7.2f}x",
                f"{result.paper_speedup:8.1f}x",
            ]
        )
        if result.paper_speedup > 5:
            winners.append(result.paper_speedup)
        print(f"  {name} done")
    print()
    print(
        format_table(
            ["benchmark", "paper scale", "measured", "paper-scale model"],
            rows,
        )
    )
    print(
        f"\ncompute-bound range: {min(winners):.0f}x - {max(winners):.0f}x"
        "  (paper: 12x - 431x end-to-end on a GTX580)"
    )


if __name__ == "__main__":
    main()
