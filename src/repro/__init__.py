"""Liquid Metal reproduction: a compiler and runtime for heterogeneous
computing (Auerbach et al., DAC 2012).

The package implements the Lime language frontend, a task-graph IR,
three backend compilers (bytecode/CPU, OpenCL/GPU, Verilog/FPGA),
simulated devices, and the co-execution runtime.

Typical entry points::

    from repro import compile_program, Runtime

    result = compile_program(lime_source)
    runtime = Runtime(result)
    runtime.call("Main", "run")
"""

from repro.errors import LiquidMetalError

__version__ = "1.0.0"


def compile_program(source, filename="<lime>", options=None, **kwargs):
    """Compile Lime source text to a :class:`repro.compiler.CompileResult`.

    Pass a :class:`repro.compiler.CompileOptions` via ``options=``;
    legacy keyword flags still work but emit ``DeprecationWarning``.
    Imported lazily so that ``import repro`` stays cheap.
    """
    from repro.compiler import compile_program as _compile

    return _compile(source, filename=filename, options=options, **kwargs)


_LAZY_ATTRS = {
    "Runtime": ("repro.runtime.engine", "Runtime"),
    "RuntimeConfig": ("repro.runtime.engine", "RuntimeConfig"),
    "compile_report": ("repro.compiler", "compile_report"),
    "CompileOptions": ("repro.compiler", "CompileOptions"),
    "CompilerSession": ("repro.compiler", "CompilerSession"),
    "CacheOptions": ("repro.backends.artifacts", "CacheOptions"),
    "ArtifactCache": ("repro.backends.artifacts", "ArtifactCache"),
    "Tracer": ("repro.obs", "Tracer"),
    "NULL_TRACER": ("repro.obs", "NULL_TRACER"),
    "CoExecutionService": ("repro.service", "CoExecutionService"),
    "ServiceConfig": ("repro.service", "ServiceConfig"),
    "DevicePool": ("repro.service", "DevicePool"),
    "AdmissionController": ("repro.service", "AdmissionController"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY_ATTRS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


__all__ = [
    "AdmissionController",
    "ArtifactCache",
    "CacheOptions",
    "CoExecutionService",
    "CompileOptions",
    "CompilerSession",
    "DevicePool",
    "LiquidMetalError",
    "NULL_TRACER",
    "Runtime",
    "RuntimeConfig",
    "ServiceConfig",
    "Tracer",
    "compile_program",
    "compile_report",
]
