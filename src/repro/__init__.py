"""Liquid Metal reproduction: a compiler and runtime for heterogeneous
computing (Auerbach et al., DAC 2012).

The package implements the Lime language frontend, a task-graph IR,
three backend compilers (bytecode/CPU, OpenCL/GPU, Verilog/FPGA),
simulated devices, and the co-execution runtime.

Typical entry points::

    from repro import compile_program, Runtime

    result = compile_program(lime_source)
    runtime = Runtime(result)
    runtime.call("Main", "run")
"""

from repro.errors import LiquidMetalError

__version__ = "1.0.0"


def compile_program(source, **kwargs):
    """Compile Lime source text to a :class:`repro.compiler.CompileResult`.

    Imported lazily so that ``import repro`` stays cheap.
    """
    from repro.compiler import compile_program as _compile

    return _compile(source, **kwargs)


def __getattr__(name):
    if name == "Runtime":
        from repro.runtime.engine import Runtime

        return Runtime
    if name == "compile_report":
        from repro.compiler import compile_report

        return compile_report
    raise AttributeError(f"module 'repro' has no attribute {name!r}")


__all__ = ["LiquidMetalError", "Runtime", "compile_program", "compile_report"]
