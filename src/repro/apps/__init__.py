"""Application suite: Lime benchmark programs plus workload builders.

``SUITE`` maps benchmark names to :class:`AppSpec`; ``compile_app``
caches compilation so tests and benches share toolchain output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.apps import programs, workloads
from repro.compiler import CompileOptions, CompileResult, compile_program


@dataclass(frozen=True)
class AppSpec:
    """One benchmark: its Lime source and default workload."""

    name: str
    source: str
    default_args: Callable        # () -> (entry_point, args)
    flavor: str                   # 'map' | 'reduce' | 'stream' | 'hybrid'
    description: str = ""


SUITE = {
    "bitflip": AppSpec(
        "bitflip",
        programs.FIGURE1_BITFLIP,
        workloads.bitflip_args,
        "stream",
        "Figure 1: the paper's running example",
    ),
    "saxpy": AppSpec(
        "saxpy",
        programs.SAXPY,
        workloads.saxpy_args,
        "map",
        "memory-bound a*x+y (transfer-dominated on GPU)",
    ),
    "vector_sum": AppSpec(
        "vector_sum",
        programs.VECTOR_SUM,
        workloads.vector_sum_args,
        "reduce",
        "tree reduction",
    ),
    "black_scholes": AppSpec(
        "black_scholes",
        programs.BLACK_SCHOLES,
        workloads.black_scholes_args,
        "map",
        "option pricing: exp/log/sqrt per element",
    ),
    "mandelbrot": AppSpec(
        "mandelbrot",
        programs.MANDELBROT,
        workloads.mandelbrot_args,
        "map",
        "escape-time iteration, highly compute-bound",
    ),
    "nbody": AppSpec(
        "nbody",
        programs.NBODY,
        workloads.nbody_args,
        "map",
        "O(n) interactions per body (broadcast position arrays)",
    ),
    "matmul": AppSpec(
        "matmul",
        programs.MATMUL,
        workloads.matmul_args,
        "map",
        "dense matrix multiply, one output cell per work item",
    ),
    "convolution": AppSpec(
        "convolution",
        programs.CONVOLUTION,
        workloads.convolution_args,
        "map",
        "1-D FIR filter",
    ),
    "dct8x8": AppSpec(
        "dct8x8",
        programs.DCT8X8,
        workloads.dct_args,
        "map",
        "8x8 block DCT",
    ),
    "kmeans": AppSpec(
        "kmeans",
        programs.KMEANS,
        workloads.kmeans_args,
        "map",
        "nearest-centroid assignment",
    ),
    "gray_pipeline": AppSpec(
        "gray_pipeline",
        programs.GRAY_PIPELINE,
        workloads.gray_pipeline_args,
        "stream",
        "two-stage integer pipeline (fusable)",
    ),
    "crc8": AppSpec(
        "crc8",
        programs.CRC8,
        workloads.crc8_args,
        "stream",
        "CRC-8 with a constant-bound bit loop (FPGA unrolls)",
    ),
    "parity": AppSpec(
        "parity",
        programs.PARITY,
        workloads.parity_args,
        "stream",
        "32-bit parity to a single bit",
    ),
    "hybrid": AppSpec(
        "hybrid",
        programs.HYBRID,
        workloads.hybrid_args,
        "hybrid",
        "GPU map + FPGA stream + CPU host in one program",
    ),
    "running_sum": AppSpec(
        "running_sum",
        programs.RUNNING_SUM,
        workloads.running_sum_args,
        "stream",
        "stateful task via an isolating constructor (Section 2.1)",
    ),
    "sobel": AppSpec(
        "sobel",
        programs.SOBEL,
        workloads.sobel_args,
        "map",
        "3x3 Sobel edge detection over a broadcast image",
    ),
    "photo_pipeline": AppSpec(
        "photo_pipeline",
        programs.PHOTO_PIPELINE,
        workloads.photo_pipeline_args,
        "map",
        "chained brighten+clamp map pair (map-fusable)",
    ),
}

_COMPILE_CACHE: dict = {}


def compile_app(
    name: str, options: "CompileOptions | None" = None, **legacy
) -> CompileResult:
    """Compile one suite application (cached per options object).

    Legacy keyword flags are folded onto :class:`CompileOptions` by
    ``compile_program``'s deprecation shim.
    """
    if legacy:
        options = (options or CompileOptions()).replace(**legacy)
    options = options or CompileOptions()
    key = (name, options)
    if key not in _COMPILE_CACHE:
        _COMPILE_CACHE[key] = compile_program(
            SUITE[name].source, filename=f"<{name}.lime>", options=options
        )
    return _COMPILE_CACHE[key]


__all__ = ["AppSpec", "SUITE", "compile_app", "programs", "workloads"]
