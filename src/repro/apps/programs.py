"""Lime application sources.

These are the benchmarks of the reproduction, mirroring the application
mix of the paper and its PLDI'12 companion: data-parallel map/reduce
kernels that offload to the GPU (Black-Scholes, Mandelbrot, n-body,
matrix multiply, DCT, convolution, k-means, saxpy, vector reduction)
and streaming bit/integer task graphs that synthesize to the FPGA
(bitflip — Figure 1 — CRC, Gray coding, parity).

Every program is plain Lime source compiled by the full toolchain; the
``@`` map operator uses broadcasting for whole-array operands (matrix
multiply receives its input matrices broadcast, one output element per
work item).
"""

FIGURE1_BITFLIP = """
public class Bitflip {
    local static bit flip(bit b) {
        return ~b;
    }
    local static bit[[]] mapFlip(bit[[]] input) {
        var flipped = Bitflip @ flip(input);
        return flipped;
    }
    static bit[[]] taskFlip(bit[[]] input) {
        bit[] result = new bit[input.length];
        var flipit = input.source(1)
            => ([ task flip ])
            => result.<bit>sink();
        flipit.finish();
        return new bit[[]](result);
    }
}
"""

SAXPY = """
public class Saxpy {
    local static float axpy(float a, float x, float y) {
        return a * x + y;
    }
    static float[[]] run(float a, float[[]] xs, float[[]] ys) {
        return Saxpy @ axpy(a, xs, ys);
    }
}
"""

VECTOR_SUM = """
public class VectorOps {
    local static float add(float x, float y) {
        return x + y;
    }
    static float sum(float[[]] xs) {
        return VectorOps ! add(xs);
    }
}
"""

BLACK_SCHOLES = """
public class BlackScholes {
    local static float cnd(float x) {
        float a1 = 0.31938153f;
        float a2 = -0.356563782f;
        float a3 = 1.781477937f;
        float a4 = -1.821255978f;
        float a5 = 1.330274429f;
        float l = Math.abs(x);
        float k = 1.0f / (1.0f + 0.2316419f * l);
        float k2 = k * k;
        float k3 = k2 * k;
        float k4 = k3 * k;
        float k5 = k4 * k;
        float poly = a1 * k + a2 * k2 + a3 * k3 + a4 * k4 + a5 * k5;
        float w = 1.0f
            - 0.39894228f * (float) Math.exp(-0.5f * l * l) * poly;
        if (x < 0.0f) {
            return 1.0f - w;
        }
        return w;
    }
    local static float callPrice(float s, float k, float t,
                                 float r, float v) {
        float sqrtT = (float) Math.sqrt(t);
        float d1 = ((float) Math.log(s / k) + (r + 0.5f * v * v) * t)
            / (v * sqrtT);
        float d2 = d1 - v * sqrtT;
        return s * cnd(d1) - k * (float) Math.exp(-r * t) * cnd(d2);
    }
    static float[[]] price(float[[]] spots, float[[]] strikes,
                           float[[]] times, float r, float v) {
        return BlackScholes @ callPrice(spots, strikes, times, r, v);
    }
}
"""

MANDELBROT = """
public class Mandelbrot {
    local static int escape(int idx, int width, int height, int maxIter) {
        float cx = -2.5f + 3.5f * (float) (idx % width) / (float) width;
        float cy = -1.25f + 2.5f * (float) (idx / width) / (float) height;
        float zx = 0.0f;
        float zy = 0.0f;
        for (int i = 0; i < maxIter; i++) {
            float zx2 = zx * zx;
            float zy2 = zy * zy;
            if (zx2 + zy2 > 4.0f) {
                return i;
            }
            float nzx = zx2 - zy2 + cx;
            zy = 2.0f * zx * zy + cy;
            zx = nzx;
        }
        return maxIter;
    }
    static int[[]] render(int[[]] indices, int width, int height,
                          int maxIter) {
        return Mandelbrot @ escape(indices, width, height, maxIter);
    }
}
"""

NBODY = """
public class NBody {
    local static float potential(int i, float[[]] xs, float[[]] ys,
                                 float[[]] zs, float[[]] ms) {
        float px = xs[i];
        float py = ys[i];
        float pz = zs[i];
        float acc = 0.0f;
        for (int j = 0; j < xs.length; j++) {
            if (j != i) {
                float dx = xs[j] - px;
                float dy = ys[j] - py;
                float dz = zs[j] - pz;
                float dist = (float) Math.sqrt(
                    dx * dx + dy * dy + dz * dz + 0.0001f);
                acc += ms[j] / dist;
            }
        }
        return acc;
    }
    static float[[]] potentials(int[[]] indices, float[[]] xs,
                                float[[]] ys, float[[]] zs,
                                float[[]] ms) {
        return NBody @ potential(indices, xs, ys, zs, ms);
    }
}
"""

MATMUL = """
public class MatMul {
    local static float cell(int idx, float[[]] a, float[[]] b, int n) {
        int row = idx / n;
        int col = idx % n;
        float acc = 0.0f;
        for (int k = 0; k < n; k++) {
            acc += a[row * n + k] * b[k * n + col];
        }
        return acc;
    }
    static float[[]] multiply(int[[]] indices, float[[]] a,
                              float[[]] b, int n) {
        return MatMul @ cell(indices, a, b, n);
    }
}
"""

CONVOLUTION = """
public class Convolution {
    local static float at(int i, float[[]] signal, float[[]] taps) {
        float acc = 0.0f;
        for (int k = 0; k < taps.length; k++) {
            int j = i + k - taps.length / 2;
            if (j >= 0 && j < signal.length) {
                acc += signal[j] * taps[k];
            }
        }
        return acc;
    }
    static float[[]] fir(int[[]] indices, float[[]] signal,
                         float[[]] taps) {
        return Convolution @ at(indices, signal, taps);
    }
}
"""

DCT8X8 = """
public class Dct {
    local static float coeff(int idx, float[[]] pixels, int width) {
        int blocksPerRow = width / 8;
        int block = idx / 64;
        int within = idx % 64;
        int u = within % 8;
        int v = within / 8;
        int bx = (block % blocksPerRow) * 8;
        int by = (block / blocksPerRow) * 8;
        float sum = 0.0f;
        for (int y = 0; y < 8; y++) {
            for (int x = 0; x < 8; x++) {
                float pixel = pixels[(by + y) * width + bx + x];
                float cosx = (float) Math.cos(
                    (2.0 * x + 1.0) * u * 3.141592653589793 / 16.0);
                float cosy = (float) Math.cos(
                    (2.0 * y + 1.0) * v * 3.141592653589793 / 16.0);
                sum += pixel * cosx * cosy;
            }
        }
        float cu = u == 0 ? 0.35355338f : 0.5f;
        float cv = v == 0 ? 0.35355338f : 0.5f;
        return cu * cv * sum;
    }
    static float[[]] transform(int[[]] indices, float[[]] pixels,
                               int width) {
        return Dct @ coeff(indices, pixels, width);
    }
}
"""

KMEANS = """
public class KMeans {
    local static int nearest(int i, float[[]] px, float[[]] py,
                             float[[]] cx, float[[]] cy) {
        float bestD = 3.4e38f;
        int best = 0;
        for (int c = 0; c < cx.length; c++) {
            float dx = px[i] - cx[c];
            float dy = py[i] - cy[c];
            float d = dx * dx + dy * dy;
            if (d < bestD) {
                bestD = d;
                best = c;
            }
        }
        return best;
    }
    static int[[]] assign(int[[]] indices, float[[]] px, float[[]] py,
                          float[[]] cx, float[[]] cy) {
        return KMeans @ nearest(indices, px, py, cx, cy);
    }
}
"""

GRAY_PIPELINE = """
public class GrayCoder {
    local static int encode(int x) {
        return x ^ (x >> 1);
    }
    local static int scale(int x) {
        return x * 3 + 1;
    }
    static int[[]] pipeline(int[[]] input) {
        int[] result = new int[input.length];
        var g = input.source(1)
            => ([ task encode => task scale ])
            => result.<int>sink();
        g.finish();
        return new int[[]](result);
    }
}
"""

CRC8 = """
public class Crc8 {
    local static int step(int b) {
        int crc = b & 255;
        for (int i = 0; i < 8; i++) {
            int fb = crc & 1;
            crc = crc >> 1;
            if (fb == 1) {
                crc = crc ^ 140;
            }
        }
        return crc;
    }
    static int[[]] checksums(int[[]] data) {
        int[] out = new int[data.length];
        var t = data.source(1) => ([ task step ]) => out.<int>sink();
        t.finish();
        return new int[[]](out);
    }
}
"""

PARITY = """
public class Parity {
    local static bit parity(int x) {
        int p = 0;
        for (int i = 0; i < 32; i++) {
            p = p ^ ((x >> i) & 1);
        }
        return p == 1 ? bit.one : bit.zero;
    }
    static bit[[]] compute(int[[]] words) {
        bit[] out = new bit[words.length];
        var t = words.source(1) => ([ task parity ]) => out.<bit>sink();
        t.finish();
        return new bit[[]](out);
    }
}
"""

HYBRID = """
public class Hybrid {
    local static float heavy(float x) {
        float acc = 0.0f;
        for (int i = 0; i < 16; i++) {
            acc += (float) Math.exp(Math.sin(x + i));
        }
        return acc;
    }
    local static int pack(int x) {
        return (x * 7 + 3) & 255;
    }
    static float run(float[[]] xs, int[[]] codes) {
        var mapped = Hybrid @ heavy(xs);
        int[] out = new int[codes.length];
        var t = codes.source(1) => ([ task pack ]) => out.<int>sink();
        t.finish();
        float s = 0.0f;
        for (int i = 0; i < mapped.length; i++) {
            s += mapped[i];
        }
        for (int i = 0; i < out.length; i++) {
            s += out[i];
        }
        return s;
    }
}
"""

RUNNING_SUM = """
public class Accumulator {
    int sum;
    local Accumulator(int start) {
        this.sum = start;
    }
    local int add(int x) {
        sum += x;
        return sum;
    }
}
public class RunningSum {
    static int[[]] compute(int[[]] xs) {
        int[] out = new int[xs.length];
        var acc = new Accumulator(0);
        var t = xs.source(1) => ([ task acc.add ]) => out.<int>sink();
        t.finish();
        return new int[[]](out);
    }
}
"""

SOBEL = """
public class Sobel {
    local static int at(int idx, int[[]] image, int width, int height) {
        int x = idx % width;
        int y = idx / width;
        if (x == 0 || y == 0 || x == width - 1 || y == height - 1) {
            return 0;
        }
        int p00 = image[(y - 1) * width + x - 1];
        int p01 = image[(y - 1) * width + x];
        int p02 = image[(y - 1) * width + x + 1];
        int p10 = image[y * width + x - 1];
        int p12 = image[y * width + x + 1];
        int p20 = image[(y + 1) * width + x - 1];
        int p21 = image[(y + 1) * width + x];
        int p22 = image[(y + 1) * width + x + 1];
        int gx = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
        int gy = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
        int magnitude = Math.abs(gx) + Math.abs(gy);
        return Math.min(magnitude, 255);
    }
    static int[[]] edges(int[[]] indices, int[[]] image,
                         int width, int height) {
        return Sobel @ at(indices, image, width, height);
    }
}
"""

PHOTO_PIPELINE = """
public class Photo {
    local static int brighten(int p) {
        return p * 2 + 16;
    }
    local static int clamp8(int p) {
        return p > 255 ? 255 : (p < 0 ? 0 : p);
    }
    static int[[]] develop(int[[]] pixels) {
        var bright = Photo @ brighten(pixels);
        return Photo @ clamp8(bright);
    }
}
"""

ALL_SOURCES = {
    "bitflip": FIGURE1_BITFLIP,
    "saxpy": SAXPY,
    "vector_sum": VECTOR_SUM,
    "black_scholes": BLACK_SCHOLES,
    "mandelbrot": MANDELBROT,
    "nbody": NBODY,
    "matmul": MATMUL,
    "convolution": CONVOLUTION,
    "dct8x8": DCT8X8,
    "kmeans": KMEANS,
    "gray_pipeline": GRAY_PIPELINE,
    "crc8": CRC8,
    "parity": PARITY,
    "hybrid": HYBRID,
    "running_sum": RUNNING_SUM,
    "sobel": SOBEL,
    "photo_pipeline": PHOTO_PIPELINE,
}
