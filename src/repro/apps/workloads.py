"""Deterministic workload generators for the application suite.

All generators are seeded (xorshift-based) so every benchmark run sees
identical inputs; sizes default to "paper-shaped but laptop-scale"
(the timing model makes simulated speedups size-stable, so modest
inputs reproduce the published shapes)."""

from __future__ import annotations

from repro.values import KIND_FLOAT, KIND_INT, Bit, ValueArray


class XorShift:
    """Tiny deterministic PRNG (xorshift32)."""

    def __init__(self, seed: int = 0x9E3779B9):
        self.state = seed & 0xFFFFFFFF or 1

    def next_u32(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def uniform(self, lo: float, hi: float) -> float:
        return lo + (hi - lo) * (self.next_u32() / 2**32)

    def randint(self, lo: int, hi: int) -> int:
        return lo + self.next_u32() % (hi - lo)


def float_array(n: int, lo: float, hi: float, seed: int) -> ValueArray:
    rng = XorShift(seed)
    return ValueArray(
        KIND_FLOAT, [rng.uniform(lo, hi) for _ in range(n)]
    )


def int_array(n: int, lo: int, hi: int, seed: int) -> ValueArray:
    rng = XorShift(seed)
    return ValueArray(KIND_INT, [rng.randint(lo, hi) for _ in range(n)])


def index_array(n: int) -> ValueArray:
    return ValueArray(KIND_INT, list(range(n)))


def bit_stream(n: int, seed: int = 7) -> ValueArray:
    rng = XorShift(seed)
    from repro.values import KIND_BIT

    return ValueArray(KIND_BIT, [Bit(rng.next_u32() & 1) for _ in range(n)])


# -- per-benchmark argument builders ----------------------------------------
# Each returns (entry_point, args) for a compiled program's Runtime.


def saxpy_args(n: int = 4096):
    return "Saxpy.run", [
        2.5,
        float_array(n, -1.0, 1.0, 11),
        float_array(n, -1.0, 1.0, 12),
    ]


def vector_sum_args(n: int = 4096):
    return "VectorOps.sum", [float_array(n, 0.0, 1.0, 13)]


def black_scholes_args(n: int = 2048):
    return "BlackScholes.price", [
        float_array(n, 10.0, 100.0, 21),   # spot
        float_array(n, 10.0, 100.0, 22),   # strike
        float_array(n, 0.2, 2.0, 23),      # time
        0.02,                               # rate (broadcast)
        0.30,                               # volatility (broadcast)
    ]


def mandelbrot_args(width: int = 48, height: int = 32, max_iter: int = 48):
    n = width * height
    return "Mandelbrot.render", [index_array(n), width, height, max_iter]


def nbody_args(n: int = 192):
    return "NBody.potentials", [
        index_array(n),
        float_array(n, -1.0, 1.0, 31),
        float_array(n, -1.0, 1.0, 32),
        float_array(n, -1.0, 1.0, 33),
        float_array(n, 0.5, 2.0, 34),
    ]


def matmul_args(n: int = 24):
    return "MatMul.multiply", [
        index_array(n * n),
        float_array(n * n, -1.0, 1.0, 41),
        float_array(n * n, -1.0, 1.0, 42),
        n,
    ]


def convolution_args(n: int = 2048, taps: int = 17):
    return "Convolution.fir", [
        index_array(n),
        float_array(n, -1.0, 1.0, 51),
        float_array(taps, -0.5, 0.5, 52),
    ]


def dct_args(width: int = 32, height: int = 16):
    n = width * height
    return "Dct.transform", [
        index_array(n),
        float_array(n, 0.0, 255.0, 61),
        width,
    ]


def kmeans_args(points: int = 1024, clusters: int = 12):
    return "KMeans.assign", [
        index_array(points),
        float_array(points, 0.0, 10.0, 71),
        float_array(points, 0.0, 10.0, 72),
        float_array(clusters, 0.0, 10.0, 73),
        float_array(clusters, 0.0, 10.0, 74),
    ]


def bitflip_args(n: int = 256):
    return "Bitflip.taskFlip", [bit_stream(n, seed=9)]


def gray_pipeline_args(n: int = 256):
    return "GrayCoder.pipeline", [int_array(n, 0, 1 << 16, 81)]


def crc8_args(n: int = 256):
    return "Crc8.checksums", [int_array(n, 0, 256, 82)]


def parity_args(n: int = 256):
    return "Parity.compute", [int_array(n, 0, 1 << 30, 83)]


def hybrid_args(n_map: int = 512, n_stream: int = 128):
    return "Hybrid.run", [
        float_array(n_map, -1.0, 1.0, 91),
        int_array(n_stream, 0, 1 << 16, 92),
    ]


def running_sum_args(n: int = 128):
    return "RunningSum.compute", [int_array(n, -50, 50, 95)]


def photo_pipeline_args(n: int = 256):
    return "Photo.develop", [int_array(n, 0, 200, 87)]


def sobel_args(width: int = 48, height: int = 32):
    n = width * height
    return "Sobel.edges", [
        index_array(n),
        int_array(n, 0, 256, 97),
        width,
        height,
    ]


# Reduced workloads for smoke drivers and quick sweeps (the service
# driver and `make serve-smoke` use these; the test suite keeps its
# own equivalent table). Deterministic: same name -> same workload.
SMALL = {
    "bitflip": lambda: bitflip_args(64),
    "saxpy": lambda: saxpy_args(128),
    "vector_sum": lambda: vector_sum_args(128),
    "black_scholes": lambda: black_scholes_args(96),
    "mandelbrot": lambda: mandelbrot_args(16, 8, 16),
    "nbody": lambda: nbody_args(32),
    "matmul": lambda: matmul_args(8),
    "convolution": lambda: convolution_args(128, 5),
    "dct8x8": lambda: dct_args(8, 8),
    "kmeans": lambda: kmeans_args(96, 4),
    "gray_pipeline": lambda: gray_pipeline_args(96),
    "crc8": lambda: crc8_args(96),
    "parity": lambda: parity_args(96),
    "hybrid": lambda: hybrid_args(96, 48),
    "running_sum": lambda: running_sum_args(48),
    "sobel": lambda: sobel_args(12, 8),
    "photo_pipeline": lambda: photo_pipeline_args(128),
}


def small_args(name: str):
    """The reduced ``(entry, args)`` workload for one suite app."""
    return SMALL[name]()
