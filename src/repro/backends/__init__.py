"""Backend device compilers: bytecode (CPU), OpenCL (GPU), Verilog
(FPGA) — plus the content-addressed artifact cache they feed
(:mod:`repro.backends.artifacts`, docs/CACHING.md)."""

from repro.backends.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactCache,
    CacheEntry,
    CacheOptions,
    cache_key,
    canonical_fingerprint,
    ir_fingerprint,
    modeled_compile_s,
    modeled_load_s,
    options_fingerprint,
)
from repro.backends.common import (
    BYTECODE,
    DEVICE_KINDS,
    FPGA,
    GPU,
    Artifact,
    ArtifactStore,
    Exclusion,
    Manifest,
)

__all__ = [
    "ARTIFACT_SCHEMA",
    "Artifact",
    "ArtifactCache",
    "ArtifactStore",
    "BYTECODE",
    "CacheEntry",
    "CacheOptions",
    "DEVICE_KINDS",
    "Exclusion",
    "FPGA",
    "GPU",
    "Manifest",
    "cache_key",
    "canonical_fingerprint",
    "ir_fingerprint",
    "modeled_compile_s",
    "modeled_load_s",
    "options_fingerprint",
]
