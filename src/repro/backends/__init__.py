"""Backend device compilers: bytecode (CPU), OpenCL (GPU), Verilog (FPGA)."""

from repro.backends.common import (
    BYTECODE,
    DEVICE_KINDS,
    FPGA,
    GPU,
    Artifact,
    ArtifactStore,
    Exclusion,
    Manifest,
)

__all__ = [
    "Artifact",
    "ArtifactStore",
    "BYTECODE",
    "DEVICE_KINDS",
    "Exclusion",
    "FPGA",
    "GPU",
    "Manifest",
]
