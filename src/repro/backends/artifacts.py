"""Content-addressed, persistent artifact cache.

Section 1 describes artifacts "managed in a repository and identified
via a unique identifier" — this module is the repository form taken to
its logical end: a *content-addressed* store in which every backend
compilation (bytecode assembly, OpenCL codegen, Verilog elaboration +
synthesis estimation) is keyed by a deterministic digest of

* the task IR in canonical form (:func:`ir_fingerprint`),
* the backend identifier,
* the backend-relevant :class:`~repro.compiler.CompileOptions`
  fingerprint (:func:`options_fingerprint`), and
* the device-family parameter of :class:`CacheOptions`.

A warm compile (`docs/CACHING.md`) loads the cached artifacts without
invoking backend codegen at all — the shape metalfpga's
``.mtl4archive`` pipeline harvesting proved out (seconds of reload vs
minutes of recompile). Integrity is enforced on load: every payload and
source text carries a SHA-256 recorded at store time, and any mismatch,
truncation, or unreadable manifest demotes the entry to a *miss* (never
a wrong-artifact hit) while a ``cache.corrupt`` counter fires and the
entry is dropped. Capacity is bounded by LRU-by-bytes eviction with
explicit pinning.

Time in this reproduction is modeled, and the cache participates in the
model: each entry records the modeled cost of the backend compilation
it replaces (:func:`modeled_compile_s`) and loads are charged a modeled
deserialization cost (:func:`modeled_load_s`), so
``benchmarks/test_bench_artifact_cache.py`` can state the warm-vs-cold
compile-path speedup on the same simulated clock the runtime uses.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import shutil

from repro.backends.common import Artifact, Exclusion, Manifest
from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER

#: Manifest schema tag; bump when the on-disk layout changes. Entries
#: with any other tag are treated as misses (forward/backward safe).
ARTIFACT_SCHEMA = "repro.artifact/1"

_MANIFEST_NAME = "manifest.json"
_LRU_NAME = "lru.json"
_OBJECTS_DIR = "objects"
_SOURCE_EXT = {"opencl": ".cl", "verilog": ".v", "java-bytecode": ".class.txt"}

_CACHE_MODES = ("off", "read", "readwrite")


# ---------------------------------------------------------------------------
# Options
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CacheOptions:
    """Validated cache sub-options block of ``CompileOptions``.

    ``mode`` is ``off`` (default: no cache I/O at all), ``read`` (warm
    starts allowed, misses are *not* written back — e.g. CI consuming a
    harvested cache read-only), or ``readwrite`` (misses populate the
    cache). ``max_bytes`` bounds the payload bytes kept on disk; LRU
    entries are evicted past it, pinned entries never. ``device_family``
    partitions keys across simulated hardware generations so one cache
    directory can serve several device descriptions.
    """

    cache_dir: "str | None" = None
    max_bytes: "int | None" = None
    mode: str = "off"
    device_family: str = "default"

    def __post_init__(self):
        self.validate()

    def validate(self) -> "CacheOptions":
        if self.mode not in _CACHE_MODES:
            raise ConfigurationError(
                f"unknown cache mode {self.mode!r}; expected one of "
                + ", ".join(_CACHE_MODES)
            )
        if self.mode != "off" and not self.cache_dir:
            raise ConfigurationError(
                f"cache mode {self.mode!r} requires cache_dir"
            )
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {self.max_bytes}"
            )
        if not self.device_family:
            raise ConfigurationError("device_family must be non-empty")
        return self

    def replace(self, **overrides) -> "CacheOptions":
        """A validated copy with the given fields changed."""
        return dataclasses.replace(self, **overrides)

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    @property
    def readable(self) -> bool:
        return self.mode in ("read", "readwrite")

    @property
    def writable(self) -> bool:
        return self.mode == "readwrite"


# ---------------------------------------------------------------------------
# Canonical fingerprints and key derivation
# ---------------------------------------------------------------------------

#: Fields skipped during canonicalization: source positions don't
#: change semantics (whitespace edits must still hit), and ``checked``
#: is the CheckedProgram backref whose facts are already reflected in
#: the lowered IR.
_SKIP_FIELDS = ("position", "checked")


def _canonicalize(obj, out: list, stack: set) -> None:
    """Append a deterministic rendering of ``obj`` to ``out``."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        out.append(repr(obj))
        return
    key = id(obj)
    if key in stack:  # cycle: identity marker, not infinite recursion
        out.append("<cycle>")
        return
    stack.add(key)
    try:
        if isinstance(obj, (list, tuple)):
            out.append("[")
            for item in obj:
                _canonicalize(item, out, stack)
                out.append(",")
            out.append("]")
        elif isinstance(obj, (set, frozenset)):
            # Iteration order is hash-seed dependent; render elements
            # individually and sort the renderings for stable digests.
            parts = []
            for item in obj:
                sub: list = []
                _canonicalize(item, sub, stack)
                parts.append("".join(sub))
            out.append("{" + ",".join(sorted(parts)) + "}")
        elif isinstance(obj, dict):
            out.append("{")
            for k in sorted(obj, key=repr):
                out.append(f"{k!r}:")
                _canonicalize(obj[k], out, stack)
                out.append(",")
            out.append("}")
        elif dataclasses.is_dataclass(obj):
            out.append(type(obj).__name__)
            out.append("(")
            for f in dataclasses.fields(obj):
                if f.name in _SKIP_FIELDS:
                    continue
                out.append(f"{f.name}=")
                _canonicalize(getattr(obj, f.name), out, stack)
                out.append(",")
            out.append(")")
        else:
            # Non-dataclass leaves (semantic types, enum descriptors)
            # all define content-bearing reprs.
            out.append(f"<{type(obj).__name__}:{obj!r}>")
    finally:
        stack.discard(key)


def canonical_fingerprint(obj) -> str:
    """SHA-256 of the canonical structural rendering of ``obj``."""
    out: list = []
    _canonicalize(obj, out, set())
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


def ir_fingerprint(module) -> str:
    """Canonical digest of an :class:`repro.ir.nodes.IRModule`.

    Walks functions (sorted by qualified name), classes, and task
    graphs; ignores source positions and the CheckedProgram backref, so
    formatting-only edits still hit while any semantic change — or an
    optimization-pipeline change that alters the lowered IR — misses.
    """
    out: list = []
    stack: set = set()
    out.append("functions{")
    for name in sorted(module.functions):
        out.append(f"{name}=")
        _canonicalize(module.functions[name], out, stack)
    out.append("}classes{")
    for name in sorted(module.classes):
        out.append(f"{name}=")
        _canonicalize(module.classes[name], out, stack)
    out.append("}graphs{")
    for graph in module.task_graphs:
        _canonicalize(graph, out, stack)
    out.append("}")
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


#: CompileOptions fields that affect each backend's output. Keys only
#: include what the backend actually reads, so toggling an FPGA knob
#: invalidates Verilog entries without touching OpenCL ones.
_BACKEND_OPTION_FIELDS = {
    "bytecode": ("run_optimizations",),
    "opencl": ("run_optimizations",),
    "verilog": (
        "run_optimizations",
        "fpga_pipelined",
        "fpga_max_stage_depth",
    ),
}

BACKEND_IDS = tuple(_BACKEND_OPTION_FIELDS)


def options_fingerprint(options, backend_id: str) -> dict:
    """The backend-relevant slice of a CompileOptions, as a stable dict."""
    fields = _BACKEND_OPTION_FIELDS.get(backend_id)
    if fields is None:
        raise ConfigurationError(f"unknown backend id {backend_id!r}")
    return {name: getattr(options, name) for name in fields}


def cache_key(module, backend_id: str, options, device_family: str = "default") -> str:
    """The content-addressed digest for one backend compilation."""
    material = {
        "schema": ARTIFACT_SCHEMA,
        "backend": backend_id,
        "ir": ir_fingerprint(module),
        "options": options_fingerprint(options, backend_id),
        "device_family": device_family,
    }
    blob = json.dumps(material, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Modeled compile/load clock
# ---------------------------------------------------------------------------

#: Modeled compile cost per backend: (base seconds per compilation,
#: seconds per artifact, seconds per character of generated source).
#: Calibrated to the systems the cache imitates: bytecode assembly is
#: sub-millisecond, an OpenCL driver JIT is tens of milliseconds, and
#: Verilog elaboration + synthesis estimation models the minutes-scale
#: FPGA flow that makes harvesting worthwhile (SNIPPETS Snippet 1:
#: ~5 s archive reload vs 5-10 minutes of recompile).
_MODELED_COMPILE = {
    "bytecode": (400e-6, 50e-6, 0.0),
    "opencl": (8e-3, 15e-3, 4e-6),
    "verilog": (120e-3, 1.8, 90e-6),
    # Runtime kernel specialization re-JITs one already-generated
    # kernel with guards baked in: cheaper than a full OpenCL backend
    # run but still a driver round trip (docs/FUSION.md).
    "specialize": (4e-3, 6e-3, 2e-6),
}

#: Modeled warm-load cost: fixed open/validate latency per entry plus
#: payload bytes through a 256 MiB/s deserialization pipe.
_MODELED_LOAD_BASE_S = 400e-6
_MODELED_LOAD_BYTES_PER_S = 256 * 1024 * 1024


def modeled_compile_s(backend_id: str, artifacts: list) -> float:
    """Modeled seconds the backend compilation costs (cold path)."""
    base, per_artifact, per_char = _MODELED_COMPILE.get(
        backend_id, _MODELED_COMPILE["bytecode"]
    )
    total = base
    for artifact in artifacts:
        total += per_artifact
        total += per_char * len(artifact.text or "")
    return total


def modeled_load_s(payload_bytes: int) -> float:
    """Modeled seconds a warm load of ``payload_bytes`` costs."""
    return _MODELED_LOAD_BASE_S + payload_bytes / _MODELED_LOAD_BYTES_PER_S


# ---------------------------------------------------------------------------
# Cache entries
# ---------------------------------------------------------------------------


@dataclasses.dataclass
class CacheEntry:
    """One loaded (or just-stored) backend compilation."""

    backend: str
    key: str
    artifacts: list
    exclusions: list
    modeled_compile_s: float
    payload_bytes: int

    @property
    def modeled_load_s(self) -> float:
        return modeled_load_s(self.payload_bytes)


class CacheCorruption(Exception):
    """Internal: an entry failed an integrity check during load."""


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactCache:
    """The persistent content-addressed store (docs/CACHING.md).

    Directory layout::

        <cache_dir>/
          lru.json                    # logical clock, ticks, pins
          objects/<digest>/manifest.json
          objects/<digest>/payload.<i>.pkl
          objects/<digest>/source.<i>.cl|.v|...

    One entry holds *everything one backend produced for one key*:
    artifacts (manifest metadata + pickled payloads + generated source
    text) and exclusions. The cache is single-writer per process — the
    same assumption the on-disk repository makes.
    """

    def __init__(self, options: CacheOptions):
        if not options.enabled:
            raise ConfigurationError(
                "ArtifactCache requires CacheOptions with mode != 'off'"
            )
        self.options = options.validate()
        self.root = options.cache_dir
        os.makedirs(self._objects_root(), exist_ok=True)

    # -- paths ----------------------------------------------------------

    def _objects_root(self) -> str:
        return os.path.join(self.root, _OBJECTS_DIR)

    def _entry_dir(self, key: str) -> str:
        return os.path.join(self._objects_root(), key)

    def _lru_path(self) -> str:
        return os.path.join(self.root, _LRU_NAME)

    # -- LRU state ------------------------------------------------------

    def _read_lru(self) -> dict:
        try:
            with open(self._lru_path()) as f:
                state = json.load(f)
        except (OSError, json.JSONDecodeError):
            state = {}
        state.setdefault("tick", 0)
        state.setdefault("entries", {})
        state.setdefault("pins", [])
        return state

    def _write_lru(self, state: dict) -> None:
        tmp = self._lru_path() + ".tmp"
        with open(tmp, "w") as f:
            json.dump(state, f, indent=2, sort_keys=True)
        os.replace(tmp, self._lru_path())

    def _touch(self, key: str) -> None:
        state = self._read_lru()
        state["tick"] += 1
        state["entries"][key] = state["tick"]
        self._write_lru(state)

    def _forget(self, key: str) -> None:
        state = self._read_lru()
        state["entries"].pop(key, None)
        if key in state["pins"]:
            state["pins"].remove(key)
        self._write_lru(state)

    # -- pinning --------------------------------------------------------

    def pin(self, key: str) -> None:
        """Exempt an entry from LRU eviction."""
        state = self._read_lru()
        if key not in state["pins"]:
            state["pins"].append(key)
        self._write_lru(state)

    def unpin(self, key: str) -> None:
        state = self._read_lru()
        if key in state["pins"]:
            state["pins"].remove(key)
        self._write_lru(state)

    def pinned(self) -> list:
        return list(self._read_lru()["pins"])

    # -- inspection -----------------------------------------------------

    def keys(self) -> list:
        """Digests of every entry present on disk, sorted."""
        root = self._objects_root()
        if not os.path.isdir(root):
            return []
        return sorted(
            name
            for name in os.listdir(root)
            if os.path.isfile(os.path.join(root, name, _MANIFEST_NAME))
        )

    def entry_bytes(self, key: str) -> int:
        """Total payload + text bytes of one entry."""
        entry_dir = self._entry_dir(key)
        total = 0
        for name in os.listdir(entry_dir):
            if name != _MANIFEST_NAME:
                total += os.path.getsize(os.path.join(entry_dir, name))
        return total

    def total_bytes(self) -> int:
        return sum(self.entry_bytes(key) for key in self.keys())

    def stats(self) -> dict:
        """Machine-readable summary for ``python -m repro cache stats``."""
        state = self._read_lru()
        per_backend: dict = {}
        entries = []
        for key in self.keys():
            try:
                with open(
                    os.path.join(self._entry_dir(key), _MANIFEST_NAME)
                ) as f:
                    manifest = json.load(f)
            except (OSError, json.JSONDecodeError):
                manifest = {}
            backend = manifest.get("backend", "<corrupt>")
            per_backend.setdefault(
                backend, {"entries": 0, "bytes": 0, "artifacts": 0}
            )
            nbytes = self.entry_bytes(key)
            per_backend[backend]["entries"] += 1
            per_backend[backend]["bytes"] += nbytes
            per_backend[backend]["artifacts"] += len(
                manifest.get("artifacts", ())
            )
            entries.append(
                {
                    "key": key,
                    "backend": backend,
                    "bytes": nbytes,
                    "artifacts": len(manifest.get("artifacts", ())),
                    "modeled_compile_s": manifest.get(
                        "modeled_compile_s", 0.0
                    ),
                    "pinned": key in state["pins"],
                    "last_used_tick": state["entries"].get(key),
                }
            )
        return {
            "schema": ARTIFACT_SCHEMA,
            "cache_dir": self.root,
            "mode": self.options.mode,
            "device_family": self.options.device_family,
            "max_bytes": self.options.max_bytes,
            "total_bytes": sum(e["bytes"] for e in entries),
            "entry_count": len(entries),
            "pinned": list(state["pins"]),
            "backends": per_backend,
            "entries": entries,
        }

    # -- store ----------------------------------------------------------

    def store(
        self,
        backend_id: str,
        key: str,
        artifacts: list,
        exclusions: list,
        tracer=NULL_TRACER,
    ) -> CacheEntry:
        """Persist one backend compilation under ``key``.

        Payload files are written first and the manifest last (via an
        atomic rename), so a crash mid-store leaves a manifest-less
        directory the loader treats as a miss.
        """
        if not self.options.writable:
            raise ConfigurationError(
                f"cache at {self.root!r} is read-only "
                f"(mode={self.options.mode!r}); store() requires "
                "mode='readwrite'"
            )
        entry_dir = self._entry_dir(key)
        if os.path.isdir(entry_dir):
            shutil.rmtree(entry_dir)
        os.makedirs(entry_dir)
        counters = tracer.counters
        manifest = {
            "schema": ARTIFACT_SCHEMA,
            "backend": backend_id,
            "key": key,
            "device_family": self.options.device_family,
            "modeled_compile_s": modeled_compile_s(backend_id, artifacts),
            "artifacts": [],
            "exclusions": [
                {
                    "device": e.device,
                    "task_id": e.task_id,
                    "reason": e.reason,
                }
                for e in exclusions
            ],
        }
        payload_bytes = 0
        for i, artifact in enumerate(artifacts):
            m = artifact.manifest
            blob = pickle.dumps(artifact.payload, protocol=4)
            payload_file = f"payload.{i}.pkl"
            with open(os.path.join(entry_dir, payload_file), "wb") as f:
                f.write(blob)
            record = {
                "artifact_id": m.artifact_id,
                "device": m.device,
                "task_ids": list(m.task_ids),
                "graph_id": m.graph_id,
                "source_language": m.source_language,
                "properties": dict(m.properties),
                "payload_file": payload_file,
                "payload_bytes": len(blob),
                "payload_sha256": hashlib.sha256(blob).hexdigest(),
            }
            payload_bytes += len(blob)
            if artifact.text:
                ext = _SOURCE_EXT.get(m.source_language, ".txt")
                text_file = f"source.{i}{ext}"
                data = artifact.text.encode("utf-8")
                with open(os.path.join(entry_dir, text_file), "wb") as f:
                    f.write(data)
                record["text_file"] = text_file
                record["text_sha256"] = hashlib.sha256(data).hexdigest()
                payload_bytes += len(data)
            manifest["artifacts"].append(record)
        manifest["payload_bytes"] = payload_bytes
        tmp = os.path.join(entry_dir, _MANIFEST_NAME + ".tmp")
        with open(tmp, "w") as f:
            json.dump(manifest, f, indent=2, sort_keys=True, default=str)
        os.replace(tmp, os.path.join(entry_dir, _MANIFEST_NAME))
        self._touch(key)
        counters.add("cache.store")
        counters.add("cache.bytes", payload_bytes)
        counters.add("cache.bytes.written", payload_bytes)
        self._evict_to_fit(keep=key, tracer=tracer)
        return CacheEntry(
            backend=backend_id,
            key=key,
            artifacts=list(artifacts),
            exclusions=list(exclusions),
            modeled_compile_s=manifest["modeled_compile_s"],
            payload_bytes=payload_bytes,
        )

    # -- load -----------------------------------------------------------

    def load(self, backend_id: str, key: str, tracer=NULL_TRACER):
        """Load the entry for ``key``, or None on miss/corruption.

        Every payload and text hash recorded at store time is verified;
        any failure counts ``cache.corrupt``, drops the entry, and
        reports a miss — a wrong-artifact hit is never possible.
        """
        counters = tracer.counters
        entry_dir = self._entry_dir(key)
        manifest_path = os.path.join(entry_dir, _MANIFEST_NAME)
        if not os.path.isfile(manifest_path):
            counters.add("cache.miss")
            counters.add(f"cache.miss[{backend_id}]")
            return None
        with tracer.span(
            "cache.load", backend=backend_id, key=key[:12]
        ) as span:
            try:
                entry = self._load_verified(backend_id, key, entry_dir)
            except CacheCorruption as problem:
                counters.add("cache.corrupt")
                counters.add("cache.miss")
                counters.add(f"cache.miss[{backend_id}]")
                span.set(state="corrupt", problem=str(problem))
                shutil.rmtree(entry_dir, ignore_errors=True)
                self._forget(key)
                return None
            span.set(
                state="hit",
                artifacts=len(entry.artifacts),
                bytes=entry.payload_bytes,
                load_us=entry.modeled_load_s * 1e6,
            )
        counters.add("cache.hit")
        counters.add(f"cache.hit[{backend_id}]")
        counters.add("cache.bytes", entry.payload_bytes)
        counters.add("cache.bytes.read", entry.payload_bytes)
        self._touch(key)
        return entry

    def _load_verified(
        self, backend_id: str, key: str, entry_dir: str
    ) -> CacheEntry:
        manifest_path = os.path.join(entry_dir, _MANIFEST_NAME)
        try:
            with open(manifest_path) as f:
                manifest = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise CacheCorruption(f"unreadable manifest: {exc}") from exc
        if manifest.get("schema") != ARTIFACT_SCHEMA:
            raise CacheCorruption(
                f"schema {manifest.get('schema')!r} != {ARTIFACT_SCHEMA!r}"
            )
        if manifest.get("backend") != backend_id:
            raise CacheCorruption(
                f"entry belongs to backend {manifest.get('backend')!r}"
            )
        artifacts = []
        payload_bytes = 0
        for record in manifest.get("artifacts", ()):
            payload_path = os.path.join(entry_dir, record["payload_file"])
            if not os.path.isfile(payload_path):
                raise CacheCorruption(
                    f"missing payload {record['payload_file']}"
                )
            size = os.path.getsize(payload_path)
            if size != record["payload_bytes"]:
                raise CacheCorruption(
                    f"payload {record['payload_file']} truncated: "
                    f"{size} != {record['payload_bytes']} bytes"
                )
            if _sha256_file(payload_path) != record["payload_sha256"]:
                raise CacheCorruption(
                    f"payload {record['payload_file']} hash mismatch"
                )
            with open(payload_path, "rb") as f:
                payload = pickle.load(f)
            payload_bytes += size
            text = ""
            if "text_file" in record:
                text_path = os.path.join(entry_dir, record["text_file"])
                if not os.path.isfile(text_path):
                    raise CacheCorruption(
                        f"missing source {record['text_file']}"
                    )
                with open(text_path, "rb") as f:
                    data = f.read()
                if hashlib.sha256(data).hexdigest() != record["text_sha256"]:
                    raise CacheCorruption(
                        f"source {record['text_file']} hash mismatch"
                    )
                text = data.decode("utf-8")
                payload_bytes += len(data)
            artifacts.append(
                Artifact(
                    manifest=Manifest(
                        artifact_id=record["artifact_id"],
                        device=record["device"],
                        task_ids=list(record["task_ids"]),
                        graph_id=record.get("graph_id"),
                        source_language=record.get("source_language", ""),
                        properties=dict(record.get("properties", {})),
                    ),
                    payload=payload,
                    text=text,
                )
            )
        exclusions = [
            Exclusion(e["device"], e["task_id"], e["reason"])
            for e in manifest.get("exclusions", ())
        ]
        return CacheEntry(
            backend=backend_id,
            key=key,
            artifacts=artifacts,
            exclusions=exclusions,
            modeled_compile_s=manifest.get("modeled_compile_s", 0.0),
            payload_bytes=payload_bytes,
        )

    # -- eviction / maintenance -----------------------------------------

    def _evict_to_fit(self, keep: "str | None" = None, tracer=NULL_TRACER):
        """LRU-by-bytes eviction down to ``max_bytes``; pinned entries
        and the just-touched ``keep`` entry are never dropped."""
        limit = self.options.max_bytes
        if limit is None:
            return
        state = self._read_lru()
        pins = set(state["pins"])
        sizes = {key: self.entry_bytes(key) for key in self.keys()}
        total = sum(sizes.values())
        if total <= limit:
            return
        in_lru_order = sorted(
            sizes, key=lambda k: state["entries"].get(k, 0)
        )
        for key in in_lru_order:
            if total <= limit:
                break
            if key in pins or key == keep:
                continue
            self.evict(key, tracer=tracer)
            total -= sizes[key]

    def evict(self, key: str, tracer=NULL_TRACER) -> bool:
        """Drop one entry; returns False when it did not exist."""
        entry_dir = self._entry_dir(key)
        if not os.path.isdir(entry_dir):
            return False
        shutil.rmtree(entry_dir, ignore_errors=True)
        self._forget(key)
        tracer.counters.add("cache.evict")
        return True

    def purge(self) -> int:
        """Drop every entry (pins included); returns the count dropped."""
        count = 0
        for key in self.keys():
            shutil.rmtree(self._entry_dir(key), ignore_errors=True)
            count += 1
        self._write_lru({"tick": 0, "entries": {}, "pins": []})
        return count

    def verify(self, delete_corrupt: bool = False) -> list:
        """Integrity-check every entry; returns ``(key, problem)``
        pairs. ``delete_corrupt=True`` additionally drops the failing
        entries so the next compile repopulates them."""
        problems = []
        for key in self.keys():
            entry_dir = self._entry_dir(key)
            try:
                with open(
                    os.path.join(entry_dir, _MANIFEST_NAME)
                ) as f:
                    backend = json.load(f).get("backend", "")
            except (OSError, json.JSONDecodeError) as exc:
                problems.append((key, f"unreadable manifest: {exc}"))
                if delete_corrupt:
                    shutil.rmtree(entry_dir, ignore_errors=True)
                    self._forget(key)
                continue
            try:
                self._load_verified(backend, key, entry_dir)
            except CacheCorruption as problem:
                problems.append((key, str(problem)))
                if delete_corrupt:
                    shutil.rmtree(entry_dir, ignore_errors=True)
                    self._forget(key)
        return problems
