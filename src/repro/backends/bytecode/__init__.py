"""The CPU backend: bytecode ISA, compiler, and interpreter."""

from repro.backends.bytecode.compiler import (
    compile_module,
    make_cpu_artifact,
)
from repro.backends.bytecode.interpreter import Interpreter, Services
from repro.backends.bytecode.isa import BytecodeProgram, CompiledFunction

__all__ = [
    "BytecodeProgram",
    "CompiledFunction",
    "Interpreter",
    "Services",
    "compile_module",
    "make_cpu_artifact",
]
