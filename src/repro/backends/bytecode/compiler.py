"""The CPU backend: compiles the *entire* IR module to stack bytecode.

Section 2 (introduction): "the CPU compiler always compiles the entire
program, guaranteeing that every node has at least one implementation."
"""

from __future__ import annotations

from repro.backends import common
from repro.backends.bytecode import isa
from repro.values import default_value as values_default
from repro.errors import BackendError
from repro.ir import nodes as ir
from repro.lime import types as ty


def _typename(type_) -> str:
    if isinstance(type_, ty.PrimType):
        return type_.name
    if isinstance(type_, ty.StringType):
        return "String"
    return "ref"


class FunctionCompiler:
    def __init__(self, function: ir.IRFunction, module: ir.IRModule):
        self.function = function
        self.module = module
        self.code: list = []
        self.slots: dict[str, int] = {}
        for param in function.params:
            self.slots[param.name] = len(self.slots)
        self.num_params = len(self.slots)
        # (break_patches, continue_target_or_patches) per enclosing loop
        self._loops: list = []

    # -- emission helpers ---------------------------------------------------

    def emit(self, op: str, operand=None) -> int:
        self.code.append((op, operand))
        return len(self.code) - 1

    def _placeholder(self, op: str) -> int:
        return self.emit(op, -1)

    def _patch(self, index: int, target: int) -> None:
        op, _ = self.code[index]
        self.code[index] = (op, target)

    def _here(self) -> int:
        return len(self.code)

    def _slot(self, name: str) -> int:
        if name not in self.slots:
            self.slots[name] = len(self.slots)
        return self.slots[name]

    # -- compilation --------------------------------------------------------

    def compile(self) -> isa.CompiledFunction:
        for stmt in self.function.body:
            self._stmt(stmt)
        # Implicit return for void functions / constructors.
        if not self.code or self.code[-1][0] not in (isa.RET, isa.RETV):
            self.emit(isa.RET)
        returns_value = (
            self.function.return_type != ty.VOID
            and not self.function.is_constructor
        )
        return isa.CompiledFunction(
            qualified_name=self.function.qualified_name,
            code=self.code,
            num_params=self.num_params,
            num_locals=len(self.slots),
            returns_value=returns_value,
            is_constructor=self.function.is_constructor,
            class_name=self.function.class_name,
        )

    def _stmt(self, stmt: ir.IRStmt) -> None:
        if isinstance(stmt, ir.SLet):
            self._expr(stmt.init)
            self.emit(isa.STORE, self._slot(stmt.name))
        elif isinstance(stmt, ir.SAssignLocal):
            self._expr(stmt.value)
            self.emit(isa.STORE, self._slot(stmt.name))
        elif isinstance(stmt, ir.SArrayStore):
            self._expr(stmt.array)
            self._expr(stmt.index)
            self._expr(stmt.value)
            self.emit(isa.ASTORE)
        elif isinstance(stmt, ir.SFieldStore):
            self._expr(stmt.receiver)
            self._expr(stmt.value)
            self.emit(isa.PUTFIELD, stmt.field_name)
        elif isinstance(stmt, ir.SStaticStore):
            self._expr(stmt.value)
            self.emit(isa.PUTSTATIC, (stmt.class_name, stmt.field_name))
        elif isinstance(stmt, ir.SIf):
            self._expr(stmt.cond)
            to_else = self._placeholder(isa.JZ)
            for s in stmt.then:
                self._stmt(s)
            if stmt.other:
                to_end = self._placeholder(isa.JMP)
                self._patch(to_else, self._here())
                for s in stmt.other:
                    self._stmt(s)
                self._patch(to_end, self._here())
            else:
                self._patch(to_else, self._here())
        elif isinstance(stmt, ir.SWhile):
            top = self._here()
            self._expr(stmt.cond)
            to_end = self._placeholder(isa.JZ)
            breaks: list = []
            self._loops.append((breaks, top))
            for s in stmt.body:
                self._stmt(s)
            self._loops.pop()
            self.emit(isa.JMP, top)
            end = self._here()
            self._patch(to_end, end)
            for b in breaks:
                self._patch(b, end)
        elif isinstance(stmt, ir.SFor):
            self._compile_for(stmt)
        elif isinstance(stmt, ir.SBreak):
            if not self._loops:
                raise BackendError("break outside loop in IR")
            self._loops[-1][0].append(self._placeholder(isa.JMP))
        elif isinstance(stmt, ir.SContinue):
            if not self._loops:
                raise BackendError("continue outside loop in IR")
            target = self._loops[-1][1]
            if isinstance(target, tuple) and target[0] == "patch":
                # For loops: the update block is not emitted yet, so
                # record a placeholder to patch later.
                target[1].append(self._placeholder(isa.JMP))
            else:
                self.emit(isa.JMP, target)
        elif isinstance(stmt, ir.SReturn):
            if stmt.value is not None:
                self._expr(stmt.value)
                self.emit(isa.RETV)
            else:
                self.emit(isa.RET)
        elif isinstance(stmt, ir.SExpr):
            self._expr(stmt.expr)
            if stmt.expr.type != ty.VOID:
                self.emit(isa.POP)
        elif isinstance(stmt, ir.SGraphStart):
            self._expr(stmt.graph)
            self.emit(isa.GRAPH_START, (stmt.blocking, stmt.graph_id))
        else:
            raise BackendError(f"cannot compile statement {stmt!r}")

    def _compile_for(self, stmt: ir.SFor) -> None:
        var = self._slot(stmt.var)
        self._expr(stmt.start)
        self.emit(isa.STORE, var)
        top = self._here()
        self.emit(isa.LOAD, var)
        self._expr(stmt.limit)
        self.emit(isa.BINOP, ("<", "int"))
        to_end = self._placeholder(isa.JZ)
        breaks: list = []
        # 'continue' must jump to the update block, which is not emitted
        # yet; SContinue records placeholders into this patch list.
        continue_patches: list = []
        self._loops.append((breaks, ("patch", continue_patches)))
        for s in stmt.body:
            self._stmt(s)
        self._loops.pop()
        update = self._here()
        for c in continue_patches:
            self._patch(c, update)
        self.emit(isa.LOAD, var)
        self._expr(stmt.step)
        self.emit(isa.BINOP, ("+", "int"))
        self.emit(isa.STORE, var)
        self.emit(isa.JMP, top)
        end = self._here()
        self._patch(to_end, end)
        for b in breaks:
            self._patch(b, end)

    # -- expressions --------------------------------------------------------

    def _expr(self, expr: ir.IRExpr) -> None:
        if isinstance(expr, ir.EConst):
            self.emit(isa.CONST, expr.value)
        elif isinstance(expr, ir.ELocal):
            self.emit(isa.LOAD, self._slot(expr.name))
        elif isinstance(expr, ir.EThis):
            self.emit(isa.LOAD, self._slot("this"))
        elif isinstance(expr, ir.EBinary):
            self._binary(expr)
        elif isinstance(expr, ir.EUnary):
            self._expr(expr.operand)
            self.emit(isa.UNOP, (expr.op, _typename(expr.type)))
        elif isinstance(expr, ir.ETernary):
            self._expr(expr.cond)
            to_else = self._placeholder(isa.JZ)
            self._expr(expr.then)
            to_end = self._placeholder(isa.JMP)
            self._patch(to_else, self._here())
            self._expr(expr.other)
            self._patch(to_end, self._here())
        elif isinstance(expr, ir.ECast):
            self._expr(expr.operand)
            self.emit(isa.CAST, _typename(expr.type))
        elif isinstance(expr, ir.EIndex):
            self._expr(expr.array)
            self._expr(expr.index)
            self.emit(isa.ALOAD)
        elif isinstance(expr, ir.ELength):
            self._expr(expr.array)
            self.emit(isa.LEN)
        elif isinstance(expr, ir.ECall):
            for arg in expr.args:
                self._expr(arg)
            self.emit(
                isa.CALL,
                (expr.callee, len(expr.args), expr.type != ty.VOID),
            )
        elif isinstance(expr, ir.EIntrinsic):
            for arg in expr.args:
                self._expr(arg)
            self.emit(
                isa.INTRINSIC,
                (expr.name, len(expr.args), expr.type != ty.VOID),
            )
        elif isinstance(expr, ir.ENewArray):
            self._expr(expr.length)
            element = expr.type.element
            self.emit(isa.NEWARRAY, element.kind())
        elif isinstance(expr, ir.EFreeze):
            self._expr(expr.operand)
            self.emit(isa.FREEZE)
        elif isinstance(expr, ir.ENewObject):
            self.emit(isa.NEWOBJ, expr.class_name)
            self.emit(isa.DUP)
            for arg in expr.args:
                self._expr(arg)
            self.emit(isa.CALL, (expr.ctor, len(expr.args) + 1, False))
            meta = self.module.classes[expr.class_name]
            if meta.is_value:
                self.emit(isa.FREEZEOBJ)
        elif isinstance(expr, ir.EFieldLoad):
            self._expr(expr.receiver)
            self.emit(isa.GETFIELD, expr.field_name)
        elif isinstance(expr, ir.EStaticLoad):
            self.emit(isa.GETSTATIC, (expr.class_name, expr.field_name))
        elif isinstance(expr, ir.EMap):
            for arg in expr.args:
                self._expr(arg)
            self.emit(
                isa.MAP,
                (
                    expr.method,
                    len(expr.args),
                    expr.type.element.kind(),
                    tuple(expr.broadcast) or (False,) * len(expr.args),
                ),
            )
        elif isinstance(expr, ir.EReduce):
            self._expr(expr.args[0])
            self.emit(isa.REDUCE, expr.method)
        elif isinstance(expr, ir.EGraphSource):
            self._expr(expr.array)
            self.emit(
                isa.MKSOURCE,
                (expr.rate, getattr(expr, "task_id", None)),
            )
        elif isinstance(expr, ir.EGraphSink):
            self._expr(expr.array)
            self.emit(isa.MKSINK, getattr(expr, "task_id", None))
        elif isinstance(expr, ir.EGraphTask):
            has_instance = expr.instance is not None
            if has_instance:
                self._expr(expr.instance)
            self.emit(
                isa.MKTASK,
                (
                    expr.method,
                    getattr(expr, "task_id", None),
                    expr.arity,
                    expr.relocatable,
                    has_instance,
                ),
            )
        elif isinstance(expr, ir.EGraphConnect):
            self._expr(expr.left)
            self._expr(expr.right)
            self.emit(isa.CONNECT)
        else:
            raise BackendError(f"cannot compile expression {expr!r}")

    def _binary(self, expr: ir.EBinary) -> None:
        if expr.op == "&&":
            self._expr(expr.left)
            self.emit(isa.DUP)
            to_end = self._placeholder(isa.JZ)
            self.emit(isa.POP)
            self._expr(expr.right)
            self._patch(to_end, self._here())
            return
        if expr.op == "||":
            self._expr(expr.left)
            self.emit(isa.DUP)
            to_end = self._placeholder(isa.JNZ)
            self.emit(isa.POP)
            self._expr(expr.right)
            self._patch(to_end, self._here())
            return
        self._expr(expr.left)
        self._expr(expr.right)
        # Comparisons need the *operand* width only for documentation;
        # arithmetic needs the result type for wrapping.
        self.emit(isa.BINOP, (expr.op, _typename(expr.type)))


def compile_module(module: ir.IRModule) -> isa.BytecodeProgram:
    """Compile every function (plus class initializers) to bytecode."""
    functions: dict[str, isa.CompiledFunction] = {}
    classes: dict[str, isa.ClassMeta] = {}
    clinit_order: list = []
    for name, cls in module.classes.items():
        defaults = {}
        for field_name, field_type in cls.static_types.items():
            try:
                defaults[field_name] = values_default(field_type.kind())
            except ValueError:
                defaults[field_name] = None
        classes[name] = isa.ClassMeta(
            name=name,
            is_value=cls.is_value,
            is_enum=cls.is_enum,
            enum_constants=list(cls.enum_constants),
            field_names=list(cls.field_names),
            static_defaults=defaults,
        )
        if cls.static_fields:
            clinit = _compile_clinit(name, cls, module)
            functions[clinit.qualified_name] = clinit
            clinit_order.append(clinit.qualified_name)
    for qualified, function in module.functions.items():
        functions[qualified] = FunctionCompiler(function, module).compile()
    return isa.BytecodeProgram(
        functions=functions, classes=classes, clinit_order=clinit_order
    )


def _compile_clinit(
    class_name: str, cls: ir.IRClass, module: ir.IRModule
) -> isa.CompiledFunction:
    synthetic = ir.IRFunction(
        qualified_name=f"{class_name}.<clinit>",
        params=[],
        return_type=ty.VOID,
        body=[],
        class_name=class_name,
    )
    compiler = FunctionCompiler(synthetic, module)
    for field_name, init in cls.static_fields.items():
        if init is None:
            continue
        compiler._expr(init)
        compiler.emit(isa.PUTSTATIC, (class_name, field_name))
    compiler.emit(isa.RET)
    return isa.CompiledFunction(
        qualified_name=synthetic.qualified_name,
        code=compiler.code,
        num_params=0,
        num_locals=len(compiler.slots),
        returns_value=False,
        class_name=class_name,
    )


def make_cpu_artifact(module: ir.IRModule) -> common.Artifact:
    """Compile and wrap the whole program as the CPU artifact. Its
    manifest lists *every* task id so substitution always has a
    bytecode fallback."""
    program = compile_module(module)
    task_ids = [
        stage.task_id
        for graph in module.task_graphs
        for stage in graph.stages
    ]
    manifest = common.Manifest(
        artifact_id="bytecode:program",
        device=common.BYTECODE,
        task_ids=task_ids,
        source_language="java-bytecode",
    )
    return common.Artifact(manifest=manifest, payload=program)
