"""The stack bytecode ISA emitted by the CPU backend.

This stands in for the JVM bytecode of the paper: the frontend
"generates Java bytecode for executing the entire program in a Java
virtual machine" (Section 3). Instructions are ``(opcode, operand)``
tuples for interpreter speed; ``CYCLE_COST`` gives each opcode's cost in
abstract CPU cycles, which the CPU device model scales into time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# --- opcodes ---------------------------------------------------------------

CONST = "CONST"        # operand: value           push constant
LOAD = "LOAD"          # operand: slot            push local
STORE = "STORE"        # operand: slot            pop into local
POP = "POP"
DUP = "DUP"

BINOP = "BINOP"        # operand: (op, typename)
UNOP = "UNOP"          # operand: (op, typename)
CAST = "CAST"          # operand: typename

ALOAD = "ALOAD"        # pop index, array; push element
ASTORE = "ASTORE"      # pop value, index, array
LEN = "LEN"            # pop array; push length
NEWARRAY = "NEWARRAY"  # operand: element Kind; pop length; push array
FREEZE = "FREEZE"      # pop mutable array; push value array

GETFIELD = "GETFIELD"    # operand: field name; pop obj; push value
PUTFIELD = "PUTFIELD"    # operand: field name; pop value, obj
GETSTATIC = "GETSTATIC"  # operand: (class, field)
PUTSTATIC = "PUTSTATIC"  # operand: (class, field); pop value
NEWOBJ = "NEWOBJ"        # operand: class name; push unfrozen struct
FREEZEOBJ = "FREEZEOBJ"  # pop struct; push frozen struct

CALL = "CALL"            # operand: (qualified, nargs, returns_value)
INTRINSIC = "INTRINSIC"  # operand: (name, nargs, returns_value)
RET = "RET"              # return void
RETV = "RETV"            # pop return value

JMP = "JMP"            # operand: target pc
JZ = "JZ"              # operand: target pc; pop cond, jump if falsy
JNZ = "JNZ"            # operand: target pc; pop cond, jump if truthy

MAP = "MAP"            # operand: (method, nargs, elem Kind); pop arrays
REDUCE = "REDUCE"      # operand: method; pop array

MKSOURCE = "MKSOURCE"  # operand: (rate, task_id); pop array; push task
MKSINK = "MKSINK"      # operand: task_id; pop array; push task
MKTASK = "MKTASK"      # operand: (method, task_id, arity, relocatable)
CONNECT = "CONNECT"    # pop right, left; push connected graph
GRAPH_START = "GRAPH_START"  # operand: (blocking, graph_id); pop graph

# Cycle cost per opcode, modeling an interpreted/JIT-warm JVM on a
# conventional core. Arithmetic is cheap, memory ops carry bounds
# checks, calls carry frame overhead. The division/math costs matter
# for the compute-bound GPU speedup shapes.
CYCLE_COST = {
    CONST: 1,
    LOAD: 1,
    STORE: 1,
    POP: 1,
    DUP: 1,
    BINOP: 1,
    UNOP: 1,
    CAST: 1,
    ALOAD: 3,
    ASTORE: 3,
    LEN: 1,
    NEWARRAY: 10,
    FREEZE: 5,
    GETFIELD: 2,
    PUTFIELD: 2,
    GETSTATIC: 2,
    PUTSTATIC: 2,
    NEWOBJ: 12,
    FREEZEOBJ: 1,
    CALL: 3,  # dispatch only; frame setup is charged per invocation
    INTRINSIC: 2,
    RET: 2,
    RETV: 2,
    JMP: 1,
    JZ: 1,
    JNZ: 1,
    MAP: 8,
    REDUCE: 8,
    MKSOURCE: 20,
    MKSINK: 20,
    MKTASK: 20,
    CONNECT: 10,
    GRAPH_START: 50,
}

# Extra cycles for specific binary operators (beyond the base BINOP).
BINOP_EXTRA = {
    ("/", "int"): 20,
    ("/", "long"): 30,
    ("/", "float"): 10,
    ("/", "double"): 15,
    ("%", "int"): 20,
    ("%", "long"): 30,
    ("%", "double"): 20,
    ("*", "double"): 2,
    ("*", "float"): 1,
}

# Cycle cost of math intrinsics on the CPU.
INTRINSIC_COST = {
    "Math.sqrt": 25,
    "Math.exp": 40,
    "Math.log": 40,
    "Math.sin": 40,
    "Math.cos": 40,
    "Math.tan": 50,
    "Math.pow": 60,
    "Math.abs": 2,
    "Math.min": 2,
    "Math.max": 2,
    "Math.floor": 4,
    "Math.ceil": 4,
    "bit.~": 1,
    "println": 200,
    "print": 200,
}


@dataclass
class CompiledFunction:
    """One function compiled to bytecode."""

    qualified_name: str
    code: list                    # [(opcode, operand), ...]
    num_params: int
    num_locals: int               # includes params
    returns_value: bool
    is_constructor: bool = False
    class_name: str = ""

    def disassemble(self) -> str:
        lines = [f".method {self.qualified_name} "
                 f"(params={self.num_params}, locals={self.num_locals})"]
        for pc, (op, operand) in enumerate(self.code):
            suffix = "" if operand is None else f" {operand!r}"
            lines.append(f"  {pc:4d}: {op}{suffix}")
        return "\n".join(lines)


@dataclass
class ClassMeta:
    """Runtime metadata for one class: fields and enum constants."""

    name: str
    is_value: bool
    is_enum: bool
    enum_constants: list
    field_names: list
    static_defaults: dict = field(default_factory=dict)


@dataclass
class BytecodeProgram:
    """The whole-program CPU artifact payload."""

    functions: dict               # qualified -> CompiledFunction
    classes: dict                 # name -> ClassMeta
    clinit_order: list = field(default_factory=list)  # class-init functions

    def function(self, qualified: str) -> CompiledFunction:
        return self.functions[qualified]

    def disassemble(self) -> str:
        return "\n\n".join(
            f.disassemble() for f in self.functions.values()
        )
