"""Operator semantics shared by the bytecode interpreter and the GPU
simulator (both execute the same operations; only timing differs).

Integer arithmetic wraps in two's complement (JVM semantics); division
and remainder truncate toward zero; ``float`` operations round through
binary32 so CPU and device results agree bit-for-bit.
"""

from __future__ import annotations

import math
import struct

from repro.errors import DeviceError
from repro.values.bits import Bit

_INT_SPAN = 1 << 32
_INT_HALF = 1 << 31
_LONG_SPAN = 1 << 64
_LONG_HALF = 1 << 63


def wrap_int(value: int) -> int:
    value &= _INT_SPAN - 1
    return value - _INT_SPAN if value >= _INT_HALF else value


def wrap_long(value: int) -> int:
    value &= _LONG_SPAN - 1
    return value - _LONG_SPAN if value >= _LONG_HALF else value


def to_float32(value: float) -> float:
    """Round a Python float through IEEE-754 binary32."""
    return struct.unpack("<f", struct.pack("<f", value))[0]


def java_idiv(left: int, right: int) -> int:
    if right == 0:
        raise DeviceError("integer division by zero")
    quotient = abs(left) // abs(right)
    return -quotient if (left < 0) != (right < 0) else quotient


def java_irem(left: int, right: int) -> int:
    if right == 0:
        raise DeviceError("integer remainder by zero")
    remainder = abs(left) % abs(right)
    return -remainder if left < 0 else remainder


def apply_binary(op: str, left, right, typename: str):
    """Evaluate one binary operator with Lime/Java semantics.

    ``typename`` is the *result* type name for arithmetic ('int',
    'long', 'float', 'double', 'boolean', 'bit', 'String').
    """
    if typename == "String":
        return _to_display(left) + _to_display(right)
    if op == "+":
        result = left + right
    elif op == "-":
        result = left - right
    elif op == "*":
        result = left * right
    elif op == "/":
        if typename in ("int", "long"):
            return _wrap(java_idiv(left, right), typename)
        result = left / right if right != 0 else math.inf * (1 if left > 0 else -1 if left < 0 else math.nan)
    elif op == "%":
        if typename in ("int", "long"):
            return _wrap(java_irem(left, right), typename)
        result = math.fmod(left, right)
    elif op == "<<":
        return _wrap(left << (right & (63 if typename == "long" else 31)), typename)
    elif op == ">>":
        return _wrap(left >> (right & (63 if typename == "long" else 31)), typename)
    elif op == "&":
        if isinstance(left, Bit):
            return left & right
        return left & right
    elif op == "|":
        if isinstance(left, Bit):
            return left | right
        return left | right
    elif op == "^":
        if isinstance(left, Bit):
            return left ^ right
        return left ^ right
    elif op == "==":
        return left == right
    elif op == "!=":
        return left != right
    elif op == "<":
        return left < right
    elif op == ">":
        return left > right
    elif op == "<=":
        return left <= right
    elif op == ">=":
        return left >= right
    elif op == "&&":
        return bool(left) and bool(right)
    elif op == "||":
        return bool(left) or bool(right)
    else:
        raise DeviceError(f"unknown binary operator {op!r}")
    return _wrap(result, typename)


def _wrap(value, typename: str):
    if typename == "int":
        return wrap_int(int(value))
    if typename == "long":
        return wrap_long(int(value))
    if typename == "float":
        return to_float32(float(value))
    if typename == "double":
        return float(value)
    return value


def apply_unary(op: str, operand, typename: str):
    if op == "-":
        return _wrap(-operand, typename)
    if op == "!":
        return not operand
    if op == "~":
        if isinstance(operand, Bit):
            return ~operand
        return _wrap(~operand, typename)
    raise DeviceError(f"unknown unary operator {op!r}")


def apply_cast(value, typename: str):
    if typename == "int":
        if isinstance(value, Bit):
            return int(value)
        return wrap_int(int(value))
    if typename == "long":
        return wrap_long(int(value))
    if typename == "float":
        return to_float32(float(value))
    if typename == "double":
        return float(value)
    if typename == "bit":
        return Bit(int(value) & 1)
    if typename == "boolean":
        return bool(value)
    raise DeviceError(f"cannot cast to {typename!r}")


_MATH_FUNCTIONS = {
    "Math.sqrt": math.sqrt,
    "Math.exp": math.exp,
    "Math.log": math.log,
    "Math.sin": math.sin,
    "Math.cos": math.cos,
    "Math.tan": math.tan,
    "Math.pow": math.pow,
    "Math.floor": math.floor,
    "Math.ceil": math.ceil,
}


def apply_math(name: str, args: list, result_typename: str = "double"):
    """Evaluate a Math.* intrinsic; abs/min/max follow the result type."""
    if name == "Math.abs":
        result = abs(args[0])
    elif name == "Math.min":
        result = min(args)
    elif name == "Math.max":
        result = max(args)
    else:
        fn = _MATH_FUNCTIONS.get(name)
        if fn is None:
            raise DeviceError(f"unknown math intrinsic {name!r}")
        result = fn(*[float(a) for a in args])
    if result_typename in ("int", "long"):
        return _wrap(int(result), result_typename)
    if name in ("Math.floor", "Math.ceil"):
        return float(result)
    return _wrap(result, result_typename)


def _to_display(value) -> str:
    """Convert a runtime value to the string concatenation form."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)
