"""Artifacts, manifests, and the artifact store.

Section 3: "The result of a compilation with Liquid Metal is a
collection of artifacts for different architectures, each labeled with
the particular computational node that it implements … The frontend and
backend compilers cooperate to produce a manifest describing each
generated artifact and labeling it with a unique task identifier."

An :class:`Artifact` is an executable entity for one device kind; its
:class:`Manifest` lists the task identifiers it implements so that the
runtime can find semantically equivalent implementations during task
substitution (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

# Device kinds, in the runtime's default preference order: the paper's
# substitution algorithm "favors GPU and FPGA artifacts to bytecode".
BYTECODE = "bytecode"
GPU = "gpu"
FPGA = "fpga"

DEVICE_KINDS = (BYTECODE, GPU, FPGA)


@dataclass
class Manifest:
    """Describes one generated artifact."""

    artifact_id: str
    device: str
    task_ids: list                 # task ids this artifact implements, in pipeline order
    graph_id: Optional[str] = None  # owning static graph, if any
    source_language: str = ""      # 'java-bytecode' | 'opencl' | 'verilog'
    properties: dict = field(default_factory=dict)

    def implements(self, task_id: str) -> bool:
        return task_id in self.task_ids

    def __repr__(self) -> str:
        return (
            f"Manifest({self.artifact_id}, device={self.device}, "
            f"tasks={len(self.task_ids)})"
        )


@dataclass
class Artifact:
    """One executable entity plus its manifest.

    ``payload`` is device specific: the bytecode program, a compiled
    GPU kernel bundle, or an FPGA module bundle. ``text`` carries the
    human-readable generated code (OpenCL C / Verilog) where one exists.
    """

    manifest: Manifest
    payload: object
    text: str = ""

    @property
    def artifact_id(self) -> str:
        return self.manifest.artifact_id

    @property
    def device(self) -> str:
        return self.manifest.device

    def __repr__(self) -> str:
        return f"Artifact({self.artifact_id}, {self.device})"


@dataclass
class Exclusion:
    """Why a backend declined to compile a task (Section 3: a task with
    unsuitable constructs "is excluded from further compilation by that
    backend")."""

    device: str
    task_id: str
    reason: str

    def __repr__(self) -> str:
        return f"Exclusion({self.device}, {self.task_id}: {self.reason})"


class ArtifactStore:
    """The repository the runtime consults during task substitution.

    Keyed by task identifier; the store can answer "which devices have
    an implementation covering this span of tasks?".
    """

    def __init__(self):
        self._artifacts: list[Artifact] = []
        self._by_task: dict[str, list[Artifact]] = {}
        self.exclusions: list[Exclusion] = []
        #: Where the artifacts came from: ``cold`` (freshly compiled),
        #: ``warm`` (every enabled backend loaded from the artifact
        #: cache), ``mixed``, or None for hand-built stores. The
        #: schedulers stamp this on stage spans (docs/CACHING.md).
        self.provenance: "str | None" = None

    def add(self, artifact: Artifact) -> None:
        self._artifacts.append(artifact)
        for task_id in artifact.manifest.task_ids:
            self._by_task.setdefault(task_id, []).append(artifact)

    def add_exclusion(self, exclusion: Exclusion) -> None:
        self.exclusions.append(exclusion)

    def all(self) -> list:
        return list(self._artifacts)

    def for_task(self, task_id: str) -> list:
        """Artifacts implementing the given task id."""
        return list(self._by_task.get(task_id, ()))

    def for_device(self, device: str) -> list:
        return [a for a in self._artifacts if a.device == device]

    def lookup(self, artifact_id: str) -> Optional[Artifact]:
        for artifact in self._artifacts:
            if artifact.artifact_id == artifact_id:
                return artifact
        return None

    def spans(self, task_ids: list, device: str) -> list:
        """Artifacts on ``device`` whose task list is exactly a
        contiguous subsequence of ``task_ids`` — candidates for
        substituting that region."""
        out = []
        joined = list(task_ids)
        for artifact in self.for_device(device):
            ids = artifact.manifest.task_ids
            n = len(ids)
            for start in range(0, len(joined) - n + 1):
                if joined[start : start + n] == ids:
                    out.append((start, artifact))
                    break
        return out

    def __len__(self) -> int:
        return len(self._artifacts)
