"""The GPU backend: OpenCL code generation and kernel artifacts."""

from repro.backends.opencl.compiler import GPUKernel, OpenCLBackend, compile_gpu
from repro.backends.opencl.exclusion import exclusion_reasons

__all__ = [
    "GPUKernel",
    "OpenCLBackend",
    "compile_gpu",
    "exclusion_reasons",
]
