"""OpenCL C code generation from the function IR.

The generated source is a faithful artifact of the compilation (tests
assert on it, and a vendor toolchain could in principle compile it);
execution in this reproduction happens on the SIMT simulator, which
runs the same methods' bytecode under a GPU timing model — see
DESIGN.md's substitution table.
"""

from __future__ import annotations

from repro.errors import BackendError
from repro.ir import nodes as ir
from repro.lime import types as ty
from repro.values.bits import Bit
from repro.values.enums import EnumValue

_SCALAR_TYPES = {
    "int": "int",
    "long": "long",
    "float": "float",
    "double": "double",
    "boolean": "int",
    "bit": "uchar",
}


def mangle(qualified: str) -> str:
    return qualified.replace(".", "_").replace("~", "invert")


def cl_type(type_) -> str:
    if isinstance(type_, ty.PrimType):
        return _SCALAR_TYPES[type_.name]
    if isinstance(type_, ty.ClassType) and type_.is_enum:
        return "uchar"
    raise BackendError(f"no OpenCL type for {type_}")


class _FunctionPrinter:
    """Prints one IR function as an OpenCL C device function."""

    def __init__(self, function: ir.IRFunction):
        self.function = function
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def print_device_function(self) -> str:
        f = self.function
        params = []
        for p in f.params:
            if isinstance(p.type, ty.ArrayType):
                params.append(
                    f"__global const {cl_type(p.type.element)}* {p.name}"
                )
                params.append(f"const int {p.name}_len")
            else:
                params.append(f"{cl_type(p.type)} {p.name}")
        header = (
            f"static {cl_type(f.return_type)} {mangle(f.qualified_name)}"
            f"({', '.join(params)})"
        )
        self.emit(header + " {")
        self.indent += 1
        for stmt in f.body:
            self._stmt(stmt)
        self.indent -= 1
        self.emit("}")
        return "\n".join(self.lines)

    # -- statements ----------------------------------------------------

    def _stmt(self, stmt: ir.IRStmt) -> None:
        if isinstance(stmt, ir.SLet):
            if isinstance(stmt.var_type, ty.ArrayType):
                raise BackendError("array locals not supported on GPU")
            self.emit(
                f"{cl_type(stmt.var_type)} {stmt.name} = "
                f"{self._expr(stmt.init)};"
            )
        elif isinstance(stmt, ir.SAssignLocal):
            self.emit(f"{stmt.name} = {self._expr(stmt.value)};")
        elif isinstance(stmt, ir.SIf):
            self.emit(f"if ({self._expr(stmt.cond)}) {{")
            self.indent += 1
            for s in stmt.then:
                self._stmt(s)
            self.indent -= 1
            if stmt.other:
                self.emit("} else {")
                self.indent += 1
                for s in stmt.other:
                    self._stmt(s)
                self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, ir.SWhile):
            self.emit(f"while ({self._expr(stmt.cond)}) {{")
            self.indent += 1
            for s in stmt.body:
                self._stmt(s)
            self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, ir.SFor):
            var = stmt.var
            self.emit(
                f"for (int {var} = {self._expr(stmt.start)}; "
                f"{var} < {self._expr(stmt.limit)}; "
                f"{var} += {self._expr(stmt.step)}) {{"
            )
            self.indent += 1
            for s in stmt.body:
                self._stmt(s)
            self.indent -= 1
            self.emit("}")
        elif isinstance(stmt, ir.SReturn):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self._expr(stmt.value)};")
        elif isinstance(stmt, ir.SBreak):
            self.emit("break;")
        elif isinstance(stmt, ir.SContinue):
            self.emit("continue;")
        elif isinstance(stmt, ir.SExpr):
            self.emit(f"(void)({self._expr(stmt.expr)});")
        else:
            raise BackendError(
                f"statement {type(stmt).__name__} not supported on GPU"
            )

    # -- expressions -----------------------------------------------------

    def _expr(self, expr: ir.IRExpr) -> str:
        if isinstance(expr, ir.EConst):
            return self._const(expr)
        if isinstance(expr, ir.ELocal):
            return expr.name
        if isinstance(expr, ir.EBinary):
            return (
                f"({self._expr(expr.left)} {expr.op} "
                f"{self._expr(expr.right)})"
            )
        if isinstance(expr, ir.EUnary):
            return f"({expr.op}{self._expr(expr.operand)})"
        if isinstance(expr, ir.ETernary):
            return (
                f"({self._expr(expr.cond)} ? {self._expr(expr.then)} : "
                f"{self._expr(expr.other)})"
            )
        if isinstance(expr, ir.ECast):
            return f"(({cl_type(expr.type)})({self._expr(expr.operand)}))"
        if isinstance(expr, ir.EIndex):
            return f"{self._expr(expr.array)}[{self._expr(expr.index)}]"
        if isinstance(expr, ir.ELength):
            base = expr.array
            if isinstance(base, ir.ELocal):
                return f"{base.name}_len"
            raise BackendError(".length only on array parameters in kernels")
        if isinstance(expr, ir.ECall):
            args = []
            function_args = expr.args
            for a in function_args:
                args.append(self._expr(a))
                if isinstance(a.type, ty.ArrayType):
                    # Pass the paired length argument through.
                    if isinstance(a, ir.ELocal):
                        args.append(f"{a.name}_len")
                    else:
                        raise BackendError(
                            "array arguments must be parameters"
                        )
            return f"{mangle(expr.callee)}({', '.join(args)})"
        if isinstance(expr, ir.EIntrinsic):
            return self._intrinsic(expr)
        raise BackendError(
            f"expression {type(expr).__name__} not supported on GPU"
        )

    def _const(self, expr: ir.EConst) -> str:
        value = expr.value
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, Bit):
            return str(int(value))
        if isinstance(value, EnumValue):
            return str(value.ordinal)
        if isinstance(value, float):
            if expr.type == ty.FLOAT:
                return f"{value!r}f"
            return repr(value)
        if isinstance(value, int):
            if expr.type == ty.LONG:
                return f"{value}L"
            return str(value)
        raise BackendError(f"constant {value!r} not supported on GPU")

    _MATH_MAP = {
        "Math.sqrt": "sqrt",
        "Math.exp": "exp",
        "Math.log": "log",
        "Math.sin": "sin",
        "Math.cos": "cos",
        "Math.tan": "tan",
        "Math.pow": "pow",
        "Math.floor": "floor",
        "Math.ceil": "ceil",
    }

    def _intrinsic(self, expr: ir.EIntrinsic) -> str:
        args = [self._expr(a) for a in expr.args]
        if expr.name == "bit.~":
            return f"((uchar)(1u ^ {args[0]}))"
        if expr.name == "Math.abs":
            fn = "fabs" if expr.type in (ty.FLOAT, ty.DOUBLE) else "abs"
            return f"{fn}({args[0]})"
        if expr.name in ("Math.min", "Math.max"):
            fn = expr.name[5:]
            if expr.type in (ty.FLOAT, ty.DOUBLE):
                fn = "f" + fn
            return f"{fn}({args[0]}, {args[1]})"
        fn = self._MATH_MAP.get(expr.name)
        if fn is None:
            raise BackendError(
                f"intrinsic {expr.name} not supported on GPU"
            )
        return f"{fn}({', '.join(args)})"


def _collect_device_functions(module: ir.IRModule, roots: list) -> list:
    """Transitive callees of the kernel roots in dependency order."""
    order: list[str] = []
    seen: set = set()

    def visit(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        function = module.functions.get(name)
        if function is None:
            return
        for stmt in ir.walk_stmts(function.body):
            for expr in ir.stmt_exprs(stmt):
                for e in ir.walk_expr(expr):
                    if isinstance(e, ir.ECall):
                        visit(e.callee)
        order.append(name)

    for root in roots:
        visit(root)
    return order


def _uses_double(module: ir.IRModule, names: list) -> bool:
    for name in names:
        function = module.functions.get(name)
        if function is None:
            continue
        if function.return_type == ty.DOUBLE:
            return True
        if any(p.type == ty.DOUBLE for p in function.params):
            return True
        for stmt in ir.walk_stmts(function.body):
            for expr in ir.stmt_exprs(stmt):
                for e in ir.walk_expr(expr):
                    if getattr(e, "type", None) == ty.DOUBLE:
                        return True
    return False


def _prelude(module: ir.IRModule, names: list) -> list:
    lines = ["// generated by the Liquid Metal GPU backend"]
    if _uses_double(module, names):
        lines.append("#pragma OPENCL EXTENSION cl_khr_fp64 : enable")
    lines.append("")
    return lines


def generate_map_kernel(
    module: ir.IRModule, method: str, broadcast: tuple = ()
) -> str:
    """OpenCL source for a map over ``method`` (one work-item per
    element). ``broadcast[i]`` marks parameter i as a whole-value
    argument shared by all work items (scalar constant or whole array
    in global memory)."""
    function = module.functions[method]
    if not broadcast:
        broadcast = (False,) * len(function.params)
    device_functions = _collect_device_functions(module, [method])
    lines = _prelude(module, device_functions)
    for name in device_functions:
        lines.append(_FunctionPrinter(module.functions[name]).print_device_function())
        lines.append("")
    params: list = []
    call_args: list = []
    for i, (p, is_broadcast) in enumerate(zip(function.params, broadcast)):
        if is_broadcast and isinstance(p.type, ty.ArrayType):
            elem = cl_type(p.type.element)
            params.append(f"__global const {elem}* b{i}")
            params.append(f"const int b{i}_len")
            call_args += [f"b{i}", f"b{i}_len"]
        elif is_broadcast:
            params.append(f"const {cl_type(p.type)} b{i}")
            call_args.append(f"b{i}")
        else:
            params.append(f"__global const {cl_type(p.type)}* in{i}")
            call_args.append(f"in{i}[gid]")
    out_type = cl_type(function.return_type)
    params.append(f"__global {out_type}* out")
    params.append("const int n")
    lines.append(
        f"__kernel void map_{mangle(method)}({', '.join(params)}) {{"
    )
    lines.append("    int gid = get_global_id(0);")
    lines.append("    if (gid >= n) return;")
    lines.append(f"    out[gid] = {mangle(method)}({', '.join(call_args)});")
    lines.append("}")
    return "\n".join(lines)


def generate_reduce_kernel(module: ir.IRModule, method: str) -> str:
    """OpenCL source for a two-stage tree reduction with ``method``."""
    function = module.functions[method]
    device_functions = _collect_device_functions(module, [method])
    lines = _prelude(module, device_functions)
    for name in device_functions:
        lines.append(_FunctionPrinter(module.functions[name]).print_device_function())
        lines.append("")
    elem = cl_type(function.return_type)
    fn = mangle(method)
    lines.extend(
        [
            f"__kernel void reduce_{fn}(__global const {elem}* in,",
            f"                          __global {elem}* out,",
            "                          const int n,",
            f"                          __local {elem}* scratch) {{",
            "    int gid = get_global_id(0);",
            "    int lid = get_local_id(0);",
            "    int group = get_group_id(0);",
            f"    {elem} acc = in[gid < n ? gid : 0];",
            "    scratch[lid] = acc;",
            "    barrier(CLK_LOCAL_MEM_FENCE);",
            "    for (int offset = get_local_size(0) / 2; offset > 0; offset >>= 1) {",
            "        if (lid < offset && gid + offset < n) {",
            f"            scratch[lid] = {fn}(scratch[lid], scratch[lid + offset]);",
            "        }",
            "        barrier(CLK_LOCAL_MEM_FENCE);",
            "    }",
            "    if (lid == 0) out[group] = scratch[0];",
            "}",
        ]
    )
    return "\n".join(lines)


def generate_filter_kernel(module: ir.IRModule, methods: list) -> str:
    """OpenCL source for a (possibly fused) filter pipeline: each
    work-item pulls one stream element through every stage."""
    device_functions = _collect_device_functions(module, methods)
    lines = _prelude(module, device_functions)
    for name in device_functions:
        lines.append(_FunctionPrinter(module.functions[name]).print_device_function())
        lines.append("")
    first = module.functions[methods[0]]
    last = module.functions[methods[-1]]
    in_type = cl_type(first.params[0].type)
    out_type = cl_type(last.return_type)
    kernel_name = "task_" + "__".join(mangle(m) for m in methods)
    lines.append(
        f"__kernel void {kernel_name}(__global const {in_type}* in, "
        f"__global {out_type}* out, const int n) {{"
    )
    lines.append("    int gid = get_global_id(0);")
    lines.append("    if (gid >= n) return;")
    chain = "in[gid]"
    for m in methods:
        chain = f"{mangle(m)}({chain})"
    lines.append(f"    out[gid] = {chain};")
    lines.append("}")
    return "\n".join(lines)
