"""The GPU device compiler: produces OpenCL artifacts.

It compiles (a) every map/reduce kernel used by the program — "the map
and reduce operators are exploited heavily for optimizing code for
co-execution on a GPU" (Section 2.2) — and (b) every eligible
relocatable filter stage of every statically discovered task graph,
including fused artifacts for contiguous relocatable regions so the
runtime's prefer-larger substitution has real choices (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import common
from repro.backends.opencl import codegen
from repro.backends.opencl.exclusion import exclusion_reasons
from repro.ir import nodes as ir
from repro.lime import types as ty
from repro.obs.tracer import NULL_TRACER

# Types a filter kernel can stream item-by-item.
_SCALARISH = (ty.PrimType, ty.ClassType)


@dataclass
class GPUKernel:
    """Payload of one GPU artifact: what the simulator needs to run it."""

    name: str
    kind: str          # 'map' | 'reduce' | 'filter'
    methods: list      # qualified method names, pipeline order
    param_kinds: list  # element Kind per kernel input
    result_kind: object
    properties: dict = field(default_factory=dict)


def _collect_parallel_ops(module: ir.IRModule):
    """All (kind, method) pairs used via '@' or '!' anywhere."""
    ops = []
    seen = set()
    for function in module.functions.values():
        for stmt in ir.walk_stmts(function.body):
            for expr in ir.stmt_exprs(stmt):
                for e in ir.walk_expr(expr):
                    if isinstance(e, ir.EMap):
                        key = ("map", e.method, tuple(e.broadcast))
                    elif isinstance(e, ir.EReduce):
                        key = ("reduce", e.method, ())
                    else:
                        continue
                    if key not in seen:
                        seen.add(key)
                        ops.append(key)
    return ops


def _kernel_kinds(function: ir.IRFunction):
    param_kinds = [p.type.kind() for p in function.params]
    return param_kinds, function.return_type.kind()


class OpenCLBackend:
    """Compiles the eligible subset of a module to GPU artifacts."""

    device = common.GPU

    def __init__(self, module: ir.IRModule, tracer=NULL_TRACER):
        self.module = module
        self.tracer = tracer
        self.artifacts: list[common.Artifact] = []
        self.exclusions: list[common.Exclusion] = []

    def compile(self) -> "OpenCLBackend":
        self._compile_parallel_ops()
        self._compile_task_graphs()
        return self

    # -- map/reduce kernels ----------------------------------------------

    def _compile_parallel_ops(self) -> None:
        for kind, method, broadcast in _collect_parallel_ops(self.module):
            reasons = exclusion_reasons(self.module, method)
            task_id = f"{kind}:{method}"
            if reasons:
                self.exclusions.append(
                    common.Exclusion(self.device, task_id, "; ".join(reasons))
                )
                continue
            function = self.module.functions[method]
            param_kinds, result_kind = _kernel_kinds(function)
            with self.tracer.span(
                "compile.backend.opencl.kernel", kind=kind, task=task_id
            ):
                if kind == "map":
                    text = codegen.generate_map_kernel(
                        self.module, method, broadcast
                    )
                else:
                    text = codegen.generate_reduce_kernel(self.module, method)
            kernel = GPUKernel(
                name=f"{kind}_{codegen.mangle(method)}",
                kind=kind,
                methods=[method],
                param_kinds=param_kinds,
                result_kind=result_kind,
                properties={"broadcast": tuple(broadcast)},
            )
            manifest = common.Manifest(
                artifact_id=f"gpu:{task_id}",
                device=self.device,
                task_ids=[task_id],
                source_language="opencl",
            )
            self.artifacts.append(
                common.Artifact(manifest=manifest, payload=kernel, text=text)
            )

    # -- task-graph filters -------------------------------------------------

    def _compile_task_graphs(self) -> None:
        for graph in self.module.task_graphs:
            for start, end in graph.relocation_regions():
                stages = graph.stages[start : end + 1]
                eligible = [s for s in stages if self._stage_eligible(s)]
                for stage in eligible:
                    self._emit_filter_artifact(graph, [stage])
                # Fused artifact for the whole region when every stage
                # qualifies and the region has more than one stage.
                if len(eligible) == len(stages) and len(stages) > 1:
                    self._emit_filter_artifact(graph, stages)

    def _stage_eligible(self, stage) -> bool:
        if stage.stateful:
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    stage.task_id,
                    "stateful task: pipeline state cannot be "
                    "data-parallelized on the GPU",
                )
            )
            return False
        if stage.arity != 1:
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    stage.task_id,
                    "multi-input filters are not supported by the GPU "
                    "backend",
                )
            )
            return False
        function = self.module.functions.get(stage.method)
        if function is not None and (
            any(
                not isinstance(p.type, _SCALARISH)
                for p in function.params
            )
            or not isinstance(function.return_type, _SCALARISH)
        ):
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    stage.task_id,
                    "filter streams non-scalar items (chunked sources "
                    "are not supported by the GPU filter kernels)",
                )
            )
            return False
        reasons = exclusion_reasons(self.module, stage.method)
        if reasons:
            self.exclusions.append(
                common.Exclusion(
                    self.device, stage.task_id, "; ".join(reasons)
                )
            )
            return False
        return True

    def _emit_filter_artifact(self, graph, stages) -> None:
        methods = [s.method for s in stages]
        with self.tracer.span(
            "compile.backend.opencl.kernel",
            kind="filter",
            task=",".join(s.task_id for s in stages),
            graph=graph.graph_id,
        ):
            text = codegen.generate_filter_kernel(self.module, methods)
        first = self.module.functions[methods[0]]
        last = self.module.functions[methods[-1]]
        kernel = GPUKernel(
            name="task_" + "__".join(codegen.mangle(m) for m in methods),
            kind="filter",
            methods=methods,
            param_kinds=[first.params[0].type.kind()],
            result_kind=last.return_type.kind(),
        )
        task_ids = [s.task_id for s in stages]
        manifest = common.Manifest(
            artifact_id="gpu:" + "+".join(task_ids),
            device=self.device,
            task_ids=task_ids,
            graph_id=graph.graph_id,
            source_language="opencl",
        )
        self.artifacts.append(
            common.Artifact(manifest=manifest, payload=kernel, text=text)
        )


def compile_gpu(module: ir.IRModule, tracer=NULL_TRACER) -> OpenCLBackend:
    """Run the GPU backend over a module."""
    return OpenCLBackend(module, tracer=tracer).compile()
