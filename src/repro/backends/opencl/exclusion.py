"""GPU backend eligibility analysis.

Section 3: "Each of the device compilers operates autonomously … It
examines the tasks that make up each task graph and decides whether the
code that comprises the tasks is suitable for the device. A task
containing language constructs that are not suitable for the device is
excluded from further compilation by that backend."

The GPU compiler accepts pure methods over primitive/enum scalars and
value arrays thereof; it excludes object types, dynamic allocation,
recursion, I/O, strings, nested data parallelism, and task construction.
"""

from __future__ import annotations

from repro.ir import nodes as ir
from repro.lime import types as ty


def _type_supported(type_) -> bool:
    if isinstance(type_, ty.PrimType):
        return type_.name != "void"
    if isinstance(type_, ty.ClassType):
        return type_.is_enum
    if isinstance(type_, ty.ArrayType):
        return type_.is_value_array and _type_supported(type_.element)
    return False


def _collect_callees(module: ir.IRModule, method: str, seen: set) -> None:
    if method in seen:
        return
    seen.add(method)
    function = module.functions.get(method)
    if function is None:
        return
    for stmt in ir.walk_stmts(function.body):
        for expr in ir.stmt_exprs(stmt):
            for e in ir.walk_expr(expr):
                if isinstance(e, ir.ECall):
                    _collect_callees(module, e.callee, seen)


def _has_recursion(module: ir.IRModule, root: str) -> bool:
    """DFS cycle detection over the call graph reachable from ``root``."""
    visiting: set = set()
    done: set = set()

    def visit(name: str) -> bool:
        if name in visiting:
            return True
        if name in done:
            return False
        function = module.functions.get(name)
        if function is None:
            done.add(name)
            return False
        visiting.add(name)
        for stmt in ir.walk_stmts(function.body):
            for expr in ir.stmt_exprs(stmt):
                for e in ir.walk_expr(expr):
                    if isinstance(e, ir.ECall) and visit(e.callee):
                        return True
        visiting.discard(name)
        done.add(name)
        return False

    return visit(root)


def exclusion_reasons(module: ir.IRModule, method: str) -> list:
    """Why the GPU backend cannot compile ``method`` as (part of) a
    kernel. Empty list means eligible."""
    function = module.functions.get(method)
    if function is None:
        return [f"method {method} not found"]
    reasons: list[str] = []
    if not function.is_pure:
        reasons.append("method is not pure (GPU kernels require purity)")
    if not _type_supported(function.return_type):
        reasons.append(
            f"return type {function.return_type} not supported on GPU"
        )
    for param in function.params:
        if not _type_supported(param.type):
            reasons.append(
                f"parameter {param.name!r} has unsupported type "
                f"{param.type}"
            )
    if _has_recursion(module, method):
        reasons.append("recursion is not supported in OpenCL")
    # Inspect the whole reachable body.
    reachable: set = set()
    _collect_callees(module, method, reachable)
    for name in sorted(reachable):
        callee = module.functions.get(name)
        if callee is None:
            continue
        reasons.extend(
            f"in {name}: {r}" for r in _body_reasons(callee)
        )
    return reasons


def _body_reasons(function: ir.IRFunction) -> list:
    reasons: list[str] = []
    for stmt in ir.walk_stmts(function.body):
        if isinstance(stmt, ir.SGraphStart):
            reasons.append("task graph construction")
        for expr in ir.stmt_exprs(stmt):
            for e in ir.walk_expr(expr):
                if isinstance(e, ir.ENewArray):
                    reasons.append(
                        "dynamic array allocation inside a kernel"
                    )
                elif isinstance(e, (ir.ENewObject, ir.EFieldLoad, ir.EThis)):
                    reasons.append("object types are not supported on GPU")
                elif isinstance(e, (ir.EMap, ir.EReduce)):
                    reasons.append("nested data parallelism")
                elif isinstance(
                    e,
                    (
                        ir.EGraphSource,
                        ir.EGraphSink,
                        ir.EGraphTask,
                        ir.EGraphConnect,
                    ),
                ):
                    reasons.append("task graph construction")
                elif isinstance(e, ir.EIntrinsic) and e.name in (
                    "println",
                    "print",
                ):
                    reasons.append("I/O inside a kernel")
                elif isinstance(e, ir.EStaticLoad):
                    reasons.append("static state inside a kernel")
                elif isinstance(e, ir.EConst) and isinstance(e.value, str):
                    reasons.append("strings are not supported on GPU")
    # De-duplicate, preserving order.
    unique: list[str] = []
    for reason in reasons:
        if reason not in unique:
            unique.append(reason)
    return unique
