"""On-disk artifact repository.

Section 1: a device artifact "may either be embedded into the host
machine code, or it may exist in a repository and identified via a
unique identifier that is part of the invocation process." This module
implements the repository form: a directory holding every artifact's
manifest (JSON), its generated source text (``.cl`` / ``.v``), and its
executable payload (pickled simulator objects), all keyed by artifact
identifier. A saved repository reloads into an
:class:`~repro.backends.common.ArtifactStore` the runtime can use
directly.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle

from repro.backends.common import Artifact, ArtifactStore, Exclusion, Manifest
from repro.errors import BackendError

_INDEX_NAME = "index.json"
_SOURCE_EXT = {"opencl": ".cl", "verilog": ".v", "java-bytecode": ".class.txt"}


def _slug(artifact_id: str) -> str:
    """Filesystem-safe name for an artifact id.

    Sanitization alone is lossy — ``graph:a.b`` and ``graph_a.b`` both
    sanitize to ``graph_a.b`` and would silently overwrite each other's
    files — so ids that needed any substitution carry a short digest of
    the *raw* id to keep distinct ids on distinct files. (Loading is
    unaffected either way: the index records every filename.)
    """
    out = []
    for ch in artifact_id:
        out.append(ch if ch.isalnum() or ch in "._-" else "_")
    sanitized = "".join(out)
    if sanitized == artifact_id:
        return sanitized
    digest = hashlib.sha256(artifact_id.encode("utf-8")).hexdigest()[:8]
    return f"{sanitized}-{digest}"


def save_repository(store: ArtifactStore, directory: str) -> str:
    """Write every artifact (manifest + text + payload) to ``directory``.

    Returns the path of the repository index."""
    os.makedirs(directory, exist_ok=True)
    index = {"artifacts": [], "exclusions": []}
    for artifact in store.all():
        manifest = artifact.manifest
        slug = _slug(artifact.artifact_id)
        entry = {
            "artifact_id": manifest.artifact_id,
            "device": manifest.device,
            "task_ids": manifest.task_ids,
            "graph_id": manifest.graph_id,
            "source_language": manifest.source_language,
            "properties": manifest.properties,
            "payload_file": f"{slug}.payload",
        }
        if artifact.text:
            ext = _SOURCE_EXT.get(manifest.source_language, ".txt")
            entry["text_file"] = f"{slug}{ext}"
            with open(os.path.join(directory, entry["text_file"]), "w") as f:
                f.write(artifact.text)
        with open(
            os.path.join(directory, entry["payload_file"]), "wb"
        ) as f:
            pickle.dump(artifact.payload, f)
        index["artifacts"].append(entry)
    for exclusion in store.exclusions:
        index["exclusions"].append(
            {
                "device": exclusion.device,
                "task_id": exclusion.task_id,
                "reason": exclusion.reason,
            }
        )
    index_path = os.path.join(directory, _INDEX_NAME)
    with open(index_path, "w") as f:
        json.dump(index, f, indent=2, default=str)
    return index_path


def load_repository(directory: str) -> ArtifactStore:
    """Reload a repository written by :func:`save_repository`."""
    index_path = os.path.join(directory, _INDEX_NAME)
    if not os.path.exists(index_path):
        raise BackendError(f"no artifact repository at {directory!r}")
    with open(index_path) as f:
        index = json.load(f)
    store = ArtifactStore()
    for entry in index["artifacts"]:
        manifest = Manifest(
            artifact_id=entry["artifact_id"],
            device=entry["device"],
            task_ids=list(entry["task_ids"]),
            graph_id=entry.get("graph_id"),
            source_language=entry.get("source_language", ""),
            properties=dict(entry.get("properties", {})),
        )
        with open(
            os.path.join(directory, entry["payload_file"]), "rb"
        ) as f:
            payload = pickle.load(f)
        text = ""
        if "text_file" in entry:
            with open(os.path.join(directory, entry["text_file"])) as f:
                text = f.read()
        store.add(Artifact(manifest=manifest, payload=payload, text=text))
    for entry in index.get("exclusions", []):
        store.add_exclusion(
            Exclusion(entry["device"], entry["task_id"], entry["reason"])
        )
    return store
