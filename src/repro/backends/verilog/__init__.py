"""The FPGA backend: behavioral synthesis to Verilog and RTL bundles."""

from repro.backends.verilog.codegen import FPGAModuleBundle, make_bundle
from repro.backends.verilog.compiler import VerilogBackend, compile_fpga
from repro.backends.verilog.datapath import DatapathBuilder
from repro.backends.verilog.testbench import generate_testbench

__all__ = [
    "DatapathBuilder",
    "FPGAModuleBundle",
    "VerilogBackend",
    "compile_fpga",
    "generate_testbench",
    "make_bundle",
]
