"""Verilog generation and RTL elaboration for filter modules.

Every generated module implements the handshake of the paper's
Figure 4: the host asserts ``inReady`` with a word on ``inWord``; a
1-deep input FIFO presents the word on ``inData`` one cycle later; the
datapath then takes one cycle to read, one to compute, and one to
publish, asserting ``outReady`` with the result on ``outData``. By
default the module is *not* fully pipelined (initiation interval 3),
exactly as the paper describes its generated logic; ``pipelined=True``
generates the II=1 variant used by the pipelining ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backends.bytecode.ops import wrap_int, wrap_long
from repro.devices.fpga.rtl import Netlist
from repro.devices.fpga.synthesis import SynthesisReport, estimate, width_of
from repro.errors import BackendError
from repro.ir import nodes as ir
from repro.lime import types as ty
from repro.values.bits import Bit
from repro.values.enums import EnumValue


def mangle(qualified: str) -> str:
    return qualified.replace(".", "_").replace("~", "invert")


def _signed(type_) -> bool:
    return isinstance(type_, ty.PrimType) and type_.name in ("int", "long")


# ---------------------------------------------------------------------------
# Verilog expression text
# ---------------------------------------------------------------------------


def verilog_expr(expr: ir.IRExpr, param_map: dict) -> str:
    """Render a datapath expression DAG as Verilog."""
    if isinstance(expr, ir.EConst):
        return _verilog_const(expr)
    if isinstance(expr, ir.ELocal):
        return param_map[expr.name]
    if isinstance(expr, ir.EBinary):
        left = verilog_expr(expr.left, param_map)
        right = verilog_expr(expr.right, param_map)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ir.EUnary):
        operand = verilog_expr(expr.operand, param_map)
        op = {"!": "!", "~": "~", "-": "-"}[expr.op]
        return f"({op}{operand})"
    if isinstance(expr, ir.ETernary):
        return (
            f"({verilog_expr(expr.cond, param_map)} ? "
            f"{verilog_expr(expr.then, param_map)} : "
            f"{verilog_expr(expr.other, param_map)})"
        )
    if isinstance(expr, ir.ECast):
        width = width_of(expr.type)
        inner = verilog_expr(expr.operand, param_map)
        return f"({width}'(({inner})))" if width > 1 else f"({inner}[0])"
    if isinstance(expr, ir.EIntrinsic) and expr.name == "bit.~":
        return f"(~{verilog_expr(expr.args[0], param_map)})"
    raise BackendError(
        f"cannot render {type(expr).__name__} as Verilog"
    )


def _verilog_const(expr: ir.EConst) -> str:
    value = expr.value
    if isinstance(value, Bit):
        return f"1'b{int(value)}"
    if isinstance(value, bool):
        return f"1'b{int(value)}"
    if isinstance(value, EnumValue):
        return f"8'd{value.ordinal}"
    if isinstance(value, int):
        width = width_of(expr.type)
        if value < 0:
            return f"-{width}'sd{-value}"
        suffix = "sd" if _signed(expr.type) else "d"
        return f"{width}'{suffix}{value}"
    raise BackendError(f"constant {value!r} has no Verilog form")


# ---------------------------------------------------------------------------
# Python evaluation of the datapath (for the cycle simulator)
# ---------------------------------------------------------------------------


def eval_datapath(expr: ir.IRExpr, env: dict):
    """Evaluate the DAG over Python ints (bits/booleans as 0/1,
    enums as ordinals)."""
    if isinstance(expr, ir.EConst):
        value = expr.value
        if isinstance(value, Bit):
            return int(value)
        if isinstance(value, EnumValue):
            return value.ordinal
        if isinstance(value, bool):
            return int(value)
        return value
    if isinstance(expr, ir.ELocal):
        return env[expr.name]
    if isinstance(expr, ir.EBinary):
        left = eval_datapath(expr.left, env)
        right = eval_datapath(expr.right, env)
        return _eval_binop(expr.op, left, right, expr.type)
    if isinstance(expr, ir.EUnary):
        operand = eval_datapath(expr.operand, env)
        if expr.op == "-":
            return _wrap_arith(-operand, expr.type)
        if expr.op == "!":
            return 1 - (1 if operand else 0)
        if expr.op == "~":
            if expr.type == ty.BIT or expr.type == ty.BOOLEAN:
                return operand ^ 1
            return _wrap_arith(~operand, expr.type)
    if isinstance(expr, ir.ETernary):
        cond = eval_datapath(expr.cond, env)
        branch = expr.then if cond else expr.other
        return eval_datapath(branch, env)
    if isinstance(expr, ir.ECast):
        value = eval_datapath(expr.operand, env)
        if expr.type == ty.BIT or expr.type == ty.BOOLEAN:
            return value & 1
        return _wrap_arith(int(value), expr.type)
    if isinstance(expr, ir.EIntrinsic) and expr.name == "bit.~":
        return eval_datapath(expr.args[0], env) ^ 1
    raise BackendError(f"cannot evaluate {type(expr).__name__}")


def _wrap_arith(value: int, type_):
    if type_ == ty.LONG:
        return wrap_long(value)
    if type_ in (ty.BIT, ty.BOOLEAN):
        return value & 1
    return wrap_int(value)


def _eval_binop(op: str, left: int, right: int, result_type):
    if op == "+":
        return _wrap_arith(left + right, result_type)
    if op == "-":
        return _wrap_arith(left - right, result_type)
    if op == "*":
        return _wrap_arith(left * right, result_type)
    if op == "/":
        if right == 0:
            return 0  # hardware divider: undefined; we define as 0
        quotient = abs(left) // abs(right)
        return _wrap_arith(
            -quotient if (left < 0) != (right < 0) else quotient,
            result_type,
        )
    if op == "%":
        if right == 0:
            return 0
        remainder = abs(left) % abs(right)
        return _wrap_arith(
            -remainder if left < 0 else remainder, result_type
        )
    if op == "<<":
        return _wrap_arith(left << (right & 63), result_type)
    if op == ">>":
        return _wrap_arith(left >> (right & 63), result_type)
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    raise BackendError(f"unknown operator {op}")


# ---------------------------------------------------------------------------
# Module generation
# ---------------------------------------------------------------------------


@dataclass
class FPGAModuleBundle:
    """Payload of one FPGA artifact: everything needed to simulate and
    to inspect the generated hardware."""

    name: str
    methods: list
    datapath: ir.IRExpr
    param_name: str
    in_type: object
    out_type: object
    in_kind: object
    out_kind: object
    pipelined: bool
    synthesis: SynthesisReport
    # Retiming: number of register-separated compute stages the
    # datapath is cut into (1 = the Figure 4 single-cycle compute).
    compute_stages: int = 1

    @property
    def in_width(self) -> int:
        return width_of(self.in_type)

    @property
    def out_width(self) -> int:
        return width_of(self.out_type)

    # -- value <-> wire conversions (the device boundary) ---------------

    def encode(self, value) -> int:
        if isinstance(value, Bit):
            return int(value)
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, EnumValue):
            return value.ordinal
        return int(value)

    def decode(self, raw: int):
        out = self.out_type
        if out == ty.BIT:
            return Bit(raw & 1)
        if out == ty.BOOLEAN:
            return bool(raw & 1)
        if isinstance(out, ty.ClassType) and out.is_enum:
            return EnumValue(out.name, raw, out.enum_size)
        width = self.out_width
        if raw >= 1 << (width - 1):
            raw -= 1 << width
        return raw

    def _decode_input(self, raw: int) -> int:
        """Unsigned register value -> signed Python int for evaluation."""
        if _signed(self.in_type):
            width = self.in_width
            if raw >= 1 << (width - 1):
                raw -= 1 << width
        return raw

    # -- elaboration ------------------------------------------------------

    def elaborate(self) -> Netlist:
        net = Netlist(self.name)
        w_in, w_out = self.in_width, self.out_width
        net.add_input("inReady", 1)
        net.add_input("inWord", w_in)
        # 1-deep input FIFO; its output register is the waveform's
        # inData, which goes high one cycle after inReady (Figure 4).
        net.add_reg("fifo_valid", 1)
        net.add_reg("inData", w_in)
        net.add_reg("read_valid", 1)
        net.add_reg("read_data", w_in)
        stages = max(self.compute_stages, 1)
        stage_names = [
            ("comp_valid" if i == 0 else f"comp{i + 1}_valid",
             "comp_data" if i == 0 else f"comp{i + 1}_data")
            for i in range(stages)
        ]
        for valid_name, data_name in stage_names:
            net.add_reg(valid_name, 1)
            net.add_reg(data_name, w_out)
        net.add_reg("out_valid", 1)
        net.add_reg("out_data", w_out)
        net.add_wire("can_issue", 1)
        net.add_wire("datapath", w_out)
        net.add_output("inAccept", 1)
        net.add_output("outReady", 1)
        net.add_output("outData", w_out)

        if self.pipelined:
            net.assign("can_issue", lambda e: e["fifo_valid"], ["fifo_valid"])
        else:
            busy_signals = (
                ["read_valid"]
                + [v for v, _ in stage_names]
                + ["out_valid"]
            )

            def issue(e, names=tuple(busy_signals)):
                busy = 0
                for name in names:
                    busy |= e[name]
                return e["fifo_valid"] & ~busy & 1

            net.assign(
                "can_issue", issue, ["fifo_valid"] + busy_signals
            )
        datapath_expr = self.datapath
        param = self.param_name

        def run_datapath(e):
            value = self._decode_input(e["read_data"])
            return eval_datapath(datapath_expr, {param: value})

        net.assign("datapath", run_datapath, ["read_data"])
        net.assign(
            "inAccept",
            lambda e: (1 - e["fifo_valid"]) | e["can_issue"],
            ["fifo_valid", "can_issue"],
        )
        net.assign("outReady", lambda e: e["out_valid"], ["out_valid"])
        net.assign("outData", lambda e: e["out_data"], ["out_data"])

        net.on_clock(
            "fifo_valid",
            lambda e: e["inReady"] | (e["fifo_valid"] & (1 - e["can_issue"])),
        )
        net.on_clock(
            "inData",
            lambda e: e["inWord"] if e["inReady"] else e["inData"],
        )
        net.on_clock("read_valid", lambda e: e["can_issue"])
        net.on_clock(
            "read_data",
            lambda e: e["inData"] if e["can_issue"] else e["read_data"],
        )
        # First compute stage evaluates the (retimed) datapath; the
        # remaining stages are the retiming registers.
        net.on_clock("comp_valid", lambda e: e["read_valid"])
        net.on_clock(
            "comp_data",
            lambda e: e["datapath"] if e["read_valid"] else e["comp_data"],
        )
        for (prev_valid, prev_data), (valid_name, data_name) in zip(
            stage_names, stage_names[1:]
        ):
            net.on_clock(
                valid_name, lambda e, pv=prev_valid: e[pv]
            )
            net.on_clock(
                data_name,
                lambda e, pv=prev_valid, pd=prev_data, dn=data_name: (
                    e[pd] if e[pv] else e[dn]
                ),
            )
        last_valid, last_data = stage_names[-1]
        net.on_clock("out_valid", lambda e, lv=last_valid: e[lv])
        net.on_clock(
            "out_data",
            lambda e, lv=last_valid, ld=last_data: (
                e[ld] if e[lv] else e["out_data"]
            ),
        )
        return net

    # -- Verilog text -----------------------------------------------------

    def verilog(self) -> str:
        w_in, w_out = self.in_width, self.out_width
        signed_in = " signed" if _signed(self.in_type) else ""
        signed_out = " signed" if _signed(self.out_type) else ""
        stages = max(self.compute_stages, 1)
        stage_names = [
            ("comp_valid" if i == 0 else f"comp{i + 1}_valid",
             "comp_data" if i == 0 else f"comp{i + 1}_data")
            for i in range(stages)
        ]
        busy = " | ".join(
            ["read_valid"] + [v for v, _ in stage_names] + ["out_valid"]
        )
        issue = (
            "fifo_valid"
            if self.pipelined
            else f"fifo_valid & ~({busy})"
        )
        expr_text = verilog_expr(self.datapath, {self.param_name: "read_data"})
        stage_decls = "\n".join(
            f"    reg {valid};\n"
            f"    reg{signed_out} [{w_out - 1}:0] {data};"
            for valid, data in stage_names
        )
        stage_resets = "\n".join(
            f"            {valid} <= 1'b0;" for valid, _ in stage_names
        )
        shift_lines = []
        for (pv, pd), (valid, data) in zip(stage_names, stage_names[1:]):
            shift_lines.append(f"            {valid} <= {pv};")
            shift_lines.append(f"            if ({pv}) {data} <= {pd};")
        shifts = "\n".join(shift_lines)
        last_valid, last_data = stage_names[-1]
        return f"""// generated by the Liquid Metal FPGA backend
// methods: {', '.join(self.methods)}
// initiation interval: {1 if self.pipelined else 2 + stages}
// compute stages (retiming): {stages}
module {self.name} (
    input  wire clk,
    input  wire rst,
    input  wire inReady,
    input  wire{signed_in} [{w_in - 1}:0] inWord,
    output wire inAccept,
    output wire outReady,
    output wire{signed_out} [{w_out - 1}:0] outData
);
    // 1-deep input FIFO: produces its value on the next rising edge
    reg fifo_valid;
    reg{signed_in} [{w_in - 1}:0] inData;
    // read -> compute x{stages} -> publish stages (one cycle each)
    reg read_valid;
    reg{signed_in} [{w_in - 1}:0] read_data;
{stage_decls}
    reg out_valid;
    reg{signed_out} [{w_out - 1}:0] out_data;

    wire can_issue = {issue};
    wire{signed_out} [{w_out - 1}:0] datapath = {expr_text};

    assign inAccept = ~fifo_valid | can_issue;
    assign outReady = out_valid;
    assign outData  = out_data;

    always @(posedge clk) begin
        if (rst) begin
            fifo_valid <= 1'b0;
            read_valid <= 1'b0;
{stage_resets}
            out_valid  <= 1'b0;
        end else begin
            if (inReady) inData <= inWord;
            fifo_valid <= inReady | (fifo_valid & ~can_issue);
            read_valid <= can_issue;
            if (can_issue) read_data <= inData;
            comp_valid <= read_valid;
            if (read_valid) comp_data <= datapath;
{shifts}
            out_valid <= {last_valid};
            if ({last_valid}) out_data <= {last_data};
        end
    end
endmodule
"""


def make_bundle(
    module: ir.IRModule,
    methods: list,
    datapath: ir.IRExpr,
    pipelined: bool = False,
    max_stage_depth: "int | None" = None,
) -> FPGAModuleBundle:
    """Assemble the bundle for a (possibly fused) filter chain.

    ``max_stage_depth`` enables automatic retiming: datapaths deeper
    than that many LUT levels are cut into multiple compute stages."""
    first = module.functions[methods[0]]
    last = module.functions[methods[-1]]
    name = "mod_" + "__".join(mangle(m) for m in methods)
    in_type = first.params[0].type
    out_type = last.return_type
    report = estimate(
        name,
        datapath,
        width_of(in_type),
        width_of(out_type),
        pipelined=pipelined,
    )
    stages = 1
    if max_stage_depth is not None and report.logic_depth > max_stage_depth:
        stages = -(-report.logic_depth // max_stage_depth)
        report = estimate(
            name,
            datapath,
            width_of(in_type),
            width_of(out_type),
            pipelined=pipelined,
            compute_stages=stages,
        )
    return FPGAModuleBundle(
        name=name,
        methods=list(methods),
        datapath=datapath,
        param_name=first.params[0].name,
        in_type=in_type,
        out_type=out_type,
        in_kind=in_type.kind(),
        out_kind=out_type.kind(),
        pipelined=pipelined,
        synthesis=report,
        compute_stages=stages,
    )
