"""The FPGA device compiler: produces Verilog artifacts.

For every relocatable filter stage of every statically discovered task
graph it attempts behavioral synthesis via the datapath builder; tasks
with unsuitable constructs are excluded with a recorded reason
(Section 3). Contiguous eligible regions additionally get a fused
module so the prefer-larger substitution has a bigger candidate.
"""

from __future__ import annotations

from repro.backends import common
from repro.backends.verilog import codegen
from repro.backends.verilog.datapath import DatapathBuilder
from repro.errors import ExclusionNotice
from repro.ir import nodes as ir
from repro.obs.tracer import NULL_TRACER


class VerilogBackend:
    device = common.FPGA

    def __init__(
        self,
        module: ir.IRModule,
        pipelined: bool = False,
        max_stage_depth: "int | None" = None,
        tracer=NULL_TRACER,
    ):
        self.module = module
        self.pipelined = pipelined
        self.max_stage_depth = max_stage_depth
        self.builder = DatapathBuilder(module)
        self.tracer = tracer
        self.artifacts: list[common.Artifact] = []
        self.exclusions: list[common.Exclusion] = []

    def compile(self) -> "VerilogBackend":
        for graph in self.module.task_graphs:
            for start, end in graph.relocation_regions():
                stages = graph.stages[start : end + 1]
                eligible = []
                for stage in stages:
                    if self._try_stage(graph, stage):
                        eligible.append(stage)
                if len(eligible) == len(stages) and len(stages) > 1:
                    self._try_fused(graph, stages)
        return self

    # ------------------------------------------------------------------

    def _try_stage(self, graph, stage) -> bool:
        if stage.stateful:
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    stage.task_id,
                    "stateful task: state registers are future work "
                    "for the FPGA backend",
                )
            )
            return False
        if stage.arity != 1:
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    stage.task_id,
                    "multi-input filters are not synthesizable by this "
                    "backend",
                )
            )
            return False
        try:
            datapath = self.builder.build(stage.method)
        except ExclusionNotice as notice:
            self.exclusions.append(
                common.Exclusion(self.device, stage.task_id, notice.reason)
            )
            return False
        bundle = codegen.make_bundle(
            self.module,
            [stage.method],
            datapath,
            pipelined=self.pipelined,
            max_stage_depth=self.max_stage_depth,
        )
        self._emit(graph, [stage], bundle)
        return True

    def _try_fused(self, graph, stages) -> None:
        try:
            # Chain the datapaths: feed each stage's DAG into the next.
            first = self.module.functions[stages[0].method]
            datapath = self.builder.build(stages[0].method)
            for stage in stages[1:]:
                datapath = self.builder._inline(
                    stage.method, [datapath], 0
                )
        except ExclusionNotice as notice:
            self.exclusions.append(
                common.Exclusion(
                    self.device,
                    "+".join(s.task_id for s in stages),
                    notice.reason,
                )
            )
            return
        bundle = codegen.make_bundle(
            self.module,
            [s.method for s in stages],
            datapath,
            pipelined=self.pipelined,
            max_stage_depth=self.max_stage_depth,
        )
        self._emit(graph, list(stages), bundle)

    def _emit(self, graph, stages, bundle) -> None:
        task_ids = [s.task_id for s in stages]
        with self.tracer.span(
            "compile.backend.verilog.module",
            tasks=",".join(task_ids),
            graph=graph.graph_id,
            pipelined=bundle.pipelined,
        ) as span:
            text = bundle.verilog()
            span.set(
                fmax_hz=bundle.synthesis.fmax_hz,
                flipflops=bundle.synthesis.flipflops,
            )
        manifest = common.Manifest(
            artifact_id="fpga:" + "+".join(task_ids),
            device=self.device,
            task_ids=task_ids,
            graph_id=graph.graph_id,
            source_language="verilog",
            properties={
                "luts": bundle.synthesis.luts,
                "flipflops": bundle.synthesis.flipflops,
                "brams": bundle.synthesis.brams,
                "fmax_hz": bundle.synthesis.fmax_hz,
                "pipelined": bundle.pipelined,
            },
        )
        self.artifacts.append(
            common.Artifact(manifest=manifest, payload=bundle, text=text)
        )


def compile_fpga(
    module: ir.IRModule,
    pipelined: bool = False,
    max_stage_depth: "int | None" = None,
    tracer=NULL_TRACER,
) -> VerilogBackend:
    """Run the FPGA backend over a module."""
    return VerilogBackend(
        module,
        pipelined=pipelined,
        max_stage_depth=max_stage_depth,
        tracer=tracer,
    ).compile()
