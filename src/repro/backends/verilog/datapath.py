"""Datapath extraction: behavioral synthesis of a pure filter method
into a single combinational expression DAG.

The FPGA backend accepts a deliberately narrower language subset than
the GPU backend — the paper is explicit that "our FPGA backend is a
work in progress" (Section 5) and that its device compiler excludes
tasks with unsuitable constructs (Section 3). Supported here:

* scalar types: bit, boolean, int, long, and value enums;
* straight-line code, if/else (converted to muxes), ternaries;
* canonical ``for`` loops with constant bounds (fully unrolled);
* calls to other eligible local methods (inlined);
* ``Math.abs/min/max`` on integers (become mux trees).

Everything else raises :class:`ExclusionNotice`, which the backend
records as the exclusion reason.
"""

from __future__ import annotations

from repro.errors import ExclusionNotice
from repro.ir import nodes as ir
from repro.ir.optimizations import fold_binary
from repro.lime import types as ty


_SCALAR_OK = ("bit", "boolean", "int", "long")


def _check_type(type_) -> None:
    if isinstance(type_, ty.PrimType) and type_.name in _SCALAR_OK:
        return
    if isinstance(type_, ty.ClassType) and type_.is_enum:
        return
    raise ExclusionNotice(
        f"type {type_} is not synthesizable (FPGA backend supports "
        "bit/boolean/int/long/enums)"
    )


def _mk_binary(type_, op, left, right) -> ir.IRExpr:
    if isinstance(left, ir.EConst) and isinstance(right, ir.EConst):
        ok, value = fold_binary(op, left.value, right.value, type_)
        if ok:
            return ir.EConst(type_, value)
    return ir.EBinary(type_, op, left, right)


def _mk_mux(type_, cond, then, other) -> ir.IRExpr:
    if isinstance(cond, ir.EConst):
        return then if cond.value else other
    if (
        isinstance(then, ir.EConst)
        and isinstance(other, ir.EConst)
        and then.value == other.value
    ):
        return then
    return ir.ETernary(type_, cond, then, other)


class DatapathBuilder:
    """Symbolically evaluates a method body into an expression DAG."""

    def __init__(self, module: ir.IRModule, unroll_budget: int = 256,
                 inline_depth: int = 16):
        self.module = module
        self.unroll_budget = unroll_budget
        self.inline_depth = inline_depth

    def build(self, method: str) -> ir.IRExpr:
        """The datapath of ``method`` as a function of its parameters
        (ELocal leaves named after the parameters)."""
        return self._inline(method, None, 0)

    # ------------------------------------------------------------------

    def _inline(self, method: str, args, depth: int) -> ir.IRExpr:
        if depth > self.inline_depth:
            raise ExclusionNotice(
                f"call inlining too deep at {method} (recursion?)"
            )
        function = self.module.functions.get(method)
        if function is None:
            raise ExclusionNotice(f"method {method} not found")
        if not function.is_pure:
            raise ExclusionNotice(
                f"{method} is not pure and cannot be synthesized"
            )
        _check_type(function.return_type)
        env: dict[str, ir.IRExpr] = {}
        for i, param in enumerate(function.params):
            _check_type(param.type)
            env[param.name] = (
                ir.ELocal(param.type, param.name) if args is None else args[i]
            )
        result = self._eval_stmts(list(function.body), env, depth)
        if result is None:
            raise ExclusionNotice(
                f"{method}: not all paths produce a value"
            )
        return result

    def _eval_stmts(self, stmts: list, env: dict, depth: int):
        """Evaluate statements; returns the return-value expression or
        None if control falls through."""
        for i, stmt in enumerate(stmts):
            rest = stmts[i + 1 :]
            if isinstance(stmt, ir.SReturn):
                if stmt.value is None:
                    raise ExclusionNotice("void return in a filter")
                return self._eval_expr(stmt.value, env, depth)
            if isinstance(stmt, (ir.SLet, ir.SAssignLocal)):
                value = self._eval_expr(
                    stmt.init if isinstance(stmt, ir.SLet) else stmt.value,
                    env,
                    depth,
                )
                env[stmt.name] = value
                continue
            if isinstance(stmt, ir.SIf):
                return self._eval_if(stmt, rest, env, depth)
            if isinstance(stmt, ir.SFor):
                self._unroll_for(stmt, env, depth)
                continue
            if isinstance(stmt, ir.SWhile):
                raise ExclusionNotice(
                    "while loops are not synthesizable (no static bound)"
                )
            if isinstance(stmt, ir.SExpr):
                continue  # pure expression statements have no effect
            if isinstance(stmt, (ir.SBreak, ir.SContinue)):
                raise ExclusionNotice(
                    "break/continue are not synthesizable"
                )
            raise ExclusionNotice(
                f"statement {type(stmt).__name__} is not synthesizable"
            )
        return None

    def _eval_if(self, stmt: ir.SIf, rest: list, env: dict, depth: int):
        cond = self._eval_expr(stmt.cond, env, depth)
        env_then = dict(env)
        env_else = dict(env)
        ret_then = self._eval_stmts(list(stmt.then), env_then, depth)
        ret_else = self._eval_stmts(list(stmt.other), env_else, depth)
        if ret_then is not None and ret_else is not None:
            return _mk_mux(ret_then.type, cond, ret_then, ret_else)
        if ret_then is None and ret_else is None:
            # Merge variable bindings with muxes.
            for name in set(env_then) | set(env_else):
                then_value = env_then.get(name)
                else_value = env_else.get(name)
                if then_value is None or else_value is None:
                    # Variable scoped to one branch; drop it.
                    env.pop(name, None)
                    continue
                if then_value is else_value:
                    env[name] = then_value
                else:
                    env[name] = _mk_mux(
                        then_value.type, cond, then_value, else_value
                    )
            return self._eval_stmts(rest, env, depth)
        # Exactly one branch returns: continue along the other path,
        # then mux the early return against the rest of the block.
        if ret_then is not None:
            env.update(env_else)
            ret_rest = self._eval_stmts(rest, env, depth)
            if ret_rest is None:
                raise ExclusionNotice(
                    "a path after the if does not produce a value"
                )
            return _mk_mux(ret_then.type, cond, ret_then, ret_rest)
        env.update(env_then)
        ret_rest = self._eval_stmts(rest, env, depth)
        if ret_rest is None:
            raise ExclusionNotice(
                "a path after the if does not produce a value"
            )
        return _mk_mux(
            ret_else.type,
            cond,
            ret_rest,
            ret_else,
        )

    def _unroll_for(self, stmt: ir.SFor, env: dict, depth: int) -> None:
        start = self._eval_expr(stmt.start, env, depth)
        limit = self._eval_expr(stmt.limit, env, depth)
        step = self._eval_expr(stmt.step, env, depth)
        if not all(
            isinstance(e, ir.EConst) for e in (start, limit, step)
        ):
            raise ExclusionNotice(
                "for loop bounds must be compile-time constants for "
                "synthesis (full unrolling)"
            )
        if step.value <= 0:
            raise ExclusionNotice("non-positive loop step")
        trip_count = max(
            0, -(-(limit.value - start.value) // step.value)
        )
        if trip_count > self.unroll_budget:
            raise ExclusionNotice(
                f"loop trip count {trip_count} exceeds the unroll "
                f"budget ({self.unroll_budget})"
            )
        value = start.value
        for _ in range(trip_count):
            env[stmt.var] = ir.EConst(ty.INT, value)
            result = self._eval_stmts(list(stmt.body), env, depth)
            if result is not None:
                raise ExclusionNotice(
                    "return inside a loop is not synthesizable"
                )
            value += step.value
        env[stmt.var] = ir.EConst(ty.INT, value)

    # ------------------------------------------------------------------

    def _eval_expr(self, expr: ir.IRExpr, env: dict, depth: int):
        if isinstance(expr, ir.EConst):
            if isinstance(expr.value, str):
                raise ExclusionNotice("strings are not synthesizable")
            return expr
        if isinstance(expr, ir.ELocal):
            bound = env.get(expr.name)
            if bound is None:
                raise ExclusionNotice(
                    f"unbound variable {expr.name!r} in datapath"
                )
            return bound
        if isinstance(expr, ir.EBinary):
            _check_type(expr.type) if expr.type != ty.BOOLEAN else None
            return _mk_binary(
                expr.type,
                expr.op,
                self._eval_expr(expr.left, env, depth),
                self._eval_expr(expr.right, env, depth),
            )
        if isinstance(expr, ir.EUnary):
            operand = self._eval_expr(expr.operand, env, depth)
            if isinstance(operand, ir.EConst):
                from repro.backends.bytecode.ops import apply_unary

                typename = (
                    expr.type.name
                    if isinstance(expr.type, ty.PrimType)
                    else "int"
                )
                return ir.EConst(
                    expr.type, apply_unary(expr.op, operand.value, typename)
                )
            return ir.EUnary(expr.type, expr.op, operand)
        if isinstance(expr, ir.ETernary):
            return _mk_mux(
                expr.type,
                self._eval_expr(expr.cond, env, depth),
                self._eval_expr(expr.then, env, depth),
                self._eval_expr(expr.other, env, depth),
            )
        if isinstance(expr, ir.ECast):
            _check_type(expr.type)
            operand = self._eval_expr(expr.operand, env, depth)
            if operand.type == expr.type:
                return operand
            return ir.ECast(expr.type, operand)
        if isinstance(expr, ir.ECall):
            args = [self._eval_expr(a, env, depth) for a in expr.args]
            return self._inline(expr.callee, args, depth + 1)
        if isinstance(expr, ir.EIntrinsic):
            return self._eval_intrinsic(expr, env, depth)
        raise ExclusionNotice(
            f"expression {type(expr).__name__} is not synthesizable"
        )

    def _eval_intrinsic(self, expr: ir.EIntrinsic, env, depth):
        args = [self._eval_expr(a, env, depth) for a in expr.args]
        if expr.name == "bit.~":
            return ir.EIntrinsic(ty.BIT, "bit.~", args)
        if expr.name == "Math.abs" and expr.type in (ty.INT, ty.LONG):
            x = args[0]
            zero = ir.EConst(expr.type, 0)
            return _mk_mux(
                expr.type,
                _mk_binary(ty.BOOLEAN, "<", x, zero),
                ir.EUnary(expr.type, "-", x),
                x,
            )
        if expr.name in ("Math.min", "Math.max") and expr.type in (
            ty.INT,
            ty.LONG,
        ):
            op = "<" if expr.name == "Math.min" else ">"
            return _mk_mux(
                expr.type,
                _mk_binary(ty.BOOLEAN, op, args[0], args[1]),
                args[0],
                args[1],
            )
        raise ExclusionNotice(
            f"intrinsic {expr.name} is not synthesizable (no "
            "floating-point units in the FPGA backend)"
        )
