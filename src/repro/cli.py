"""Command-line interface: the design flow of Section 5 without the
IDE.

Subcommands::

    python -m repro compile  prog.lime            # toolchain report
    python -m repro run      prog.lime C.m 1 2.5  # execute an entry point
    python -m repro trace    mandelbrot           # traced run -> Chrome JSON
    python -m repro profile  mandelbrot           # utilization + critical path
    python -m repro harvest  --cache-dir d/       # AOT-populate the cache
    python -m repro cache    stats --cache-dir d/ # cache maintenance
    python -m repro fuse     gray_pipeline        # plan task fusion
    python -m repro markers  prog.lime            # IDE-style marker view
    python -m repro graphs   prog.lime            # discovered task graphs
    python -m repro disas    prog.lime            # bytecode disassembly
    python -m repro emit-opencl  prog.lime        # generated OpenCL C
    python -m repro emit-verilog prog.lime        # generated Verilog
    python -m repro emit-testbench prog.lime      # self-checking Verilog TB
    python -m repro format   prog.lime            # pretty-print/normalize
    python -m repro build    prog.lime -o out/    # on-disk artifact repo

Every compiling command accepts the artifact-cache flags uniformly
(docs/CACHING.md): ``--cache-dir DIR`` warm-starts backend compilation
from the content-addressed cache (``readwrite`` by default;
``--cache-mode read`` consumes without writing back), ``--no-cache``
disables cache I/O even when a directory is given, and
``--cache-max-bytes`` bounds the on-disk size (LRU eviction).
``harvest`` pre-populates a cache for the whole app suite; ``cache
{stats,purge,verify}`` inspect and maintain one.

``run``, ``trace``, and ``profile`` accept ``--fusion
{off,auto,plan=FILE}`` (docs/FUSION.md): ``off`` forces the honest
unfused baseline (every stage crosses the marshaling boundary on its
own), ``auto`` fuses every legal group at compile time and lets the
runtime substitute whole-span artifacts, and ``plan=FILE`` replays a
saved ``repro.fusion/1`` plan deterministically. ``fuse`` plans fusion
for an app (optionally gated by a ``profile`` report) and saves the
plan. ``--specialize-after N`` opts into runtime kernel
specialization after N stable batches.

``trace`` accepts either a suite app name (see ``repro.apps.SUITE``)
or a Lime file plus ``--entry``; it compiles and runs under a live
tracer, then exports a Chrome ``trace_event`` JSON loadable in
``chrome://tracing`` or https://ui.perfetto.dev.

Argument literals accepted by ``run``: ints (``42``), floats (``2.5``),
booleans (``true``/``false``), bit literals (``110010111b``), and
comma-joined arrays (``ints:1,2,3`` / ``floats:0.5,1.5`` /
``bits:1,0,1``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.backends.artifacts import CacheOptions
from repro.compiler import (
    CompileOptions,
    CompilerSession,
    compile_program,
    compile_report,
)
from repro.errors import LiquidMetalError
from repro.ir.fusion import FusionOptions


def _parse_value(text: str):
    from repro.values import (
        KIND_FLOAT,
        KIND_INT,
        Bit,
        ValueArray,
        parse_bit_literal,
    )
    from repro.values.base import KIND_BIT

    if text == "true":
        return True
    if text == "false":
        return False
    if text.startswith("ints:"):
        return ValueArray(
            KIND_INT, [int(x) for x in text[5:].split(",") if x]
        )
    if text.startswith("floats:"):
        return ValueArray(
            KIND_FLOAT, [float(x) for x in text[7:].split(",") if x]
        )
    if text.startswith("bits:"):
        return ValueArray(
            KIND_BIT, [Bit(int(x)) for x in text[5:].split(",") if x]
        )
    if text.endswith("b") and all(c in "01" for c in text[:-1]) and text[:-1]:
        return ValueArray(KIND_BIT, parse_bit_literal(text[:-1]))
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    raise SystemExit(f"cannot parse argument {text!r}")


def _cache_options(args) -> "CacheOptions | None":
    """The cache sub-options a command's flags describe, or None when
    caching stays off. Uses getattr defaults so commands that predate
    the flags keep working unchanged."""
    cache_dir = getattr(args, "cache_dir", None)
    if getattr(args, "no_cache", False) or not cache_dir:
        return None
    return CacheOptions(
        cache_dir=cache_dir,
        mode=getattr(args, "cache_mode", None) or "readwrite",
        max_bytes=getattr(args, "cache_max_bytes", None),
    )


def _options(args, tracer=None) -> CompileOptions:
    options = CompileOptions(
        enable_gpu=not args.no_gpu,
        enable_fpga=not args.no_fpga,
        fpga_pipelined=args.fpga_pipelined,
    )
    cache = _cache_options(args)
    if cache is not None:
        options = options.replace(cache=cache)
    if tracer is not None:
        options = options.replace(tracer=tracer)
    flag = getattr(args, "fusion", None)
    if flag is not None:
        options = options.replace(fusion=FusionOptions.from_flag(flag))
    return options


def _runtime_fusion_kwargs(args) -> dict:
    """RuntimeConfig keyword arguments the fusion/specialization flags
    describe. With no ``--fusion`` the runtime keeps its historical
    default (``auto``: substitute any multi-stage artifact); ``off``
    makes the runtime reject fused spans too, so the baseline is
    honestly unfused; ``plan=FILE`` restricts fused substitutions to
    the spans the replayed plan sanctions (the plan object itself rides
    in on ``CompileResult.fusion_plan``)."""
    kwargs = {}
    flag = getattr(args, "fusion", None)
    if flag is not None:
        kwargs["fusion"] = FusionOptions.from_flag(flag).mode
    observe = getattr(args, "specialize_after", None)
    if observe is not None:
        from repro.runtime import SpecializationPolicy

        kwargs["specialize"] = SpecializationPolicy(
            enabled=True, observe_batches=observe
        )
    return kwargs


def _session(args, tracer=None) -> CompilerSession:
    return CompilerSession(_options(args, tracer=tracer))


def _compiled(args):
    with open(args.file) as f:
        source = f.read()
    return _session(args).compile(source, filename=args.file)


def _cmd_compile(args) -> int:
    print(compile_report(_compiled(args)))
    return 0


def _cmd_run(args) -> int:
    from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

    compiled = _compiled(args)
    policy = SubstitutionPolicy(use_accelerators=not args.cpu_only)
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            policy=policy,
            batch_size=args.batch_size,
            **_runtime_fusion_kwargs(args),
        ),
    )
    values = [_parse_value(a) for a in args.args]
    outcome = runtime.run(args.entry, values)
    if outcome.output:
        sys.stdout.write(outcome.output)
    if outcome.value is not None:
        print(f"result: {outcome.value!r}")
    if args.profile:
        print("method profile (inclusive cycles):")
        for name, calls, cycles in runtime.profile():
            print(f"  {cycles:>12d}  {calls:>8d} calls  {name}")
    if args.time:
        summary = outcome.ledger.summary()
        print(
            f"simulated time: {summary['total_s'] * 1e6:.2f} us "
            f"(host {summary['host_s'] * 1e6:.2f} us, "
            f"offloads {summary['offload_s'] * 1e6:.2f} us, "
            f"graphs {summary['graph_s'] * 1e6:.2f} us)"
        )
    return 0


def _resolve_target(args):
    """Resolve a CLI target (suite app name or ``.lime`` file) into
    ``(source, filename, name, entry, values)``; ``None`` after
    printing an error. Shared by ``trace`` and ``faults``."""
    import os

    if os.path.exists(args.target) or args.target.endswith(".lime"):
        if not args.entry:
            print(
                "error: a .lime file target requires --entry",
                file=sys.stderr,
            )
            return None
        with open(args.target) as f:
            source = f.read()
        name = os.path.splitext(os.path.basename(args.target))[0]
        return (
            source,
            args.target,
            name,
            args.entry,
            [_parse_value(a) for a in args.args],
        )
    from repro.apps import SUITE

    if args.target not in SUITE:
        known = ", ".join(sorted(SUITE))
        print(
            f"error: {args.target!r} is neither a file nor a suite "
            f"app (known apps: {known})",
            file=sys.stderr,
        )
        return None
    spec = SUITE[args.target]
    entry, values = spec.default_args()
    if args.entry:
        entry = args.entry
        values = [_parse_value(a) for a in args.args]
    return spec.source, f"<{spec.name}.lime>", spec.name, entry, values


def _cmd_trace(args) -> int:
    """Compile and run one app under tracing; export Chrome trace JSON."""
    from repro.obs import Tracer
    from repro.obs.export import (
        render_span_tree,
        validate_trace_events,
        write_chrome_trace,
        write_json_lines,
    )
    from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

    tracer = Tracer()
    resolved = _resolve_target(args)
    if resolved is None:
        return 2
    source, filename, name, entry, values = resolved
    compiled = _session(args, tracer=tracer).compile(source, filename=filename)
    policy = SubstitutionPolicy(use_accelerators=not args.cpu_only)
    config = RuntimeConfig(
        policy=policy,
        scheduler=args.scheduler,
        tracer=tracer,
        batch_size=args.batch_size,
        **_runtime_fusion_kwargs(args),
    )
    outcome = Runtime(compiled, config).run(entry, values)
    out_path = args.out or f"{name}.trace.json"
    payload = write_chrome_trace(tracer, out_path, process_name=name)
    problems = validate_trace_events(payload)
    if problems:
        print("error: exported trace failed validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.jsonl:
        write_json_lines(tracer, args.jsonl)
    if outcome.output:
        sys.stdout.write(outcome.output)
    print(f"entry: {entry}")
    print(
        f"simulated time: {outcome.seconds * 1e6:.2f} us; "
        f"{len(tracer.spans)} spans, "
        f"{len(tracer.counters)} counters"
    )
    if args.tree:
        print()
        print(render_span_tree(tracer))
    counters = tracer.counters.snapshot()
    if counters:
        print()
        print("counters:")
        for cname, value in counters.items():
            print(f"  {value:>12g}  {cname}")
    print(
        f"\nwrote {out_path} "
        f"({len(payload['traceEvents'])} events; load it in "
        "chrome://tracing or https://ui.perfetto.dev)"
    )
    if args.jsonl:
        print(f"wrote {args.jsonl}")
    return 0


def _cmd_profile(args) -> int:
    """Compile and run one app under tracing, then build and print the
    structured profile report (docs/PROFILING.md)."""
    import json

    from repro.obs import Tracer
    from repro.obs.profile import (
        build_profile,
        compare_profiles,
        validate_profile,
    )
    from repro.runtime import Runtime, RuntimeConfig, SubstitutionPolicy

    tracer = Tracer()
    resolved = _resolve_target(args)
    if resolved is None:
        return 2
    source, filename, name, entry, values = resolved
    compiled = _session(args, tracer=tracer).compile(source, filename=filename)
    policy = SubstitutionPolicy(use_accelerators=not args.cpu_only)
    config = RuntimeConfig(
        policy=policy,
        scheduler=args.scheduler,
        tracer=tracer,
        batch_size=args.batch_size,
        **_runtime_fusion_kwargs(args),
    )
    outcome = Runtime(compiled, config).run(entry, values)
    report = build_profile(
        tracer,
        ledger=outcome.ledger,
        app=name,
        entry=entry,
        scheduler=args.scheduler,
    )
    problems = validate_profile(report.to_json())
    if problems:
        print("error: profile failed validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as f:
            f.write(report.dumps())
            f.write("\n")
    if args.json:
        print(report.dumps())
    else:
        print(report.render())
    if args.out and not args.json:
        print(f"\nwrote {args.out}")

    if args.baseline:
        try:
            with open(args.baseline) as f:
                baseline = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot load baseline {args.baseline!r}: {exc}",
                file=sys.stderr,
            )
            return 2
        regressions = compare_profiles(
            report.to_json(), baseline, threshold=args.threshold
        )
        if regressions:
            print(
                f"\nREGRESSIONS vs {args.baseline} "
                f"(threshold {args.threshold:.0%}):",
                file=sys.stderr,
            )
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"\nno regressions vs {args.baseline} "
            f"(threshold {args.threshold:.0%})"
        )
    return 0


def _fault_plan_dirs():
    """Candidate directories holding the bundled example fault plans:
    the working tree first, then relative to the installed package."""
    here = os.path.dirname(os.path.abspath(__file__))
    return [
        os.path.join("examples", "fault_plans"),
        os.path.normpath(
            os.path.join(here, "..", "..", "examples", "fault_plans")
        ),
    ]


def _list_fault_plans() -> int:
    """Print every bundled example fault plan with its seed, spec
    summary, and comment, so ``faults --plan`` / ``recover`` users can
    discover them without grepping the tree."""
    from repro.runtime import load_fault_plan

    for directory in _fault_plan_dirs():
        if not os.path.isdir(directory):
            continue
        names = sorted(
            n for n in os.listdir(directory) if n.endswith(".json")
        )
        if not names:
            continue
        print(f"bundled fault plans ({directory}):")
        for fname in names:
            path = os.path.join(directory, fname)
            try:
                plan = load_fault_plan(path)
            except LiquidMetalError as exc:
                print(f"  {fname}: INVALID ({exc})")
                continue
            kinds = ",".join(
                sorted({spec.error for spec in plan.specs})
            )
            print(
                f"  {fname}: seed={plan.seed}, {len(plan)} spec(s), "
                f"kind(s): {kinds}"
            )
            with open(path) as f:
                raw = json.load(f)
            for spec in raw.get("faults", []):
                comment = spec.get("comment")
                if comment:
                    print(f"      {comment}")
        return 0
    print("error: no examples/fault_plans directory found", file=sys.stderr)
    return 2


def _cmd_faults(args) -> int:
    """Run an app under a fault plan and verify graceful degradation:
    the faulted run must produce output identical to a cpu-only run,
    with the recovery visible in the counters."""
    from repro.errors import ProcessCrash
    from repro.obs import Tracer
    from repro.runtime import (
        FaultPlan,
        RetryPolicy,
        Runtime,
        RuntimeConfig,
        SubstitutionPolicy,
        kill_all_devices_plan,
        load_fault_plan,
    )

    if args.list_plans:
        return _list_fault_plans()
    if args.target is None:
        print(
            "error: a target app is required (or use --list-plans)",
            file=sys.stderr,
        )
        return 2
    resolved = _resolve_target(args)
    if resolved is None:
        return 2
    source, filename, name, entry, values = resolved
    if args.plan:
        plan = load_fault_plan(args.plan)
    else:
        plan = kill_all_devices_plan()
    if args.seed is not None:
        plan = FaultPlan(plan.specs, seed=args.seed)

    compiled = _session(args).compile(source, filename=filename)

    # Reference: accelerators disabled — the pure-bytecode answer the
    # degraded run must reproduce exactly.
    reference = Runtime(
        compiled,
        RuntimeConfig(
            policy=SubstitutionPolicy(use_accelerators=False),
            scheduler=args.scheduler,
        ),
    ).run(entry, values)

    tracer = Tracer()
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            scheduler=args.scheduler,
            tracer=tracer,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            batch_size=args.batch_size,
        ),
    )
    try:
        outcome = runtime.run(entry, values)
    except ProcessCrash as crash:
        print(
            f"process crash (simulated) at device consult "
            f"#{crash.call_index}: {crash}",
            file=sys.stderr,
        )
        print(
            "a bare runtime has no journal to recover from — run the "
            "same schedule under `python -m repro recover` to see "
            "crash-consistent restart (docs/RECOVERY.md)",
            file=sys.stderr,
        )
        return 1

    injected = runtime.faults.fired()
    demotions = len(runtime.demotion_log)
    counters = tracer.counters.snapshot()
    print(f"app: {name}  entry: {entry}")
    print(
        f"plan: {args.plan or '<kill-all-devices>'} "
        f"(seed={plan.seed}, {len(plan)} spec(s))"
    )
    print(
        f"faults injected: {injected}; "
        f"retries: {counters.get('retry.attempt', 0):g}; "
        f"demotions to bytecode: {demotions}"
    )
    resilience = {
        k: v
        for k, v in counters.items()
        if k.startswith(("fault.", "retry.", "demotion."))
    }
    if resilience:
        print("counters:")
        for cname, value in resilience.items():
            print(f"  {value:>12g}  {cname}")
    for record in runtime.demotion_log:
        print(
            f"  demoted {record.task_id} ({record.device}) after "
            f"{record.attempts} attempt(s): {record.error}"
        )

    ok = True
    if outcome.output != reference.output or not _values_equal(
        outcome.value, reference.value
    ):
        print(
            "FAIL: degraded output differs from the cpu-only reference",
            file=sys.stderr,
        )
        ok = False
    else:
        print("output matches the cpu-only reference")
    if demotions < args.require_demotions:
        print(
            f"FAIL: expected >= {args.require_demotions} demotion(s), "
            f"saw {demotions}",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


def _cmd_health(args) -> int:
    """Run an app under a fault plan with circuit-breaker recovery
    enabled and print the device-health report (``repro.health/1``):
    per-span breaker states, every transition stamped with simulated
    time, probe/re-promotion tallies. The degraded run must still
    produce output identical to a cpu-only reference (shadow probes
    keep bytecode authoritative), so the command fails when outputs
    diverge — or when fewer re-promotions happened than
    ``--require-repromotions`` demands."""
    import json

    from repro.obs import Tracer
    from repro.runtime import (
        FaultPlan,
        HealthPolicy,
        RetryPolicy,
        Runtime,
        RuntimeConfig,
        SubstitutionPolicy,
        load_fault_plan,
        render_health_report,
        validate_health_report,
    )

    resolved = _resolve_target(args)
    if resolved is None:
        return 2
    source, filename, name, entry, values = resolved
    plan = load_fault_plan(args.plan) if args.plan else None
    if plan is not None and args.seed is not None:
        plan = FaultPlan(plan.specs, seed=args.seed)

    compiled = _session(args).compile(source, filename=filename)

    # Reference: accelerators disabled — the answer the health-mediated
    # run must reproduce exactly (probes keep bytecode authoritative).
    reference = Runtime(
        compiled,
        RuntimeConfig(
            policy=SubstitutionPolicy(use_accelerators=False),
            scheduler=args.scheduler,
        ),
    ).run(entry, values)

    tracer = Tracer()
    health = HealthPolicy(
        window=args.window,
        failure_threshold=args.failure_threshold,
        cooldown_s=(
            None if args.cooldown_us is None else args.cooldown_us * 1e-6
        ),
        probe_batches=args.probe_batches,
        quarantine_multiplier=args.quarantine,
        max_cooldown_s=args.max_cooldown_us * 1e-6,
    )
    runtime = Runtime(
        compiled,
        RuntimeConfig(
            scheduler=args.scheduler,
            tracer=tracer,
            fault_plan=plan,
            retry=RetryPolicy(max_attempts=args.max_attempts),
            health=health,
            batch_size=args.batch_size,
        ),
    )
    outcome = runtime.run(entry, values)
    report = runtime.health.to_report(
        app=name, entry=entry, scheduler=args.scheduler
    )
    problems = validate_health_report(report)
    if problems:
        print("error: health report failed validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_health_report(report))
        if args.out:
            print(f"\nwrote {args.out}")

    ok = True
    if outcome.output != reference.output or not _values_equal(
        outcome.value, reference.value
    ):
        print(
            "FAIL: output differs from the cpu-only reference",
            file=sys.stderr,
        )
        ok = False
    else:
        # --json consumers pipe stdout straight into a JSON parser;
        # keep the status line off it.
        print(
            "output matches the cpu-only reference",
            file=sys.stderr if args.json else sys.stdout,
        )
    repromotions = report["totals"]["repromotions"]
    if repromotions < args.require_repromotions:
        print(
            f"FAIL: expected >= {args.require_repromotions} "
            f"re-promotion(s), saw {repromotions}",
            file=sys.stderr,
        )
        ok = False
    return 0 if ok else 1


def _values_equal(left, right) -> bool:
    if left is None and right is None:
        return True
    try:
        return bool(left == right)
    except Exception:
        return repr(left) == repr(right)


def _cmd_serve(args) -> int:
    """Run the deterministic multi-tenant service driver: N tenants
    (weights cycling 1,2,3) submit jobs concurrently through the
    long-lived co-execution service — admission control, device-pool
    leasing, shared breakers — then the service drains and prints the
    ``repro.service/1`` report. With ``--verify`` every job is
    compared bit-identically against a standalone fault-free run."""
    import json

    from repro.runtime import load_fault_plan
    from repro.service import (
        render_service_report,
        run_service_driver,
        validate_service_report,
    )

    plan = load_fault_plan(args.plan) if args.plan else None
    report = run_service_driver(
        tenants=args.tenants,
        jobs_per_tenant=args.jobs_per_tenant,
        gpu_slots=args.gpu_slots,
        fpga_slots=args.fpga_slots,
        max_running=args.max_running,
        max_queue_depth=args.max_queue_depth,
        scheduler=args.scheduler,
        fault_plan=plan,
        verify=args.verify,
    )
    problems = validate_service_report(report)
    if problems:
        print("error: service report failed validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_service_report(report))
        if args.verify:
            driver = report.get("driver", {})
            print(
                "verify: {n} job(s) bit-identical to standalone runs "
                "({t})".format(
                    n=driver.get("verified_jobs", 0),
                    t=(
                        "output, value, simulated seconds"
                        if driver.get("timing_checked")
                        else "output and value; timing exempt under "
                        "fault plan"
                    ),
                )
            )
        if args.out:
            print(f"\nwrote {args.out}")
    totals = report.get("totals", {})
    if totals.get("failed", 0):
        print(
            f"FAIL: {totals['failed']} job(s) failed",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_recover(args) -> int:
    """Run the crash/restart recovery driver: submit jobs against a
    journaled service under a seeded crash schedule, crash-and-restart
    in a loop until a pass converges, then verify every job's result
    digest is bit-identical to an uninterrupted baseline and print the
    ``repro.recover/1`` report (docs/RECOVERY.md)."""
    import json
    import tempfile

    from repro.service import (
        render_recover_report,
        run_recovery_driver,
        validate_recover_report,
    )

    def drive(journal_dir):
        return run_recovery_driver(
            journal_dir,
            jobs=args.jobs,
            scheduler=args.scheduler,
            seed=args.seed,
            crash_call=args.crash_call,
            checkpoint_interval=args.checkpoint_interval,
            use_checkpoints=not args.no_checkpoints,
            max_restarts=args.max_restarts,
        )

    if args.journal_dir:
        report = drive(args.journal_dir)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-recover-") as tmp:
            report = drive(os.path.join(tmp, "journal"))
    problems = validate_recover_report(report)
    if problems:
        print("error: recovery report failed validation:", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_recover_report(report))
        if args.out:
            print(f"\nwrote {args.out}")
    driver = report.get("driver", {})
    if driver.get("verified_jobs", 0) != args.jobs:
        print(
            f"FAIL: {driver.get('verified_jobs', 0)}/{args.jobs} "
            "job(s) verified bit-identical",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_fuse(args) -> int:
    """Plan (and apply) task fusion for one app and print or save the
    ``repro.fusion/1`` plan (docs/FUSION.md). With ``--profile`` the
    pass only fuses groups the profile report shows actually offload;
    the rejects are recorded in the plan with their reasons."""
    import os

    from repro.ir.fusion import render_fused_ir

    if os.path.exists(args.target) or args.target.endswith(".lime"):
        with open(args.target) as f:
            source = f.read()
        filename = args.target
    else:
        from repro.apps import SUITE

        if args.target not in SUITE:
            known = ", ".join(sorted(SUITE))
            print(
                f"error: {args.target!r} is neither a file nor a suite "
                f"app (known apps: {known})",
                file=sys.stderr,
            )
            return 2
        spec = SUITE[args.target]
        source, filename = spec.source, f"<{spec.name}.lime>"

    options = _options(args).replace(
        fusion=FusionOptions(
            mode="auto", profile_path=args.profile or ""
        )
    )
    compiled = CompilerSession(options).compile(source, filename=filename)
    plan = compiled.fusion_plan
    if args.out:
        plan.save(args.out)
    if args.json:
        sys.stdout.write(plan.dumps())
    else:
        print(plan.describe())
        if args.ir:
            print()
            print(render_fused_ir(compiled.module, plan))
        if args.out:
            print(f"\nwrote {args.out}")
    return 0


def _cmd_format(args) -> int:
    from repro.lime import parse, pretty

    with open(args.file) as f:
        source = f.read()
    sys.stdout.write(pretty(parse(source, args.file)))
    return 0


def _cmd_markers(args) -> int:
    from repro.ide import annotate_source, exclusion_notes

    compiled = _compiled(args)
    print(annotate_source(compiled))
    print("\nexclusions:")
    print(exclusion_notes(compiled))
    return 0


def _cmd_graphs(args) -> int:
    compiled = _compiled(args)
    if not compiled.task_graphs:
        print("(no task graphs discovered statically)")
        return 0
    for graph in compiled.task_graphs:
        print(f"{graph.graph_id}: {graph.describe()}")
        for stage in graph.stages:
            artifacts = [
                a.device
                for a in compiled.store.for_task(stage.task_id)
            ]
            print(
                f"    {stage.task_id}  "
                f"[{', '.join(artifacts) or 'bytecode'}]"
            )
    return 0


def _cmd_testbench(args) -> int:
    from repro.backends.verilog import generate_testbench

    compiled = _compiled(args)
    artifacts = compiled.store.for_device("fpga")
    if not artifacts:
        print("(no fpga artifacts)", file=sys.stderr)
        return 1
    stimulus = _parse_value(args.inputs)
    for artifact in artifacts:
        bundle = artifact.payload
        raw = [bundle.encode(v) for v in stimulus]
        print(f"// ===== testbench for {artifact.artifact_id} =====")
        print(generate_testbench(bundle, raw))
    return 0


def _cmd_build(args) -> int:
    from repro.backends.repository import save_repository

    compiled = _compiled(args)
    index_path = save_repository(compiled.store, args.output)
    print(
        f"wrote {len(compiled.store)} artifacts to {args.output} "
        f"(index: {index_path})"
    )
    return 0


def _cmd_disas(args) -> int:
    compiled = _compiled(args)
    print(compiled.bytecode_program.disassemble())
    return 0


def _emit(args, device: str) -> int:
    compiled = _compiled(args)
    texts = compiled.artifact_texts(device)
    if not texts:
        print(f"(no {device} artifacts)", file=sys.stderr)
        return 1
    for artifact_id, text in texts.items():
        print(f"// ===== {artifact_id} =====")
        print(text)
        print()
    return 0


def _cmd_harvest(args) -> int:
    """AOT-populate an artifact cache for the app suite (docs/CACHING.md)."""
    import json

    if _cache_options(args) is None:
        print("error: harvest requires --cache-dir", file=sys.stderr)
        return 2
    session = _session(args)
    report = session.harvest(
        apps=args.apps or None,
        verify=not args.no_verify,
        pin=args.pin,
    )
    if args.out:
        with open(args.out, "w") as f:
            json.dump(report, f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"harvested {len(report['apps'])} apps into {report['cache_dir']}")
        header = f"{'app':<22} {'states':<22} {'bytes':>10}"
        if not args.no_verify:
            header += f" {'warm':>5}"
        print(header)
        for name, record in sorted(report["apps"].items()):
            states = ",".join(
                f"{backend}:{info['state']}"
                for backend, info in sorted(record["backends"].items())
            )
            line = f"{name:<22} {states:<22} {record['payload_bytes']:>10}"
            if not args.no_verify:
                line += f" {'yes' if record.get('warm') else 'NO':>5}"
            print(line)
        totals = report["totals"]
        print(
            f"totals: {totals['payload_bytes']} payload bytes, modeled "
            f"cold {totals['modeled_cold_s'] * 1e3:.2f} ms"
            + (
                f", warm {totals['modeled_warm_s'] * 1e3:.2f} ms "
                f"({totals.get('modeled_speedup', 0.0):.0f}x)"
                if not args.no_verify
                else ""
            )
        )
    if not args.no_verify and not report["totals"]["all_warm"]:
        print("error: harvest verify found non-warm apps", file=sys.stderr)
        return 1
    return 0


def _maintenance_cache(args, mode: str):
    from repro.backends.artifacts import ArtifactCache

    return ArtifactCache(CacheOptions(cache_dir=args.cache_dir, mode=mode))


def _cmd_cache_stats(args) -> int:
    import json

    stats = _maintenance_cache(args, "read").stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache: {stats['cache_dir']} ({stats['schema']})")
    print(
        f"  entries: {stats['entry_count']}  total bytes: "
        f"{stats['total_bytes']}  pinned: {len(stats['pinned'])}"
        + (
            f"  max bytes: {stats['max_bytes']}"
            if stats["max_bytes"] is not None
            else ""
        )
    )
    for backend, row in sorted(stats["backends"].items()):
        print(
            f"  {backend:<10} {row['entries']:>4} entries  "
            f"{row['artifacts']:>4} artifacts  {row['bytes']:>10} bytes"
        )
    return 0


def _cmd_cache_purge(args) -> int:
    count = _maintenance_cache(args, "readwrite").purge()
    print(f"purged {count} entries from {args.cache_dir}")
    return 0


def _cmd_cache_verify(args) -> int:
    problems = _maintenance_cache(args, "readwrite").verify(
        delete_corrupt=args.delete_corrupt
    )
    if not problems:
        print("cache verify: all entries intact")
        return 0
    for key, problem in problems:
        print(f"corrupt {key}: {problem}", file=sys.stderr)
    if args.delete_corrupt:
        print(
            f"deleted {len(problems)} corrupt entries "
            "(next compile repopulates them)",
            file=sys.stderr,
        )
    return 1


def _resolve_snapshot(ref, changelog_dir):
    """A snapshot reference is either a JSON file path or a changelog
    index: positive ``N`` matches the ``seq`` field, negative counts
    from the end of the series (``-1`` = latest)."""
    from repro.obs.trajectory import changelog_entries

    if os.path.isfile(ref):
        with open(ref) as fh:
            return ref, json.load(fh)
    try:
        index = int(ref)
    except ValueError:
        raise FileNotFoundError(
            f"snapshot {ref!r}: not a file and not a changelog index"
        )
    entries = changelog_entries(changelog_dir)
    if not entries:
        raise FileNotFoundError(
            f"no snapshots under {changelog_dir!r} to resolve {ref!r}"
        )
    if index < 0:
        if -index > len(entries):
            raise FileNotFoundError(
                f"changelog index {ref}: only {len(entries)} snapshot(s)"
            )
        return entries[index]
    for path, payload in entries:
        if payload.get("seq") == index:
            return path, payload
    raise FileNotFoundError(
        f"changelog index {ref}: no snapshot with seq={index} "
        f"under {changelog_dir!r}"
    )


def _cmd_bench_collect(args) -> int:
    from repro.obs.trajectory import (
        collect_snapshot,
        save_snapshot,
        validate_trajectory,
    )

    snapshot = collect_snapshot(
        args.bench_dir,
        label=args.label,
        run_profiles=not args.no_profiles,
    )
    problems = validate_trajectory(snapshot)
    if problems:
        for problem in problems:
            print(f"invalid snapshot: {problem}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        path = args.out
    else:
        path = save_snapshot(snapshot, args.changelog_dir)
    benches = snapshot["benches"]
    n_metrics = sum(len(b["metrics"]) for b in benches.values())
    print(
        f"collected {len(benches)} bench report(s), {n_metrics} "
        f"metric(s), {len(snapshot['profiles'])} profile(s) "
        f"-> {path}"
    )
    return 0


def _cmd_bench_diff(args) -> int:
    from repro.obs.trajectory import diff_snapshots, render_diff

    _, baseline = _resolve_snapshot(args.baseline, args.changelog_dir)
    _, current = _resolve_snapshot(args.current, args.changelog_dir)
    diff = diff_snapshots(baseline, current, threshold_pct=args.threshold)
    if args.json:
        print(json.dumps(diff, indent=2, sort_keys=True))
    else:
        print(render_diff(diff, show_within=args.show_within))
    return 0


def _cmd_bench_trend(args) -> int:
    from repro.obs.trajectory import (
        changelog_entries,
        collect_snapshot,
        render_trend,
        trend_report,
    )

    snapshots = [payload for _, payload in
                 changelog_entries(args.changelog_dir)]
    if not args.committed_only:
        try:
            snapshots.append(
                collect_snapshot(
                    args.bench_dir,
                    label="(working tree)",
                    run_profiles=False,
                    seq=len(snapshots) + 1,
                )
            )
        except FileNotFoundError:
            pass
    if not snapshots:
        print(
            f"no snapshots under {args.changelog_dir!r} and no bench "
            f"reports under {args.bench_dir!r}; run the benchmark "
            "suite, then `python -m repro bench collect`",
            file=sys.stderr,
        )
        return 1
    report = trend_report(snapshots)
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_trend(report, metric_filter=args.metric))
    return 0


def _cmd_bench_gate(args) -> int:
    from repro.obs.trajectory import (
        add_waivers,
        changelog_entries,
        gate_snapshots,
    )

    if args.bless and not args.reason:
        print(
            "bench gate --bless requires --reason (the annotation is "
            "the point)",
            file=sys.stderr,
        )
        return 1
    if bool(args.baseline) != bool(args.current):
        print(
            "bench gate: give both --baseline and --current, or "
            "neither (default: the last two changelog snapshots)",
            file=sys.stderr,
        )
        return 1
    if args.baseline and args.current:
        _, baseline = _resolve_snapshot(args.baseline, args.changelog_dir)
        cur_path, current = _resolve_snapshot(
            args.current, args.changelog_dir
        )
    else:
        entries = changelog_entries(args.changelog_dir)
        if len(entries) < 2:
            print(
                f"bench gate: {len(entries)} snapshot(s) under "
                f"{args.changelog_dir!r}; need two for a comparison "
                "-- skipping (collect more history first)"
            )
            return 0
        (_, baseline), (cur_path, current) = entries[-2], entries[-1]
    result = gate_snapshots(
        current, baseline, threshold_pct=args.threshold
    )
    if args.bless and result["regressions"]:
        metrics = [m.split(":", 1)[0] for m in result["regressions"]]
        add_waivers(cur_path, metrics, args.reason or "")
        _, current = _resolve_snapshot(cur_path, args.changelog_dir)
        result = gate_snapshots(
            current, baseline, threshold_pct=args.threshold
        )
        print(
            f"blessed {len(metrics)} regression(s) into {cur_path}: "
            f"{args.reason}"
        )
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(
            f"bench gate: {result['baseline']} -> {result['current']}, "
            f"{result['checked']} modeled metric(s) checked at "
            f"{result['threshold_pct']:g}%"
        )
        for line in result["waived"]:
            print(f"  ~ {line}")
        for line in result["regressions"]:
            print(f"  ✗ {line}", file=sys.stderr)
    if result["regressions"]:
        print(
            f"bench gate: FAILED ({len(result['regressions'])} "
            "regression(s); see docs/TRAJECTORY.md for how to bless "
            "an intentional one)",
            file=sys.stderr,
        )
        return 1
    print("bench gate: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Liquid Metal compiler and runtime (DAC 2012 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def cache_flags(p):
        p.add_argument(
            "--cache-dir",
            help="content-addressed artifact cache directory; warm-starts "
            "backend compilation (docs/CACHING.md)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="ignore --cache-dir and compile cold",
        )
        p.add_argument(
            "--cache-mode",
            choices=("read", "readwrite"),
            default=None,
            help="read = consume hits without writing misses back "
            "(default: readwrite)",
        )
        p.add_argument(
            "--cache-max-bytes",
            type=int,
            default=None,
            help="LRU-evict unpinned entries beyond this payload size",
        )

    def common(p):
        p.add_argument("file", help="Lime source file")
        p.add_argument("--no-gpu", action="store_true")
        p.add_argument("--no-fpga", action="store_true")
        p.add_argument("--fpga-pipelined", action="store_true")
        cache_flags(p)

    def batch_size_option(p):
        p.add_argument(
            "--batch-size",
            type=int,
            default=4096,
            help="FIFO elements marshaled per host/device crossing "
            "(1 = per-element slow path; see docs/PERFORMANCE.md)",
        )

    def fusion_flags(p):
        p.add_argument(
            "--fusion",
            default=None,
            metavar="{off,auto,plan=FILE}",
            help="task fusion: off = honest unfused baseline (every "
            "stage crosses the boundary alone), auto = fuse every "
            "legal group, plan=FILE = replay a saved repro.fusion/1 "
            "plan (docs/FUSION.md); default keeps historical behavior",
        )
        p.add_argument(
            "--specialize-after",
            type=int,
            default=None,
            metavar="N",
            help="recompile a shape/constant-specialized kernel "
            "variant after N consecutive stable batches "
            "(docs/FUSION.md); off by default",
        )

    p = sub.add_parser("compile", help="compile and print the report")
    common(p)
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("run", help="compile and run an entry point")
    common(p)
    p.add_argument("entry", help="qualified entry, e.g. Bitflip.taskFlip")
    p.add_argument("args", nargs="*", help="argument literals")
    p.add_argument("--cpu-only", action="store_true")
    p.add_argument("--time", action="store_true", help="print simulated time")
    p.add_argument(
        "--profile",
        action="store_true",
        help="print the per-method cycle profile",
    )
    batch_size_option(p)
    fusion_flags(p)
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="run one app under tracing and export Chrome trace JSON",
    )
    p.add_argument(
        "target",
        help="suite app name (e.g. mandelbrot) or a Lime source file",
    )
    p.add_argument(
        "--entry",
        help="qualified entry point (required for .lime files; "
        "overrides the suite default workload)",
    )
    p.add_argument("args", nargs="*", help="argument literals for --entry")
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    p.add_argument("--cpu-only", action="store_true")
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="threaded",
    )
    p.add_argument(
        "-o",
        "--out",
        help="Chrome trace output path (default: <app>.trace.json)",
    )
    p.add_argument("--jsonl", help="also write a JSON-lines trace here")
    p.add_argument(
        "--tree",
        action="store_true",
        help="print the span tree to stdout as well",
    )
    cache_flags(p)
    batch_size_option(p)
    fusion_flags(p)
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run one app under tracing and print a structured "
        "profile report (utilization, queues, critical path)",
    )
    p.add_argument(
        "target",
        help="suite app name (e.g. mandelbrot) or a Lime source file",
    )
    p.add_argument(
        "--entry",
        help="qualified entry point (required for .lime files; "
        "overrides the suite default workload)",
    )
    p.add_argument("args", nargs="*", help="argument literals for --entry")
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    p.add_argument("--cpu-only", action="store_true")
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="threaded",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    p.add_argument(
        "-o",
        "--out",
        help="also write the JSON report to this path",
    )
    p.add_argument(
        "--baseline",
        help="baseline profile JSON to compare against; exits non-zero "
        "when a deterministic metric regresses beyond --threshold",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="regression threshold for --baseline (default 0.10 = 10%%)",
    )
    cache_flags(p)
    batch_size_option(p)
    fusion_flags(p)
    p.set_defaults(fn=_cmd_profile)

    p = sub.add_parser(
        "faults",
        help="run an app under a fault plan and verify graceful "
        "degradation to bytecode",
    )
    p.add_argument(
        "target",
        nargs="?",
        help="suite app name (e.g. mandelbrot) or a Lime source file",
    )
    p.add_argument(
        "--list-plans",
        action="store_true",
        help="list the bundled example fault plans "
        "(examples/fault_plans/*.json) and exit",
    )
    p.add_argument(
        "--entry",
        help="qualified entry point (required for .lime files; "
        "overrides the suite default workload)",
    )
    p.add_argument("args", nargs="*", help="argument literals for --entry")
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    p.add_argument(
        "--plan",
        help="fault plan JSON file (default: kill every device call)",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the plan's RNG seed"
    )
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="threaded",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=2,
        help="retry attempts per device call before demotion",
    )
    p.add_argument(
        "--require-demotions",
        type=int,
        default=0,
        help="fail unless at least this many demotions were recorded",
    )
    cache_flags(p)
    batch_size_option(p)
    p.set_defaults(fn=_cmd_faults)

    p = sub.add_parser(
        "health",
        help="run an app with circuit-breaker recovery enabled and "
        "print the device-health report (breaker transitions, shadow "
        "probes, re-promotions)",
    )
    p.add_argument(
        "target",
        help="suite app name (e.g. gray_pipeline) or a Lime source file",
    )
    p.add_argument(
        "--entry",
        help="qualified entry point (required for .lime files; "
        "overrides the suite default workload)",
    )
    p.add_argument("args", nargs="*", help="argument literals for --entry")
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    p.add_argument(
        "--plan",
        help="fault plan JSON file (default: no faults — breakers "
        "stay CLOSED)",
    )
    p.add_argument(
        "--seed", type=int, default=None, help="override the plan's RNG seed"
    )
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="threaded",
    )
    p.add_argument(
        "--max-attempts",
        type=int,
        default=1,
        help="retry attempts per device call before the failure is "
        "reported to the breaker",
    )
    p.add_argument(
        "--window",
        type=int,
        default=8,
        help="sliding outcome window per breaker",
    )
    p.add_argument(
        "--failure-threshold",
        type=int,
        default=1,
        help="failures within the window that open the breaker",
    )
    p.add_argument(
        "--cooldown-us",
        type=float,
        default=1.0,
        help="simulated microseconds a breaker stays OPEN before "
        "HALF_OPEN probing (omit recovery entirely with the plain "
        "`faults` command)",
    )
    p.add_argument(
        "--probe-batches",
        type=int,
        default=2,
        help="consecutive clean shadow probes required to re-close",
    )
    p.add_argument(
        "--quarantine",
        type=float,
        default=2.0,
        help="cool-down multiplier per successive trip (hysteresis)",
    )
    p.add_argument(
        "--max-cooldown-us",
        type=float,
        default=1e6,
        help="cap on the escalated cool-down (simulated microseconds)",
    )
    p.add_argument(
        "--require-repromotions",
        type=int,
        default=0,
        help="fail unless at least this many re-promotions happened",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    p.add_argument(
        "-o",
        "--out",
        help="also write the JSON report to this path",
    )
    cache_flags(p)
    batch_size_option(p)
    p.set_defaults(fn=_cmd_health)

    p = sub.add_parser(
        "serve",
        help="drive the long-lived co-execution service: multi-tenant "
        "admission control, device-pool leasing, graceful "
        "cancellation; prints the repro.service/1 report",
    )
    p.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="simulated tenants (weights cycle 1,2,3)",
    )
    p.add_argument(
        "--jobs-per-tenant",
        type=int,
        default=8,
        help="jobs each tenant submits",
    )
    p.add_argument(
        "--gpu-slots",
        type=int,
        default=2,
        help="simulated GPU slots in the shared device pool",
    )
    p.add_argument(
        "--fpga-slots",
        type=int,
        default=1,
        help="simulated FPGA slots in the shared device pool",
    )
    p.add_argument(
        "--max-running",
        type=int,
        default=4,
        help="jobs executing concurrently (beyond this they queue)",
    )
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=8,
        help="per-tenant queued-job bound; over it submissions are "
        "rejected with a retry-after hint",
    )
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="sequential",
    )
    p.add_argument(
        "--plan",
        help="fault plan JSON file applied to every job's runtime",
    )
    p.add_argument(
        "--verify",
        action="store_true",
        help="compare every job against a standalone fault-free run "
        "(bit-identical output/value; simulated seconds too when no "
        "fault plan)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    p.add_argument(
        "-o",
        "--out",
        help="also write the JSON report to this path",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "recover",
        help="crash/restart the journaled co-execution service under "
        "a seeded crash schedule until recovery converges; prints the "
        "repro.recover/1 report",
    )
    p.add_argument(
        "--journal-dir",
        help="journal directory (persists across the simulated "
        "crashes; default: a fresh temporary directory)",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=6,
        help="jobs submitted before the first crash",
    )
    p.add_argument(
        "--scheduler",
        choices=("threaded", "sequential"),
        default="sequential",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=1,
        help="crash-schedule RNG seed",
    )
    p.add_argument(
        "--crash-call",
        type=int,
        default=3,
        help="device consult index at which each job's crash fires",
    )
    p.add_argument(
        "--checkpoint-interval",
        type=int,
        default=2,
        help="decision points between checkpoint frames",
    )
    p.add_argument(
        "--no-checkpoints",
        action="store_true",
        help="recover from the journal only (every resume from "
        "scratch)",
    )
    p.add_argument(
        "--max-restarts",
        type=int,
        default=32,
        help="give up if recovery has not converged after this many "
        "restarts",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    p.add_argument(
        "-o",
        "--out",
        help="also write the JSON report to this path",
    )
    p.set_defaults(fn=_cmd_recover)

    p = sub.add_parser(
        "harvest",
        help="AOT-compile the app suite into an artifact cache and "
        "verify warm starts (docs/CACHING.md)",
    )
    p.add_argument(
        "apps",
        nargs="*",
        help="suite app names (default: every app in repro.apps.SUITE)",
    )
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    cache_flags(p)
    p.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the second compile pass that proves warm starts",
    )
    p.add_argument(
        "--pin",
        action="store_true",
        help="pin every harvested entry against LRU eviction",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable repro.harvest/1 report",
    )
    p.add_argument("-o", "--out", help="also write the JSON report here")
    p.set_defaults(fn=_cmd_harvest)

    p = sub.add_parser(
        "cache",
        help="inspect and maintain an artifact cache "
        "(stats / purge / verify)",
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    cp = cache_sub.add_parser("stats", help="summarize cache contents")
    cp.add_argument("--cache-dir", required=True)
    cp.add_argument("--json", action="store_true")
    cp.set_defaults(fn=_cmd_cache_stats)
    cp = cache_sub.add_parser("purge", help="drop every entry")
    cp.add_argument("--cache-dir", required=True)
    cp.set_defaults(fn=_cmd_cache_purge)
    cp = cache_sub.add_parser(
        "verify", help="integrity-check every entry's hashes"
    )
    cp.add_argument("--cache-dir", required=True)
    cp.add_argument(
        "--delete-corrupt",
        action="store_true",
        help="drop failing entries so the next compile repopulates them",
    )
    cp.set_defaults(fn=_cmd_cache_verify)

    p = sub.add_parser(
        "bench",
        help="performance trajectory: collect/diff/trend/gate per-PR "
        "bench changelogs (docs/TRAJECTORY.md)",
    )
    bench_sub = p.add_subparsers(dest="bench_command", required=True)

    def bench_dirs(bp):
        bp.add_argument(
            "--bench-dir",
            default="benchmarks/out",
            help="directory holding the BENCH_*.json reports",
        )
        bp.add_argument(
            "--changelog-dir",
            default="benchmarks/changelogs",
            help="the per-PR snapshot series (repro.trajectory/1)",
        )

    bp = bench_sub.add_parser(
        "collect",
        help="aggregate BENCH_*.json + profile runs into one "
        "repro.trajectory/1 snapshot appended to the changelog",
    )
    bench_dirs(bp)
    bp.add_argument("--label", default="", help="human tag, e.g. 'PR 9'")
    bp.add_argument(
        "--no-profiles",
        action="store_true",
        help="skip the deterministic critical-path profile runs",
    )
    bp.add_argument("--json", action="store_true")
    bp.add_argument(
        "-o", "--out",
        help="write the snapshot here instead of into the changelog",
    )
    bp.set_defaults(fn=_cmd_bench_collect)

    bp = bench_sub.add_parser(
        "diff",
        help="per-metric delta between two snapshots, direction-aware",
    )
    bench_dirs(bp)
    bp.add_argument(
        "baseline", help="snapshot path, or changelog seq (-1 = latest)"
    )
    bp.add_argument(
        "current", help="snapshot path, or changelog seq (-1 = latest)"
    )
    bp.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="percent band treated as noise (default 10)",
    )
    bp.add_argument(
        "--show-within",
        action="store_true",
        help="also list metrics inside the threshold band",
    )
    bp.add_argument("--json", action="store_true")
    bp.set_defaults(fn=_cmd_bench_diff)

    bp = bench_sub.add_parser(
        "trend",
        help="whole-changelog series per metric, sparkline history "
        "(includes an uncommitted working-tree point when bench "
        "reports exist)",
    )
    bench_dirs(bp)
    bp.add_argument(
        "--committed-only",
        action="store_true",
        help="plot only committed changelog snapshots",
    )
    bp.add_argument(
        "--metric", default="", help="substring filter on metric names"
    )
    bp.add_argument("--json", action="store_true")
    bp.add_argument("-o", "--out", help="save the JSON report here")
    bp.set_defaults(fn=_cmd_bench_trend)

    bp = bench_sub.add_parser(
        "gate",
        help="CI regression gate: nonzero exit when a modeled metric "
        "regresses beyond the threshold (waivers via --bless)",
    )
    bench_dirs(bp)
    bp.add_argument(
        "--baseline",
        help="snapshot path or changelog seq (default: second-latest)",
    )
    bp.add_argument(
        "--current",
        help="snapshot path or changelog seq (default: latest)",
    )
    bp.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        help="max tolerated regression, percent (default 10)",
    )
    bp.add_argument(
        "--bless",
        action="store_true",
        help="record an annotated waiver for each current regression "
        "into the current snapshot (requires --reason)",
    )
    bp.add_argument(
        "--reason", help="why the blessed regression is intentional"
    )
    bp.add_argument("--json", action="store_true")
    bp.set_defaults(fn=_cmd_bench_gate)

    p = sub.add_parser(
        "fuse",
        help="plan task fusion for an app and print/save the "
        "repro.fusion/1 plan (docs/FUSION.md)",
    )
    p.add_argument(
        "target",
        help="suite app name (e.g. gray_pipeline) or a Lime source file",
    )
    p.add_argument("--no-gpu", action="store_true")
    p.add_argument("--no-fpga", action="store_true")
    p.add_argument("--fpga-pipelined", action="store_true")
    p.add_argument(
        "--profile",
        help="profile report JSON (python -m repro profile -o ...); "
        "only groups the report shows offloading are fused, the rest "
        "are recorded as rejected with reasons",
    )
    p.add_argument(
        "--ir",
        action="store_true",
        help="also print the canonical fused-IR rendering",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable plan instead of text",
    )
    p.add_argument("-o", "--out", help="save the plan JSON here")
    cache_flags(p)
    p.set_defaults(fn=_cmd_fuse)

    p = sub.add_parser("format", help="pretty-print (normalize) a source file")
    common(p)
    p.set_defaults(fn=_cmd_format)

    p = sub.add_parser("markers", help="IDE-style per-line artifact markers")
    common(p)
    p.set_defaults(fn=_cmd_markers)

    p = sub.add_parser("graphs", help="list discovered task graphs")
    common(p)
    p.set_defaults(fn=_cmd_graphs)

    p = sub.add_parser("disas", help="disassemble the bytecode artifact")
    common(p)
    p.set_defaults(fn=_cmd_disas)

    p = sub.add_parser("emit-opencl", help="print generated OpenCL C")
    common(p)
    p.set_defaults(fn=lambda a: _emit(a, "gpu"))

    p = sub.add_parser("emit-verilog", help="print generated Verilog")
    common(p)
    p.set_defaults(fn=lambda a: _emit(a, "fpga"))

    p = sub.add_parser(
        "build", help="compile and write an on-disk artifact repository"
    )
    common(p)
    p.add_argument("-o", "--output", required=True, help="repository dir")
    p.set_defaults(fn=_cmd_build)

    p = sub.add_parser(
        "emit-testbench",
        help="print a self-checking Verilog testbench for each FPGA module",
    )
    common(p)
    p.add_argument(
        "--inputs",
        default="ints:1,2,3",
        help="stimulus literal, e.g. ints:1,2,3 or bits:1,0,1",
    )
    p.set_defaults(fn=_cmd_testbench)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except LiquidMetalError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
