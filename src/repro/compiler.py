"""The Liquid Metal compiler driver (Figure 2).

``compile_program`` accepts Lime source and produces a collection of
artifacts for different architectures: the frontend type-checks,
performs shallow optimizations and emits bytecode for the *entire*
program; the backend device compilers (OpenCL for GPUs, Verilog for
FPGAs) each compile the task sub-graphs they support. The result feeds
the runtime's artifact store for task substitution.

``compile_report`` renders the textual equivalent of the toolchain
overview — which tasks got which artifacts and why others were
excluded (the information the Eclipse IDE plugin surfaces as editor
markers in Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.bytecode.compiler import compile_module, make_cpu_artifact
from repro.backends.common import Artifact, ArtifactStore
from repro.backends.opencl.compiler import compile_gpu
from repro.backends.verilog.compiler import compile_fpga
from repro.ir import build_ir
from repro.lime import analyze


@dataclass
class CompileResult:
    """Everything the compilation produced."""

    source: str
    checked: object           # CheckedProgram
    module: object            # IRModule
    bytecode_artifact: Artifact
    store: ArtifactStore
    gpu_backend: object = None
    fpga_backend: object = None
    options: dict = field(default_factory=dict)

    @property
    def bytecode_program(self):
        return self.bytecode_artifact.payload

    @property
    def task_graphs(self) -> list:
        return self.module.task_graphs

    def artifact_texts(self, device: str) -> dict:
        """Generated source text per artifact id for one device."""
        return {
            a.artifact_id: a.text
            for a in self.store.for_device(device)
            if a.text
        }


def compile_program(
    source: str,
    filename: str = "<lime>",
    enable_gpu: bool = True,
    enable_fpga: bool = True,
    fpga_pipelined: bool = False,
    fpga_max_stage_depth: "int | None" = None,
    run_optimizations: bool = True,
) -> CompileResult:
    """Run the whole toolchain over Lime source text."""
    checked = analyze(source, filename)
    module = build_ir(checked, run_optimizations=run_optimizations)
    store = ArtifactStore()
    cpu_artifact = make_cpu_artifact(module)
    store.add(cpu_artifact)
    gpu_backend = None
    fpga_backend = None
    if enable_gpu:
        gpu_backend = compile_gpu(module)
        for artifact in gpu_backend.artifacts:
            store.add(artifact)
        for exclusion in gpu_backend.exclusions:
            store.add_exclusion(exclusion)
    if enable_fpga:
        fpga_backend = compile_fpga(
            module,
            pipelined=fpga_pipelined,
            max_stage_depth=fpga_max_stage_depth,
        )
        for artifact in fpga_backend.artifacts:
            store.add(artifact)
        for exclusion in fpga_backend.exclusions:
            store.add_exclusion(exclusion)
    return CompileResult(
        source=source,
        checked=checked,
        module=module,
        bytecode_artifact=cpu_artifact,
        store=store,
        gpu_backend=gpu_backend,
        fpga_backend=fpga_backend,
        options={
            "enable_gpu": enable_gpu,
            "enable_fpga": enable_fpga,
            "fpga_pipelined": fpga_pipelined,
            "fpga_max_stage_depth": fpga_max_stage_depth,
        },
    )


def compile_report(result: CompileResult) -> str:
    """Human-readable toolchain summary (Experiment E2)."""
    lines = ["Liquid Metal compilation report", "=" * 34, ""]
    lines.append("task graphs:")
    if not result.task_graphs:
        lines.append("  (none discovered statically)")
    for graph in result.task_graphs:
        lines.append(f"  {graph.graph_id}: {graph.describe()}")
    lines.append("")
    lines.append("artifacts:")
    for artifact in result.store.all():
        manifest = artifact.manifest
        tasks = ", ".join(manifest.task_ids) or "(whole program)"
        lines.append(
            f"  [{manifest.device:8s}] {manifest.artifact_id}"
        )
        lines.append(f"             implements: {tasks}")
    lines.append("")
    lines.append("exclusions:")
    if not result.store.exclusions:
        lines.append("  (none)")
    for exclusion in result.store.exclusions:
        lines.append(
            f"  [{exclusion.device:8s}] {exclusion.task_id}: "
            f"{exclusion.reason}"
        )
    return "\n".join(lines)
