"""The Liquid Metal compiler driver (Figure 2).

The public entry point is :class:`CompilerSession`: it owns the
compilation knobs (:class:`CompileOptions`), the observability handle
(the options' tracer and its metrics registry), and — when enabled —
the content-addressed artifact cache
(:class:`repro.backends.artifacts.ArtifactCache`), so repeated
compilations of the same program warm-start from cached artifacts
instead of re-running backend codegen (docs/CACHING.md)::

    session = CompilerSession(CompileOptions(cache=CacheOptions(
        cache_dir=".repro-cache", mode="readwrite")))
    result = session.compile(lime_source)

``compile_program`` remains as a thin deprecated shim over
``CompilerSession.compile`` (the PR 1 deprecation-shim pattern: the
one-line form keeps working, new code should hold a session). The
legacy keyword form (``compile_program(source, enable_gpu=False)``)
still works through the same shim and emits ``DeprecationWarning``.

A compilation runs the frontend (type-check), shallow optimizations,
and bytecode emission for the *entire* program; the backend device
compilers (OpenCL for GPUs, Verilog for FPGAs) each compile the task
sub-graphs they support. The result feeds the runtime's artifact store
for task substitution.

``compile_report`` renders the textual equivalent of the toolchain
overview — which tasks got which artifacts and why others were
excluded (the information the Eclipse IDE plugin surfaces as editor
markers in Figure 4). Pass ``trace=`` to append the recorded span
tree of the compilation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import warnings
from dataclasses import dataclass, field

from repro.backends.artifacts import (
    ArtifactCache,
    CacheOptions,
    cache_key,
    modeled_compile_s,
)
from repro.backends.bytecode.compiler import compile_module, make_cpu_artifact
from repro.backends.common import Artifact, ArtifactStore, Manifest
from repro.backends.opencl.compiler import compile_gpu
from repro.backends.verilog.compiler import compile_fpga
from repro.ir import build_ir
from repro.ir.fusion import FusionOptions, fuse_module
from repro.lime import analyze
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class CompileOptions:
    """Immutable compilation knobs.

    Frozen so one options object can be shared between cached
    compilations and threads; derive variants with :meth:`replace`.
    ``tracer`` threads a :class:`repro.obs.Tracer` through the driver
    and all three backends (``compile.*`` spans); the default null
    tracer records nothing and costs nothing. ``cache`` is the
    validated artifact-cache sub-options block
    (:class:`repro.backends.artifacts.CacheOptions`); the default is
    ``mode='off'`` — no cache I/O at all.
    """

    enable_gpu: bool = True
    enable_fpga: bool = True
    fpga_pipelined: bool = False
    fpga_max_stage_depth: "int | None" = None
    run_optimizations: bool = True
    tracer: object = NULL_TRACER
    cache: CacheOptions = field(default_factory=CacheOptions)
    #: Task-fusion sub-options (docs/FUSION.md); default mode='off'
    #: leaves the IR exactly as before. Not part of any backend's
    #: cache-key slice — fused IR changes keys via its fingerprint.
    fusion: FusionOptions = field(default_factory=FusionOptions)

    def replace(self, **overrides) -> "CompileOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **overrides)

    def legacy_dict(self) -> dict:
        """The pre-redesign ``CompileResult.options`` dict."""
        return {
            "enable_gpu": self.enable_gpu,
            "enable_fpga": self.enable_fpga,
            "fpga_pipelined": self.fpga_pipelined,
            "fpga_max_stage_depth": self.fpga_max_stage_depth,
        }


#: Keyword names accepted by the deprecation shim.
_LEGACY_OPTION_NAMES = (
    "enable_gpu",
    "enable_fpga",
    "fpga_pipelined",
    "fpga_max_stage_depth",
    "run_optimizations",
)


@dataclass
class CachedBackend:
    """Stands in for a backend compiler object on a warm start.

    A cache hit never constructs the real backend (that is the point),
    but downstream consumers still want ``.artifacts``/``.exclusions``
    — this stub carries them plus the cache entry it came from.
    """

    backend: str
    artifacts: list
    exclusions: list
    entry: object = None

    @property
    def cached(self) -> bool:
        return True


@dataclass
class CompileResult:
    """Everything the compilation produced."""

    source: str
    checked: object           # CheckedProgram
    module: object            # IRModule
    bytecode_artifact: Artifact
    store: ArtifactStore
    gpu_backend: object = None
    fpga_backend: object = None
    options: dict = field(default_factory=dict)
    compile_options: "CompileOptions | None" = None
    #: Per-backend cache outcome: backend id -> {state: off|hit|miss,
    #: modeled_s, key?, payload_bytes?} (docs/CACHING.md).
    cache_info: dict = field(default_factory=dict)
    #: The applied repro.fusion/1 plan, or None when fusion was off
    #: (docs/FUSION.md).
    fusion_plan: object = None

    @property
    def bytecode_program(self):
        return self.bytecode_artifact.payload

    @property
    def task_graphs(self) -> list:
        return self.module.task_graphs

    @property
    def tracer(self):
        """The tracer the compilation recorded into (null when
        tracing was disabled)."""
        if self.compile_options is None:
            return NULL_TRACER
        return self.compile_options.tracer

    @property
    def warm(self) -> bool:
        """True when every enabled backend loaded from the cache."""
        return bool(self.cache_info) and all(
            info["state"] == "hit" for info in self.cache_info.values()
        )

    @property
    def modeled_compile_s(self) -> float:
        """Modeled seconds the backend compile path cost: codegen
        seconds for cold/off backends, load seconds for warm ones."""
        return sum(
            info.get("modeled_s", 0.0) for info in self.cache_info.values()
        )

    def artifact_texts(self, device: str) -> dict:
        """Generated source text per artifact id for one device."""
        return {
            a.artifact_id: a.text
            for a in self.store.for_device(device)
            if a.text
        }


def _resolve_options(options, legacy_kwargs) -> CompileOptions:
    """Fold legacy kwargs onto a CompileOptions, warning once."""
    if legacy_kwargs:
        unknown = set(legacy_kwargs) - set(_LEGACY_OPTION_NAMES)
        if unknown:
            raise TypeError(
                "compile_program() got unexpected keyword arguments: "
                + ", ".join(sorted(unknown))
            )
        warnings.warn(
            "passing compilation flags as keyword arguments "
            f"({', '.join(sorted(legacy_kwargs))}) is deprecated; use "
            "compile_program(source, options=CompileOptions(...))",
            DeprecationWarning,
            stacklevel=3,
        )
        return (options or CompileOptions()).replace(**legacy_kwargs)
    return options or CompileOptions()


class CompilerSession:
    """The toolchain entry point: options + cache + observability.

    A session holds everything a sequence of compilations shares — the
    frozen :class:`CompileOptions`, the
    :class:`~repro.backends.artifacts.ArtifactCache` handle (when
    ``options.cache`` enables one), and the obs registry (the options'
    tracer and its metrics/counters). ``compile`` runs the frontend and
    IR lowering, then resolves each enabled backend *through the
    cache*: a hit loads verified artifacts without invoking backend
    codegen at all; a miss compiles and (in ``readwrite`` mode) writes
    the entry back. ``harvest`` pre-populates the cache for the whole
    application suite ahead of time (AOT harvesting).
    """

    def __init__(self, options: "CompileOptions | None" = None, cache=None):
        self.options = options or CompileOptions()
        self.tracer = self.options.tracer
        if cache is not None:
            self.cache = cache
        elif self.options.cache.enabled:
            self.cache = ArtifactCache(self.options.cache)
        else:
            self.cache = None
        # In-memory memo for compile_cached: source digest -> result.
        # One lock serializes compilation across service job threads so
        # N concurrent submissions of one app compile it once and share
        # the (read-only) CompileResult.
        self._memo_lock = threading.Lock()
        self._memo: dict = {}

    @property
    def counters(self):
        return self.tracer.counters

    @property
    def metrics(self):
        """The session's metrics registry (null when tracing is off)."""
        from repro.obs.metrics import NULL_METRICS

        return getattr(self.tracer, "metrics", NULL_METRICS)

    # -- backend resolution ---------------------------------------------

    def _compile_backend(self, backend_id: str, module, tracer):
        """Cold path: run one backend compiler, with its usual span."""
        if backend_id == "bytecode":
            with tracer.span("compile.backend.bytecode") as bc_span:
                cpu_artifact = make_cpu_artifact(module)
                bc_span.set(
                    functions=len(cpu_artifact.payload.functions),
                    artifact_id=cpu_artifact.artifact_id,
                )
            return [cpu_artifact], [], None
        if backend_id == "opencl":
            with tracer.span("compile.backend.opencl") as gpu_span:
                backend = compile_gpu(module, tracer=tracer)
                gpu_span.set(
                    artifacts=len(backend.artifacts),
                    exclusions=len(backend.exclusions),
                )
            return list(backend.artifacts), list(backend.exclusions), backend
        if backend_id == "verilog":
            with tracer.span(
                "compile.backend.verilog",
                pipelined=self.options.fpga_pipelined,
            ) as fpga_span:
                backend = compile_fpga(
                    module,
                    pipelined=self.options.fpga_pipelined,
                    max_stage_depth=self.options.fpga_max_stage_depth,
                    tracer=tracer,
                )
                fpga_span.set(
                    artifacts=len(backend.artifacts),
                    exclusions=len(backend.exclusions),
                )
            return list(backend.artifacts), list(backend.exclusions), backend
        raise ValueError(f"unknown backend id {backend_id!r}")

    def _resolve_backend(self, backend_id: str, module, tracer):
        """One backend through the cache: hit loads, miss compiles
        (and stores in readwrite mode). Returns
        ``(artifacts, exclusions, backend_obj, info)``."""
        info: dict = {"state": "off"}
        key = None
        if self.cache is not None:
            key = cache_key(
                module,
                backend_id,
                self.options,
                self.cache.options.device_family,
            )
            info["key"] = key
            if self.cache.options.readable:
                entry = self.cache.load(backend_id, key, tracer=tracer)
                if entry is not None:
                    info.update(
                        state="hit",
                        modeled_s=entry.modeled_load_s,
                        modeled_cold_s=entry.modeled_compile_s,
                        payload_bytes=entry.payload_bytes,
                    )
                    stub = CachedBackend(
                        backend_id,
                        entry.artifacts,
                        entry.exclusions,
                        entry,
                    )
                    return entry.artifacts, entry.exclusions, stub, info
        artifacts, exclusions, backend = self._compile_backend(
            backend_id, module, tracer
        )
        info["modeled_s"] = modeled_compile_s(backend_id, artifacts)
        if self.cache is not None:
            info["state"] = "miss"
            if self.cache.options.writable:
                entry = self.cache.store(
                    backend_id, key, artifacts, exclusions, tracer=tracer
                )
                info["payload_bytes"] = entry.payload_bytes
        return artifacts, exclusions, backend, info

    # -- compilation ----------------------------------------------------

    def compile(
        self, source: str, filename: str = "<lime>"
    ) -> CompileResult:
        """Run the whole toolchain over Lime source text."""
        options = self.options
        tracer = self.tracer
        counters = tracer.counters
        cache_info: dict = {}
        with tracer.span(
            "compile", filename=filename, source_chars=len(source)
        ) as compile_span:
            with tracer.span("compile.frontend", filename=filename):
                checked = analyze(source, filename)
            with tracer.span(
                "compile.ir", run_optimizations=options.run_optimizations
            ) as ir_span:
                module = build_ir(
                    checked, run_optimizations=options.run_optimizations
                )
                ir_span.set(
                    functions=len(module.functions),
                    task_graphs=len(module.task_graphs),
                )
            fusion_plan = None
            if options.fusion.enabled:
                with tracer.span(
                    "compile.fusion", mode=options.fusion.mode
                ) as fusion_span:
                    fusion_plan = fuse_module(
                        module,
                        options.fusion.mode,
                        plan_path=options.fusion.plan_path,
                        profile=self._load_profile(
                            options.fusion.profile_path
                        ),
                    )
                    map_groups = len(fusion_plan.map_groups)
                    graph_groups = len(fusion_plan.graph_groups)
                    fusion_span.set(
                        map_groups=map_groups,
                        graph_groups=graph_groups,
                        rejected=len(fusion_plan.rejected),
                    )
                    counters.add("fusion.map.fused", map_groups)
                    counters.add("fusion.graph.planned", graph_groups)
                    counters.add(
                        "fusion.plan.rejected", len(fusion_plan.rejected)
                    )
            store = ArtifactStore()
            bc_artifacts, _, _, bc_info = self._resolve_backend(
                "bytecode", module, tracer
            )
            cache_info["bytecode"] = bc_info
            cpu_artifact = bc_artifacts[0]
            store.add(cpu_artifact)
            gpu_backend = None
            fpga_backend = None
            if options.enable_gpu:
                artifacts, exclusions, gpu_backend, info = (
                    self._resolve_backend("opencl", module, tracer)
                )
                cache_info["opencl"] = info
                for artifact in artifacts:
                    store.add(artifact)
                for exclusion in exclusions:
                    store.add_exclusion(exclusion)
            if options.enable_fpga:
                artifacts, exclusions, fpga_backend, info = (
                    self._resolve_backend("verilog", module, tracer)
                )
                cache_info["verilog"] = info
                for artifact in artifacts:
                    store.add(artifact)
                for exclusion in exclusions:
                    store.add_exclusion(exclusion)
            for exclusion in store.exclusions:
                counters.add(
                    f"compile.exclude[{exclusion.device}] {exclusion.reason}"
                )
            states = {info["state"] for info in cache_info.values()}
            if states == {"hit"}:
                store.provenance = "warm"
            elif "hit" in states:
                store.provenance = "mixed"
            else:
                store.provenance = "cold"
            compile_span.set(
                artifacts=len(store),
                exclusions=len(store.exclusions),
                artifact_source=store.provenance,
            )
        return CompileResult(
            source=source,
            checked=checked,
            module=module,
            bytecode_artifact=cpu_artifact,
            store=store,
            gpu_backend=gpu_backend,
            fpga_backend=fpga_backend,
            options=options.legacy_dict(),
            compile_options=options,
            cache_info=cache_info,
            fusion_plan=fusion_plan,
        )

    def compile_cached(
        self, source: str, filename: str = "<lime>"
    ) -> CompileResult:
        """Memoized :meth:`compile` for long-lived sessions.

        Keyed on a digest of the source text (the filename is labeling
        only), so a co-execution service compiling the same program
        for many jobs pays the toolchain once and every job shares one
        read-only :class:`CompileResult` — runtimes never mutate it.
        Thread-safe.
        """
        key = hashlib.sha256(source.encode("utf-8")).hexdigest()
        with self._memo_lock:
            result = self._memo.get(key)
            if result is None:
                self.counters.add("session.compile.memo_miss")
                result = self._memo[key] = self.compile(
                    source, filename=filename
                )
            else:
                self.counters.add("session.compile.memo_hit")
        return result

    # -- profile / specialization ---------------------------------------

    @staticmethod
    def _load_profile(path: str) -> "dict | None":
        """The repro.profile/1 payload gating fusion, or None."""
        if not path:
            return None
        from repro.errors import ConfigurationError

        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read profile report {path!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"profile report {path!r} is not valid JSON: {exc}"
            ) from exc

    def compile_specialized(
        self, artifact: Artifact, guard: str, tracer=None
    ):
        """Compile a specialized variant of one device kernel.

        ``guard`` is the specialization guard digest (the content hash
        of the stable operands the runtime observed —
        :mod:`repro.runtime.specialize`). The variant is the same
        executable payload under a guarded identity
        (``<generic>@spec:<guard>``): bit-identical results by
        construction, with the modeled win coming from skipping
        re-marshaling of guard-resident operands. Content-addressed in
        the artifact cache under backend id ``specialize`` and keyed on
        (generic artifact id, guard, device family), so a service that
        re-observes the same stable operands warm-loads the variant
        instead of re-specializing. Returns ``(artifact, info)`` with
        the usual cache-info dict (docs/FUSION.md).
        """
        tracer = tracer or self.tracer
        base = artifact.manifest
        spec_id = f"{base.artifact_id}@spec:{guard[:12]}"
        info: dict = {"state": "off"}
        key = None
        if self.cache is not None:
            material = json.dumps(
                {
                    "schema": "repro.specialize/1",
                    "artifact": base.artifact_id,
                    "guard": guard,
                    "device_family": self.cache.options.device_family,
                },
                sort_keys=True,
            )
            key = hashlib.sha256(material.encode("utf-8")).hexdigest()
            info["key"] = key
            if self.cache.options.readable:
                entry = self.cache.load("specialize", key, tracer=tracer)
                if entry is not None:
                    info.update(
                        state="hit",
                        modeled_s=entry.modeled_load_s,
                        payload_bytes=entry.payload_bytes,
                    )
                    return entry.artifacts[0], info
        with tracer.span(
            "compile.specialize",
            artifact=base.artifact_id,
            guard=guard[:12],
        ) as spec_span:
            manifest = Manifest(
                artifact_id=spec_id,
                device=base.device,
                task_ids=list(base.task_ids),
                graph_id=base.graph_id,
                source_language=base.source_language,
                properties={
                    **base.properties,
                    "specialized": True,
                    "guard": guard,
                    "generic": base.artifact_id,
                },
            )
            specialized = Artifact(
                manifest=manifest,
                payload=artifact.payload,
                text=artifact.text,
            )
            spec_span.set(artifact_id=spec_id)
        info["modeled_s"] = modeled_compile_s("specialize", [specialized])
        if self.cache is not None:
            info["state"] = "miss"
            if self.cache.options.writable:
                entry = self.cache.store(
                    "specialize", key, [specialized], [], tracer=tracer
                )
                info["payload_bytes"] = entry.payload_bytes
        return specialized, info

    # -- cache operations -----------------------------------------------

    def cache_stats(self) -> dict:
        """The cache's machine-readable stats (raises when disabled)."""
        self._require_cache()
        return self.cache.stats()

    def _require_cache(self):
        from repro.errors import ConfigurationError

        if self.cache is None:
            raise ConfigurationError(
                "this CompilerSession has no artifact cache; pass "
                "CompileOptions(cache=CacheOptions(cache_dir=..., "
                "mode='readwrite'))"
            )

    def harvest(
        self,
        apps: "list | None" = None,
        verify: bool = True,
        pin: bool = False,
    ) -> dict:
        """AOT-harvest the cache for a whole application suite.

        Compiles every named suite app (default: all of
        ``repro.apps.SUITE``) through this session so the cache is
        populated ahead of time, then — with ``verify=True`` — compiles
        each app a second time and confirms every backend warm-starts.
        ``pin=True`` pins every harvested entry against LRU eviction.
        Returns the ``repro.harvest/1`` report.
        """
        from repro.apps import SUITE

        self._require_cache()
        names = sorted(apps) if apps else sorted(SUITE)
        unknown = [n for n in names if n not in SUITE]
        if unknown:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "unknown suite apps: " + ", ".join(unknown)
            )
        report = {
            "schema": "repro.harvest/1",
            "cache_dir": self.cache.root,
            "device_family": self.cache.options.device_family,
            "apps": {},
            "totals": {
                "modeled_cold_s": 0.0,
                "modeled_warm_s": 0.0,
                "payload_bytes": 0,
                "verified": verify,
                "all_warm": True,
            },
        }
        for name in names:
            spec = SUITE[name]
            with self.tracer.span("harvest.app", app=name):
                result = self.compile(
                    spec.source, filename=f"<{name}.lime>"
                )
            record = {
                "backends": {
                    backend: {
                        "state": info["state"],
                        "modeled_s": info.get("modeled_s", 0.0),
                        "payload_bytes": info.get("payload_bytes", 0),
                    }
                    for backend, info in result.cache_info.items()
                },
                "modeled_cold_s": sum(
                    info.get("modeled_cold_s", info.get("modeled_s", 0.0))
                    for info in result.cache_info.values()
                ),
                "payload_bytes": sum(
                    info.get("payload_bytes", 0)
                    for info in result.cache_info.values()
                ),
            }
            if pin:
                for info in result.cache_info.values():
                    if "key" in info:
                        self.cache.pin(info["key"])
            if verify:
                warm = self.compile(
                    spec.source, filename=f"<{name}.lime>"
                )
                record["warm"] = warm.warm
                record["modeled_warm_s"] = warm.modeled_compile_s
                report["totals"]["all_warm"] &= warm.warm
                report["totals"]["modeled_warm_s"] += (
                    record["modeled_warm_s"]
                )
            report["totals"]["modeled_cold_s"] += record["modeled_cold_s"]
            report["totals"]["payload_bytes"] += record["payload_bytes"]
            report["apps"][name] = record
        totals = report["totals"]
        if verify and totals["modeled_warm_s"] > 0:
            totals["modeled_speedup"] = (
                totals["modeled_cold_s"] / totals["modeled_warm_s"]
            )
        return report


def compile_program(
    source: str,
    filename: str = "<lime>",
    options: "CompileOptions | None" = None,
    **legacy_kwargs,
) -> CompileResult:
    """Deprecated shim: run the toolchain via a one-shot
    :class:`CompilerSession` (the session is the public entry point —
    see docs/CACHING.md). Legacy keyword flags emit
    ``DeprecationWarning``; the ``options=`` form stays silent for
    compatibility, but new code should construct a session."""
    options = _resolve_options(options, legacy_kwargs)
    return CompilerSession(options).compile(source, filename=filename)


def compile_report(result: CompileResult, trace=None) -> str:
    """Human-readable toolchain summary (Experiment E2).

    ``trace`` appends the recorded compile/run span tree: pass a
    :class:`repro.obs.Tracer`, or ``True`` to use the tracer the
    compilation itself recorded into.
    """
    lines = ["Liquid Metal compilation report", "=" * 34, ""]
    lines.append("task graphs:")
    if not result.task_graphs:
        lines.append("  (none discovered statically)")
    for graph in result.task_graphs:
        lines.append(f"  {graph.graph_id}: {graph.describe()}")
    lines.append("")
    lines.append("artifacts:")
    for artifact in result.store.all():
        manifest = artifact.manifest
        tasks = ", ".join(manifest.task_ids) or "(whole program)"
        lines.append(
            f"  [{manifest.device:8s}] {manifest.artifact_id}"
        )
        lines.append(f"             implements: {tasks}")
    lines.append("")
    lines.append("exclusions:")
    if not result.store.exclusions:
        lines.append("  (none)")
    for exclusion in result.store.exclusions:
        lines.append(
            f"  [{exclusion.device:8s}] {exclusion.task_id}: "
            f"{exclusion.reason}"
        )
    cache_used = any(
        info.get("state") != "off" for info in result.cache_info.values()
    )
    if cache_used:
        lines.append("")
        lines.append(f"artifact source: {result.store.provenance}")
        for backend, info in sorted(result.cache_info.items()):
            modeled = info.get("modeled_s", 0.0) * 1e6
            lines.append(
                f"  [{backend:8s}] {info['state']:4s} "
                f"(modeled {modeled:,.0f}us)"
            )
    tracer = result.tracer if trace is True else trace
    if tracer is not None and getattr(tracer, "enabled", False):
        from repro.obs.export import render_span_tree

        lines.append("")
        lines.append("trace:")
        for line in render_span_tree(tracer).splitlines():
            lines.append("  " + line)
    return "\n".join(lines)
