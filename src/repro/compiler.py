"""The Liquid Metal compiler driver (Figure 2).

``compile_program`` accepts Lime source and produces a collection of
artifacts for different architectures: the frontend type-checks,
performs shallow optimizations and emits bytecode for the *entire*
program; the backend device compilers (OpenCL for GPUs, Verilog for
FPGAs) each compile the task sub-graphs they support. The result feeds
the runtime's artifact store for task substitution.

Compilation knobs live in the frozen :class:`CompileOptions` object —
``compile_program(source, options=CompileOptions(...))``. The legacy
keyword form (``compile_program(source, enable_gpu=False)``) still
works through a deprecation shim that maps the kwargs onto
:class:`CompileOptions` and emits :class:`DeprecationWarning`.

``compile_report`` renders the textual equivalent of the toolchain
overview — which tasks got which artifacts and why others were
excluded (the information the Eclipse IDE plugin surfaces as editor
markers in Figure 4). Pass ``trace=`` to append the recorded span
tree of the compilation.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field

from repro.backends.bytecode.compiler import compile_module, make_cpu_artifact
from repro.backends.common import Artifact, ArtifactStore
from repro.backends.opencl.compiler import compile_gpu
from repro.backends.verilog.compiler import compile_fpga
from repro.ir import build_ir
from repro.lime import analyze
from repro.obs.tracer import NULL_TRACER


@dataclass(frozen=True)
class CompileOptions:
    """Immutable compilation knobs.

    Frozen so one options object can be shared between cached
    compilations and threads; derive variants with :meth:`replace`.
    ``tracer`` threads a :class:`repro.obs.Tracer` through the driver
    and all three backends (``compile.*`` spans); the default null
    tracer records nothing and costs nothing.
    """

    enable_gpu: bool = True
    enable_fpga: bool = True
    fpga_pipelined: bool = False
    fpga_max_stage_depth: "int | None" = None
    run_optimizations: bool = True
    tracer: object = NULL_TRACER

    def replace(self, **overrides) -> "CompileOptions":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **overrides)

    def legacy_dict(self) -> dict:
        """The pre-redesign ``CompileResult.options`` dict."""
        return {
            "enable_gpu": self.enable_gpu,
            "enable_fpga": self.enable_fpga,
            "fpga_pipelined": self.fpga_pipelined,
            "fpga_max_stage_depth": self.fpga_max_stage_depth,
        }


#: Keyword names accepted by the deprecation shim.
_LEGACY_OPTION_NAMES = (
    "enable_gpu",
    "enable_fpga",
    "fpga_pipelined",
    "fpga_max_stage_depth",
    "run_optimizations",
)


@dataclass
class CompileResult:
    """Everything the compilation produced."""

    source: str
    checked: object           # CheckedProgram
    module: object            # IRModule
    bytecode_artifact: Artifact
    store: ArtifactStore
    gpu_backend: object = None
    fpga_backend: object = None
    options: dict = field(default_factory=dict)
    compile_options: "CompileOptions | None" = None

    @property
    def bytecode_program(self):
        return self.bytecode_artifact.payload

    @property
    def task_graphs(self) -> list:
        return self.module.task_graphs

    @property
    def tracer(self):
        """The tracer the compilation recorded into (null when
        tracing was disabled)."""
        if self.compile_options is None:
            return NULL_TRACER
        return self.compile_options.tracer

    def artifact_texts(self, device: str) -> dict:
        """Generated source text per artifact id for one device."""
        return {
            a.artifact_id: a.text
            for a in self.store.for_device(device)
            if a.text
        }


def _resolve_options(options, legacy_kwargs) -> CompileOptions:
    """Fold legacy kwargs onto a CompileOptions, warning once."""
    if legacy_kwargs:
        unknown = set(legacy_kwargs) - set(_LEGACY_OPTION_NAMES)
        if unknown:
            raise TypeError(
                "compile_program() got unexpected keyword arguments: "
                + ", ".join(sorted(unknown))
            )
        warnings.warn(
            "passing compilation flags as keyword arguments "
            f"({', '.join(sorted(legacy_kwargs))}) is deprecated; use "
            "compile_program(source, options=CompileOptions(...))",
            DeprecationWarning,
            stacklevel=3,
        )
        return (options or CompileOptions()).replace(**legacy_kwargs)
    return options or CompileOptions()


def compile_program(
    source: str,
    filename: str = "<lime>",
    options: "CompileOptions | None" = None,
    **legacy_kwargs,
) -> CompileResult:
    """Run the whole toolchain over Lime source text."""
    options = _resolve_options(options, legacy_kwargs)
    tracer = options.tracer
    counters = tracer.counters
    with tracer.span(
        "compile", filename=filename, source_chars=len(source)
    ) as compile_span:
        with tracer.span("compile.frontend", filename=filename):
            checked = analyze(source, filename)
        with tracer.span(
            "compile.ir", run_optimizations=options.run_optimizations
        ) as ir_span:
            module = build_ir(
                checked, run_optimizations=options.run_optimizations
            )
            ir_span.set(
                functions=len(module.functions),
                task_graphs=len(module.task_graphs),
            )
        store = ArtifactStore()
        with tracer.span("compile.backend.bytecode") as bc_span:
            cpu_artifact = make_cpu_artifact(module)
            bc_span.set(
                functions=len(cpu_artifact.payload.functions),
                artifact_id=cpu_artifact.artifact_id,
            )
        store.add(cpu_artifact)
        gpu_backend = None
        fpga_backend = None
        if options.enable_gpu:
            with tracer.span("compile.backend.opencl") as gpu_span:
                gpu_backend = compile_gpu(module, tracer=tracer)
                gpu_span.set(
                    artifacts=len(gpu_backend.artifacts),
                    exclusions=len(gpu_backend.exclusions),
                )
            for artifact in gpu_backend.artifacts:
                store.add(artifact)
            for exclusion in gpu_backend.exclusions:
                store.add_exclusion(exclusion)
        if options.enable_fpga:
            with tracer.span(
                "compile.backend.verilog", pipelined=options.fpga_pipelined
            ) as fpga_span:
                fpga_backend = compile_fpga(
                    module,
                    pipelined=options.fpga_pipelined,
                    max_stage_depth=options.fpga_max_stage_depth,
                    tracer=tracer,
                )
                fpga_span.set(
                    artifacts=len(fpga_backend.artifacts),
                    exclusions=len(fpga_backend.exclusions),
                )
            for artifact in fpga_backend.artifacts:
                store.add(artifact)
            for exclusion in fpga_backend.exclusions:
                store.add_exclusion(exclusion)
        for exclusion in store.exclusions:
            counters.add(f"compile.exclude[{exclusion.device}] {exclusion.reason}")
        compile_span.set(
            artifacts=len(store), exclusions=len(store.exclusions)
        )
    return CompileResult(
        source=source,
        checked=checked,
        module=module,
        bytecode_artifact=cpu_artifact,
        store=store,
        gpu_backend=gpu_backend,
        fpga_backend=fpga_backend,
        options=options.legacy_dict(),
        compile_options=options,
    )


def compile_report(result: CompileResult, trace=None) -> str:
    """Human-readable toolchain summary (Experiment E2).

    ``trace`` appends the recorded compile/run span tree: pass a
    :class:`repro.obs.Tracer`, or ``True`` to use the tracer the
    compilation itself recorded into.
    """
    lines = ["Liquid Metal compilation report", "=" * 34, ""]
    lines.append("task graphs:")
    if not result.task_graphs:
        lines.append("  (none discovered statically)")
    for graph in result.task_graphs:
        lines.append(f"  {graph.graph_id}: {graph.describe()}")
    lines.append("")
    lines.append("artifacts:")
    for artifact in result.store.all():
        manifest = artifact.manifest
        tasks = ", ".join(manifest.task_ids) or "(whole program)"
        lines.append(
            f"  [{manifest.device:8s}] {manifest.artifact_id}"
        )
        lines.append(f"             implements: {tasks}")
    lines.append("")
    lines.append("exclusions:")
    if not result.store.exclusions:
        lines.append("  (none)")
    for exclusion in result.store.exclusions:
        lines.append(
            f"  [{exclusion.device:8s}] {exclusion.task_id}: "
            f"{exclusion.reason}"
        )
    tracer = result.tracer if trace is True else trace
    if tracer is not None and getattr(tracer, "enabled", False):
        from repro.obs.export import render_span_tree

        lines.append("")
        lines.append("trace:")
        for line in render_span_tree(tracer).splitlines():
            lines.append("  " + line)
    return "\n".join(lines)
