"""Simulated devices: CPU timing model, GPU simulator, FPGA simulator,
and host<->device interconnect models."""

from repro.devices.cpu import CPUDevice, CPUSpec
from repro.devices.interconnect import (
    ATTACHMENTS,
    PCIE_GEN2_X8,
    PCIE_GEN2_X16,
    UART_921600,
    Link,
)

__all__ = [
    "ATTACHMENTS",
    "CPUDevice",
    "CPUSpec",
    "Link",
    "PCIE_GEN2_X8",
    "PCIE_GEN2_X16",
    "UART_921600",
]
