"""CPU device model.

The bytecode interpreter reports abstract cycles whose cost table
already reflects a JVM executing on a conventional core (bounds checks,
call frames, interpreter/JIT overheads). The CPU device model converts
those cycles into simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """A conventional host core (think Nehalem/Sandy Bridge class, the
    hosts used in the paper's era)."""

    name: str = "x86-64 host core (3.0 GHz)"
    clock_hz: float = 3.0e9
    ipc: float = 1.0  # abstract cycles are already serialized


@dataclass
class CPUTiming:
    cycles: int
    seconds: float

    def __repr__(self) -> str:
        return f"CPUTiming({self.cycles} cycles, {self.seconds:.6g}s)"


class CPUDevice:
    """Timing conversion for bytecode execution."""

    def __init__(self, spec: CPUSpec | None = None):
        self.spec = spec or CPUSpec()

    def time_for_cycles(self, cycles: int) -> CPUTiming:
        seconds = cycles / (self.spec.clock_hz * self.spec.ipc)
        return CPUTiming(cycles=cycles, seconds=seconds)
