"""FPGA device: RTL model, cycle simulator, VCD waveforms, synthesis
estimation."""

from repro.devices.fpga.rtl import Netlist, Signal
from repro.devices.fpga.simulator import FPGARunResult, FPGASimulator
from repro.devices.fpga.synthesis import SynthesisReport, estimate, width_of
from repro.devices.fpga.vcd import VCDWriter

__all__ = [
    "FPGARunResult",
    "FPGASimulator",
    "Netlist",
    "Signal",
    "SynthesisReport",
    "VCDWriter",
    "estimate",
    "width_of",
]
