"""A small synchronous RTL model: signals, combinational assigns,
registers, and elaborated netlists.

The Verilog backend elaborates each generated module into a
:class:`Netlist`; the cycle simulator evaluates combinational logic in
topological order and commits register updates on each rising clock
edge, exactly like an HDL simulator in two-phase mode. Combinational
loops are detected at elaboration time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import SimulationError


@dataclass
class Signal:
    """One named wire or register, carrying an unsigned int of ``width``
    bits (two's-complement reinterpretation happens in the datapath
    functions)."""

    name: str
    width: int
    is_reg: bool = False
    initial: int = 0

    def mask(self, value: int) -> int:
        return value & ((1 << self.width) - 1)


@dataclass
class Assign:
    """Combinational assignment: target <= fn(env) given dependencies."""

    target: str
    fn: Callable
    deps: list


@dataclass
class RegUpdate:
    """Clocked assignment: on posedge, target' = fn(pre-edge env)."""

    target: str
    fn: Callable


class Netlist:
    """An elaborated module: ports, signals, comb logic, registers."""

    def __init__(self, name: str):
        self.name = name
        self.signals: dict[str, Signal] = {}
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.assigns: list[Assign] = []
        self.reg_updates: list[RegUpdate] = []
        self._ordered: Optional[list] = None

    # -- construction -----------------------------------------------------

    def add_input(self, name: str, width: int) -> Signal:
        signal = Signal(name, width)
        self.signals[name] = signal
        self.inputs.append(name)
        return signal

    def add_output(self, name: str, width: int) -> Signal:
        signal = Signal(name, width)
        self.signals[name] = signal
        self.outputs.append(name)
        return signal

    def add_wire(self, name: str, width: int) -> Signal:
        signal = Signal(name, width)
        self.signals[name] = signal
        return signal

    def add_reg(self, name: str, width: int, initial: int = 0) -> Signal:
        signal = Signal(name, width, is_reg=True, initial=initial)
        self.signals[name] = signal
        return signal

    def assign(self, target: str, fn: Callable, deps: list) -> None:
        if target not in self.signals:
            raise SimulationError(f"assign to undeclared signal {target!r}")
        if self.signals[target].is_reg:
            raise SimulationError(
                f"combinational assign to register {target!r}"
            )
        self.assigns.append(Assign(target, fn, deps))
        self._ordered = None

    def on_clock(self, target: str, fn: Callable) -> None:
        if not self.signals[target].is_reg:
            raise SimulationError(
                f"clocked update of non-register {target!r}"
            )
        self.reg_updates.append(RegUpdate(target, fn))

    # -- elaboration checks ------------------------------------------------

    def ordered_assigns(self) -> list:
        """Topologically ordered combinational assigns; raises on a
        combinational loop."""
        if self._ordered is not None:
            return self._ordered
        producers = {a.target: a for a in self.assigns}
        if len(producers) != len(self.assigns):
            raise SimulationError("multiple drivers for a signal")
        state = {}  # name -> 0 visiting, 1 done
        order: list[Assign] = []

        def visit(name: str, chain: tuple) -> None:
            if name not in producers:
                return  # input or register: already stable
            mark = state.get(name)
            if mark == 1:
                return
            if mark == 0:
                cycle = " -> ".join(chain + (name,))
                raise SimulationError(
                    f"combinational loop in {self.name}: {cycle}"
                )
            state[name] = 0
            for dep in producers[name].deps:
                visit(dep, chain + (name,))
            state[name] = 1
            order.append(producers[name])

        for assign in self.assigns:
            visit(assign.target, ())
        self._ordered = order
        return order

    def initial_state(self) -> dict:
        """Register (and input) values at reset."""
        env = {}
        for signal in self.signals.values():
            env[signal.name] = signal.initial
        return env

    def settle(self, env: dict) -> dict:
        """Evaluate combinational logic given inputs+registers in env."""
        for assign in self.ordered_assigns():
            signal = self.signals[assign.target]
            env[assign.target] = signal.mask(int(assign.fn(env)))
        return env

    def clock_edge(self, env: dict) -> dict:
        """Compute the post-edge register file from the settled env."""
        updates = {}
        for reg in self.reg_updates:
            signal = self.signals[reg.target]
            updates[reg.target] = signal.mask(int(reg.fn(env)))
        new_env = dict(env)
        new_env.update(updates)
        return new_env
