"""Cycle-accurate simulation of generated FPGA modules.

Drives an elaborated :class:`Netlist` with the stream handshake of the
paper's Figure 4 (signals named after the waveform: ``inReady`` is the
producer-driven input-valid, ``inData`` the input word, ``outReady``
the output-valid, ``outData`` the result), recording every signal into
a VCD waveform. This plays the role of the Verilog/VHDL simulators
(NCSim, ModelSim) the paper co-executes with (Sections 5 and 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.fpga.rtl import Netlist
from repro.devices.fpga.vcd import VCDWriter
from repro.errors import SimulationError


@dataclass
class FPGARunResult:
    """Outcome of streaming one batch of items through a module."""

    outputs: list
    cycles: int
    clock_hz: float
    vcd: VCDWriter
    input_count: int
    details: dict = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.cycles / self.clock_hz

    @property
    def throughput_items_per_cycle(self) -> float:
        if self.cycles == 0:
            return 0.0
        return self.input_count / self.cycles

    def __repr__(self) -> str:
        return (
            f"FPGARunResult({len(self.outputs)} outputs in "
            f"{self.cycles} cycles @ {self.clock_hz / 1e6:.0f}MHz)"
        )


class FPGASimulator:
    """Streams items through a netlist using the Figure 4 handshake."""

    def __init__(self, clock_hz: float = 150e6, period_ns: int = 4):
        self.clock_hz = clock_hz
        self.period_ns = period_ns

    def run_stream(
        self,
        netlist: Netlist,
        items: list,
        expected_outputs: int | None = None,
        max_cycles: int = 100_000,
        return_to_zero: bool = False,
    ) -> FPGARunResult:
        """Feed ``items`` (ints) respecting backpressure; collect
        ``expected_outputs`` results (defaults to len(items)).

        With ``return_to_zero`` the driver deasserts ``inReady`` for at
        least one cycle between items, so each item produces a distinct
        inReady pulse — how the Figure 4 waveform was driven (9 inputs,
        9 transitions on inReady)."""
        expected = (
            len(items) if expected_outputs is None else expected_outputs
        )
        vcd = VCDWriter(netlist.name)
        vcd.declare("clk", 1)
        for name, signal in netlist.signals.items():
            vcd.declare(name, signal.width)

        env = netlist.initial_state()
        env["inReady"] = 0
        env["inWord"] = 0
        pending = list(items)
        outputs: list[int] = []
        enqueue_times: list[int] = []
        just_enqueued = False
        cycle = 0
        while cycle < max_cycles:
            time = cycle * self.period_ns
            # Provisional settle with input idle: lets us read the
            # module's acceptance, which by construction depends only on
            # register state.
            env["inReady"] = 0
            env["inWord"] = 0
            settled = netlist.settle(dict(env))
            can_accept = settled.get("inAccept", 1)
            hold_off = return_to_zero and just_enqueued
            just_enqueued = False
            if pending and can_accept and not hold_off:
                env["inReady"] = 1
                env["inWord"] = pending.pop(0)
                settled = netlist.settle(dict(env))
                enqueue_times.append(cycle)
                just_enqueued = True
            # Record the settled pre-edge state.
            vcd.record(time, "clk", 1)
            for name in netlist.signals:
                vcd.record(time, name, settled.get(name, 0))
            vcd.record(time + self.period_ns // 2, "clk", 0)
            if settled.get("outReady"):
                outputs.append(settled.get("outData", 0))
            env = netlist.clock_edge(settled)
            cycle += 1
            if len(outputs) >= expected and not pending:
                break
        else:
            raise SimulationError(
                f"{netlist.name}: simulation did not finish within "
                f"{max_cycles} cycles ({len(outputs)}/{expected} outputs)"
            )
        return FPGARunResult(
            outputs=outputs,
            cycles=cycle,
            clock_hz=self.clock_hz,
            vcd=vcd,
            input_count=len(items),
            details={"enqueue_times": enqueue_times},
        )
