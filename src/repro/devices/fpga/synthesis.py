"""Logic synthesis estimation for generated datapaths.

The paper's flow drives "FPGA-specific logic synthesis flows" after
Verilog generation (Section 5); without vendor tools we estimate the
resources (LUTs, flip-flops, BRAMs) and achievable clock (Fmax) from
the datapath expression DAG, using rule-of-thumb costs for Virtex-5
class parts (XUP V5 / Nallatech 280 era).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir import nodes as ir
from repro.lime import types as ty


def width_of(type_) -> int:
    """RTL width in bits of a Lime scalar type."""
    if isinstance(type_, ty.PrimType):
        return {
            "bit": 1,
            "boolean": 1,
            "int": 32,
            "long": 64,
        }[type_.name]
    if isinstance(type_, ty.ClassType) and type_.is_enum:
        return 8
    raise ValueError(f"no RTL width for {type_}")


@dataclass
class SynthesisReport:
    module: str
    luts: int
    flipflops: int
    brams: int
    logic_depth: int           # levels of LUTs on the critical path
    fmax_hz: float

    def __repr__(self) -> str:
        return (
            f"SynthesisReport({self.module}: {self.luts} LUT, "
            f"{self.flipflops} FF, {self.brams} BRAM, "
            f"Fmax {self.fmax_hz / 1e6:.0f}MHz)"
        )


# Per-node LUT cost as a function of operand width, and logic depth in
# LUT levels. Coarse Virtex-5 heuristics.
def _node_cost(expr: ir.IRExpr) -> "tuple[int, int]":
    width = _expr_width(expr)
    if isinstance(expr, ir.EConst):
        return 0, 0
    if isinstance(expr, ir.ELocal):
        return 0, 0
    if isinstance(expr, ir.EBinary):
        op = expr.op
        if op in ("+", "-"):
            return width, 1
        if op == "*":
            return max(1, (width * width) // 6), 3
        if op in ("/", "%"):
            return width * width, 8  # iterative divider, expensive
        if op in ("<<", ">>"):
            if isinstance(expr.right, ir.EConst):
                return 0, 0  # constant shift is pure wiring
            return width * 2, 2  # barrel shifter
        if op in ("&", "|", "^"):
            return max(1, width // 2), 1
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return max(1, width), 1
        if op in ("&&", "||"):
            return 1, 1
        return width, 1
    if isinstance(expr, ir.EUnary):
        if expr.op == "-":
            return width, 1
        return max(1, width // 2), 1
    if isinstance(expr, ir.ETernary):
        return width, 1  # a mux
    if isinstance(expr, ir.ECast):
        return 0, 0
    if isinstance(expr, ir.EIntrinsic):
        return max(1, width // 2), 1  # bit.~ and friends
    return width, 1


def _expr_width(expr: ir.IRExpr) -> int:
    try:
        return width_of(expr.type)
    except (ValueError, KeyError):
        return 32


def estimate(module_name: str, datapath: ir.IRExpr,
             in_width: int, out_width: int,
             pipelined: bool = False,
             compute_stages: int = 1) -> SynthesisReport:
    """Estimate resources for a filter module wrapping ``datapath``.

    ``compute_stages`` models retiming: the combinational path is cut
    into that many register-separated stages, dividing the critical
    path (and hence raising Fmax) at the cost of extra flip-flops."""
    luts = 0
    # DAG walk with memoization: the datapath builder shares
    # subexpressions (an unrolled CRC reuses each round's value in both
    # mux arms), and synthesis shares the corresponding logic — a naive
    # tree walk would double-count exponentially.
    memo: dict = {}

    def walk(expr: ir.IRExpr) -> int:
        nonlocal luts
        cached = memo.get(id(expr))
        if cached is not None:
            return cached
        cost, depth = _node_cost(expr)
        luts += cost
        child_depth = 0
        for child in _children(expr):
            child_depth = max(child_depth, walk(child))
        total_depth = depth + child_depth
        memo[id(expr)] = total_depth
        return total_depth

    depth = walk(datapath)
    stages = max(compute_stages, 1)
    # Handshake/pipeline registers: input, result, output, valid bits,
    # plus one data+valid register per extra compute stage.
    flipflops = in_width + 2 * out_width + 8 + (stages - 1) * (out_width + 1)
    if pipelined:
        flipflops += out_width  # skid register for II=1 operation
    brams = 1  # the input FIFO
    # Virtex-5: ~0.9ns per LUT level + 1.5ns routing/FF overhead; the
    # retimed path is depth/stages levels long.
    stage_depth = max(depth, 1) / stages
    critical_ns = stage_depth * 0.9 + 1.5
    fmax = min(1e9 / critical_ns, 450e6)
    return SynthesisReport(
        module=module_name,
        luts=max(luts, 1),
        flipflops=flipflops,
        brams=brams,
        logic_depth=max(depth, 1),
        fmax_hz=fmax,
    )


def _children(expr: ir.IRExpr) -> list:
    if isinstance(expr, (ir.EUnary, ir.ECast)):
        return [expr.operand]
    if isinstance(expr, ir.EBinary):
        return [expr.left, expr.right]
    if isinstance(expr, ir.ETernary):
        return [expr.cond, expr.then, expr.other]
    if isinstance(expr, ir.EIntrinsic):
        return list(expr.args)
    return []
