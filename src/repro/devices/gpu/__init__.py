"""SIMT GPU simulator and Fermi-class timing model."""

from repro.devices.gpu.simulator import GPUExecution, GPUSimulator
from repro.devices.gpu.timing import GTX580, RADEON_HD6970, GPUSpec, GPUTiming

__all__ = [
    "GPUExecution",
    "GPUSimulator",
    "GPUSpec",
    "GPUTiming",
    "GTX580",
    "RADEON_HD6970",
]
