"""The SIMT GPU simulator.

Executes GPU kernel artifacts *functionally* — each work-item's work is
the kernel method's bytecode, interpreted with full Lime semantics so
results are bit-identical to the CPU path — while collecting per-item
abstract cycle counts that feed the Fermi timing model in
:mod:`repro.devices.gpu.timing`.

A dedicated interpreter instance is used so GPU work never pollutes the
host CPU's cycle ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.bytecode.interpreter import Interpreter
from repro.backends.bytecode.isa import BytecodeProgram
from repro.backends.opencl.compiler import GPUKernel
from repro.devices.gpu.timing import (
    GPUSpec,
    GTX580,
    GPUTiming,
    data_parallel_time,
    reduction_time,
)
from repro.errors import DeviceError
from repro.values import ValueArray
from repro.values.base import Kind


def _element_bytes(kind: Kind) -> float:
    """Bytes per element in the device's dense layout."""
    if kind.name == "bit":
        return 0.125
    return kind.wire_bits() / 8


@dataclass
class GPUExecution:
    """Result of one kernel run: output values plus timing."""

    outputs: object
    timing: GPUTiming
    per_item_cycles: list = field(default_factory=list)


class GPUSimulator:
    """One simulated GPU device executing compiled kernel artifacts."""

    def __init__(self, program: BytecodeProgram, spec: GPUSpec = GTX580):
        self.spec = spec
        # Private interpreter: functional execution engine for kernels.
        self._interp = Interpreter(program)
        self.kernel_log: list[GPUTiming] = []

    # ------------------------------------------------------------------

    def run(self, kernel: GPUKernel, inputs: list) -> GPUExecution:
        """Dispatch on kernel kind. ``inputs`` is a list of ValueArray
        (map: one per parameter; reduce/filter: exactly one)."""
        if kernel.kind == "map":
            return self.run_map(kernel, inputs)
        if kernel.kind == "reduce":
            return self.run_reduce(kernel, inputs[0])
        if kernel.kind == "filter":
            return self.run_filter(kernel, inputs[0])
        raise DeviceError(f"unknown kernel kind {kernel.kind!r}")

    def run_map(self, kernel: GPUKernel, args: list) -> GPUExecution:
        broadcast = kernel.properties.get(
            "broadcast", (False,) * len(args)
        )
        mapped = [a for a, b in zip(args, broadcast) if not b]
        lengths = {len(a) for a in mapped}
        if len(lengths) != 1:
            raise DeviceError("map kernel inputs must have equal lengths")
        n = lengths.pop()
        item_args = []
        for index in range(n):
            item_args.append(
                tuple(
                    a if b else a[index]
                    for a, b in zip(args, broadcast)
                )
            )
        per_item, items = self._execute_items([kernel.methods], item_args)
        outputs = ValueArray(kernel.result_kind, items)
        bytes_in = 0.0
        for kind, arg, is_broadcast in zip(
            kernel.param_kinds, args, broadcast
        ):
            if is_broadcast and kind.is_array:
                # Whole operand array: read once (cached across items).
                bytes_in += _element_bytes(kind.element) * len(arg)
            elif not is_broadcast:
                bytes_in += _element_bytes(kind) * n
        bytes_out = _element_bytes(kernel.result_kind) * n
        timing = data_parallel_time(
            self.spec,
            per_item,
            int(bytes_in),
            int(bytes_out),
            coalesced=True,
            kernel_name=kernel.name,
        )
        self.kernel_log.append(timing)
        return GPUExecution(outputs, timing, per_item)

    def run_reduce(self, kernel: GPUKernel, array) -> GPUExecution:
        method = kernel.methods[0]
        items = list(array)
        if not items:
            raise DeviceError("reduce of empty array on GPU")
        before = self._interp.cycles
        acc = items[0]
        for item in items[1:]:
            acc = self._interp.call(method, [acc, item])
        elapsed = self._interp.cycles - before
        per_op = elapsed / max(len(items) - 1, 1)
        bytes_in = int(_element_bytes(kernel.param_kinds[0]) * len(items))
        timing = reduction_time(
            self.spec, len(items), per_op, bytes_in, kernel_name=kernel.name
        )
        self.kernel_log.append(timing)
        return GPUExecution(acc, timing)

    def run_filter(self, kernel: GPUKernel, items) -> GPUExecution:
        """A batch of stream elements pulled through the (possibly
        fused) filter chain, one work-item per element."""
        per_item, outputs = self._execute_items(
            [kernel.methods], [(item,) for item in items]
        )
        bytes_in = int(_element_bytes(kernel.param_kinds[0]) * len(outputs))
        bytes_out = int(_element_bytes(kernel.result_kind) * len(outputs))
        timing = data_parallel_time(
            self.spec,
            per_item or [0],
            bytes_in,
            bytes_out,
            coalesced=True,
            kernel_name=kernel.name,
        )
        self.kernel_log.append(timing)
        return GPUExecution(outputs, timing, per_item)

    # ------------------------------------------------------------------

    def _execute_items(self, method_chains: list, item_args: list):
        """Run each work-item through the method chain, recording the
        abstract cycles each lane spends."""
        methods = method_chains[0]
        per_item: list[int] = []
        outputs: list = []
        interp = self._interp
        for args in item_args:
            before = interp.cycles
            value = None
            current_args = list(args)
            for method in methods:
                value = interp.call(method, current_args)
                current_args = [value]
            per_item.append(interp.cycles - before)
            outputs.append(value)
        return per_item, outputs

    @property
    def total_kernel_time(self) -> float:
        return sum(t.kernel_s for t in self.kernel_log)
