"""GPU timing model: a Fermi-class SIMT machine.

The reproduction's GPU executes kernels *functionally* by interpreting
the kernel methods' bytecode per work-item; this module turns the
observed per-item abstract cycle counts into simulated kernel time
under a warp/divergence/bandwidth model calibrated to the NVidia GTX580
(Fermi) used in the paper's companion evaluation [Dubach et al.,
PLDI'12], which reported 12x-431x end-to-end speedups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class GPUSpec:
    """Fermi-class device parameters (GTX580 defaults)."""

    name: str = "NVidia GTX580 (Fermi)"
    cuda_cores: int = 512
    clock_hz: float = 1.544e9
    warp_size: int = 32
    mem_bandwidth_bytes_per_s: float = 192.4e9
    launch_overhead_s: float = 8e-6
    # One abstract interpreter cycle bundles JVM overheads (bounds
    # checks, call frames); native SIMT lanes retire the same work in
    # fewer clocks. This is the CPU-vs-GPU per-op efficiency ratio.
    cycles_per_abstract_cycle: float = 0.4
    # Bandwidth penalty multiplier for fully strided (uncoalesced)
    # access; real Fermi wastes up to warp_size-wide transactions.
    uncoalesced_penalty: float = 8.0
    # Cost of a work-group barrier (tree-reduction steps), seconds.
    barrier_s: float = 0.4e-6


GTX580 = GPUSpec()

# An AMD device of the same era, for the multi-vendor claim in
# Section 7 ("we have demonstrated significant performance gains on AMD
# and NVidia GPUs").
RADEON_HD6970 = GPUSpec(
    name="AMD Radeon HD6970 (Cayman)",
    cuda_cores=384,  # VLIW4 effective scalar lanes, conservatively
    clock_hz=1.88e9,
    mem_bandwidth_bytes_per_s=176e9,
    launch_overhead_s=10e-6,
)


@dataclass
class GPUTiming:
    """Breakdown of one simulated kernel execution."""

    kernel_name: str
    work_items: int
    total_abstract_cycles: int
    warp_lane_cycles: int       # divergence-inflated lane-cycles
    compute_s: float
    memory_s: float
    launch_s: float
    details: dict = field(default_factory=dict)

    @property
    def kernel_s(self) -> float:
        """Kernel execution time: compute and memory overlap on Fermi."""
        return self.launch_s + max(self.compute_s, self.memory_s)

    def __repr__(self) -> str:
        return (
            f"GPUTiming({self.kernel_name}: {self.work_items} items, "
            f"{self.kernel_s * 1e6:.2f}us)"
        )


def warp_divergence_cycles(per_item_cycles: list, warp_size: int) -> int:
    """Total lane-cycles with SIMT divergence: every lane of a warp
    pays the slowest lane's cycle count."""
    total = 0
    for start in range(0, len(per_item_cycles), warp_size):
        warp = per_item_cycles[start : start + warp_size]
        total += max(warp) * len(warp)
    return total


def data_parallel_time(
    spec: GPUSpec,
    per_item_cycles: list,
    bytes_in: int,
    bytes_out: int,
    coalesced: bool = True,
    kernel_name: str = "kernel",
) -> GPUTiming:
    """Timing for an n-way data-parallel kernel (map / filter batch)."""
    n = len(per_item_cycles)
    total_cycles = sum(per_item_cycles)
    lane_cycles = warp_divergence_cycles(per_item_cycles, spec.warp_size)
    gpu_cycles = lane_cycles * spec.cycles_per_abstract_cycle
    compute_s = gpu_cycles / (spec.cuda_cores * spec.clock_hz)
    penalty = 1.0 if coalesced else spec.uncoalesced_penalty
    memory_s = (bytes_in + bytes_out) * penalty / spec.mem_bandwidth_bytes_per_s
    return GPUTiming(
        kernel_name=kernel_name,
        work_items=n,
        total_abstract_cycles=total_cycles,
        warp_lane_cycles=lane_cycles,
        compute_s=compute_s,
        memory_s=memory_s,
        launch_s=spec.launch_overhead_s,
        details={"coalesced": coalesced},
    )


def reduction_time(
    spec: GPUSpec,
    n: int,
    per_op_cycles: float,
    bytes_in: int,
    kernel_name: str = "reduce",
) -> GPUTiming:
    """Timing for a two-stage tree reduction over ``n`` elements."""
    if n <= 0:
        raise ValueError("reduction over empty input")
    ops = max(n - 1, 1)
    gpu_cycles = ops * per_op_cycles * spec.cycles_per_abstract_cycle
    compute_s = gpu_cycles / (spec.cuda_cores * spec.clock_hz)
    depth = max(1, math.ceil(math.log2(max(n, 2))))
    barrier_s = depth * spec.barrier_s
    memory_s = bytes_in / spec.mem_bandwidth_bytes_per_s
    return GPUTiming(
        kernel_name=kernel_name,
        work_items=n,
        total_abstract_cycles=int(ops * per_op_cycles),
        warp_lane_cycles=int(ops * per_op_cycles),
        compute_s=compute_s + barrier_s,
        memory_s=memory_s,
        launch_s=spec.launch_overhead_s,
        details={"tree_depth": depth},
    )
