"""Host/accelerator interconnect models.

Section 7 lists the attachments the paper's runtime supports: PCIe
(Nallatech 280 boards) and UART (Xilinx XUP V5 and Spartan LX9 boards).
Each link is a latency + bandwidth model applied to the marshaled byte
stream of Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A point-to-point host<->device link."""

    name: str
    bandwidth_bytes_per_s: float
    latency_s: float

    def transfer_time(self, num_bytes: int) -> float:
        """Seconds to move ``num_bytes`` one way (latency + serialization)."""
        if num_bytes < 0:
            raise ValueError("negative transfer size")
        return self.latency_s + num_bytes / self.bandwidth_bytes_per_s

    def round_trip_time(self, bytes_out: int, bytes_back: int) -> float:
        return self.transfer_time(bytes_out) + self.transfer_time(bytes_back)


# PCIe gen2 x8: ~4 GB/s effective, microsecond-scale latency — the GPU
# and the Nallatech 280 FPGA attachment.
PCIE_GEN2_X8 = Link("PCIe gen2 x8", 4.0e9, 10e-6)

# PCIe gen2 x16 for the GPU itself.
PCIE_GEN2_X16 = Link("PCIe gen2 x16", 8.0e9, 10e-6)

# UART at 921600 baud (8N1 → ~92 KB/s) — the XUP V5 / Spartan LX9
# development-board attachment. Three orders of magnitude slower, which
# is exactly the contrast Experiment E7 demonstrates.
UART_921600 = Link("UART 921600 baud", 92_160.0, 1e-3)

ATTACHMENTS = {
    "pcie-x8": PCIE_GEN2_X8,
    "pcie-x16": PCIE_GEN2_X16,
    "uart": UART_921600,
}
