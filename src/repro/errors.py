"""Exception hierarchy for the Liquid Metal reproduction.

Every error raised by the compiler, runtime, or device simulators derives
from :class:`LiquidMetalError` so that callers can catch the whole family
with one handler while tests can assert on precise subclasses.
"""

from __future__ import annotations


class LiquidMetalError(Exception):
    """Base class for all errors raised by this package."""


class SourcePosition:
    """A (line, column) position in a Lime source file.

    Both coordinates are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<lime>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourcePosition):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class LimeSyntaxError(LiquidMetalError):
    """Lexical or syntactic error in Lime source code."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.position = position
        if position is not None:
            message = f"{position}: {message}"
        super().__init__(message)


class LimeTypeError(LiquidMetalError):
    """Semantic error: type mismatch, isolation violation, etc."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.position = position
        if position is not None:
            message = f"{position}: {message}"
        super().__init__(message)


class IsolationError(LimeTypeError):
    """Violation of the ``value``/``local`` strong-isolation rules."""


class TaskGraphError(LimeTypeError):
    """A task graph is malformed or its static shape cannot be determined.

    The paper (Section 3) requires that when relocation brackets are
    present but the compiler fails to determine the shape of the task
    graph, the programmer is informed at compile time.
    """


class LoweringError(LiquidMetalError):
    """Internal error while lowering the AST to IR."""


class BackendError(LiquidMetalError):
    """A backend device compiler failed on input it claimed to accept."""


class ExclusionNotice(LiquidMetalError):
    """Raised internally when a backend excludes a task from compilation.

    This is not a user-visible failure: per Section 3 of the paper, a
    task containing constructs unsuitable for a device is simply
    excluded from that backend. The notice carries the reason so the
    compile report can show *why* a device artifact is missing.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class ConfigurationError(LiquidMetalError):
    """Invalid compiler or runtime configuration (caught at
    construction time by ``RuntimeConfig.validate`` /
    ``CompileOptions`` rather than deep inside the engine)."""


class TraceExportError(LiquidMetalError):
    """An exported trace failed schema validation or could not be
    read back (the ``make trace-smoke`` gate)."""


class RuntimeGraphError(LiquidMetalError):
    """Error while constructing or executing a runtime task graph."""


class MarshalingError(LiquidMetalError):
    """Error serializing or deserializing a value across the boundary."""


class DeviceError(LiquidMetalError):
    """Error inside a device simulator (GPU, FPGA, interconnect)."""


class SimulationError(DeviceError):
    """The FPGA cycle simulator detected an inconsistency (e.g. a
    combinational loop or an X-valued control signal)."""


class DeviceTimeoutError(DeviceError):
    """A device task stalled past its watchdog deadline.

    Raised by the :class:`~repro.runtime.scheduler.ThreadedScheduler`
    stage watchdog and by injected stage-stall faults. Carries the
    stage/device so the supervisor can demote the right span.
    """

    def __init__(self, message: str, task_id: str | None = None,
                 device: str | None = None):
        self.task_id = task_id
        self.device = device
        super().__init__(message)


class RetryExhaustedError(LiquidMetalError):
    """The supervisor gave up retrying a device task and no bytecode
    fallback was available. Carries the failing task/device context and
    the last underlying error (also chained via ``__cause__``)."""

    def __init__(self, message: str, task_id: str | None = None,
                 device: str | None = None, attempts: int = 0,
                 cause: "BaseException | None" = None):
        self.task_id = task_id
        self.device = device
        self.attempts = attempts
        self.cause = cause
        super().__init__(message)


class ValueSemanticsError(LiquidMetalError):
    """Attempt to violate value semantics at run time (e.g. mutating a
    value array)."""
