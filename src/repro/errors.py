"""Exception hierarchy for the Liquid Metal reproduction.

Every error raised by the compiler, runtime, or device simulators derives
from :class:`LiquidMetalError` so that callers can catch the whole family
with one handler while tests can assert on precise subclasses.
"""

from __future__ import annotations


class LiquidMetalError(Exception):
    """Base class for all errors raised by this package."""


class SourcePosition:
    """A (line, column) position in a Lime source file.

    Both coordinates are 1-based, matching what editors display.
    """

    __slots__ = ("line", "column", "filename")

    def __init__(self, line: int, column: int, filename: str = "<lime>"):
        self.line = line
        self.column = column
        self.filename = filename

    def __repr__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SourcePosition):
            return NotImplemented
        return (self.line, self.column, self.filename) == (
            other.line,
            other.column,
            other.filename,
        )

    def __hash__(self) -> int:
        return hash((self.line, self.column, self.filename))


class LimeSyntaxError(LiquidMetalError):
    """Lexical or syntactic error in Lime source code."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.position = position
        if position is not None:
            message = f"{position}: {message}"
        super().__init__(message)


class LimeTypeError(LiquidMetalError):
    """Semantic error: type mismatch, isolation violation, etc."""

    def __init__(self, message: str, position: SourcePosition | None = None):
        self.position = position
        if position is not None:
            message = f"{position}: {message}"
        super().__init__(message)


class IsolationError(LimeTypeError):
    """Violation of the ``value``/``local`` strong-isolation rules."""


class TaskGraphError(LimeTypeError):
    """A task graph is malformed or its static shape cannot be determined.

    The paper (Section 3) requires that when relocation brackets are
    present but the compiler fails to determine the shape of the task
    graph, the programmer is informed at compile time.
    """


class LoweringError(LiquidMetalError):
    """Internal error while lowering the AST to IR."""


class BackendError(LiquidMetalError):
    """A backend device compiler failed on input it claimed to accept."""


class ExclusionNotice(LiquidMetalError):
    """Raised internally when a backend excludes a task from compilation.

    This is not a user-visible failure: per Section 3 of the paper, a
    task containing constructs unsuitable for a device is simply
    excluded from that backend. The notice carries the reason so the
    compile report can show *why* a device artifact is missing.
    """

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


class ConfigurationError(LiquidMetalError):
    """Invalid compiler or runtime configuration (caught at
    construction time by ``RuntimeConfig.validate`` /
    ``CompileOptions`` rather than deep inside the engine)."""


class TraceExportError(LiquidMetalError):
    """An exported trace failed schema validation or could not be
    read back (the ``make trace-smoke`` gate)."""


class RuntimeGraphError(LiquidMetalError):
    """Error while constructing or executing a runtime task graph."""


class MarshalingError(LiquidMetalError):
    """Error serializing or deserializing a value across the boundary."""


class DeviceError(LiquidMetalError):
    """Error inside a device simulator (GPU, FPGA, interconnect)."""


class SimulationError(DeviceError):
    """The FPGA cycle simulator detected an inconsistency (e.g. a
    combinational loop or an X-valued control signal)."""


class DeviceTimeoutError(DeviceError):
    """A device task stalled past its watchdog deadline.

    Raised by the :class:`~repro.runtime.scheduler.ThreadedScheduler`
    stage watchdog and by injected stage-stall faults. Carries the
    stage/device so the supervisor can demote the right span, plus —
    when the run belongs to a service job — the ``job_id``/``tenant``
    so service-level error reports are attributable.
    """

    def __init__(self, message: str, task_id: str | None = None,
                 device: str | None = None, job_id: str | None = None,
                 tenant: str | None = None):
        self.task_id = task_id
        self.device = device
        self.job_id = job_id
        self.tenant = tenant
        super().__init__(message)


class RetryExhaustedError(LiquidMetalError):
    """The supervisor gave up retrying a device task and no bytecode
    fallback was available. Carries the failing task/device context,
    the last underlying error (also chained via ``__cause__``), and —
    for service jobs — the ``job_id``/``tenant`` the failure belongs
    to."""

    def __init__(self, message: str, task_id: str | None = None,
                 device: str | None = None, attempts: int = 0,
                 cause: "BaseException | None" = None,
                 job_id: str | None = None, tenant: str | None = None):
        self.task_id = task_id
        self.device = device
        self.attempts = attempts
        self.cause = cause
        self.job_id = job_id
        self.tenant = tenant
        super().__init__(message)


class JobCancelledError(LiquidMetalError):
    """A service job was cancelled (explicitly, or by its deadline)
    before it completed.

    Cooperative: the runtime raises it at the next stage/firing
    boundary after the job's :class:`~repro.runtime.cancel.CancelToken`
    trips. ``reason`` is ``"cancelled"`` for explicit cancellation and
    ``"deadline"`` for deadline expiry.
    """

    def __init__(self, message: str, job_id: str | None = None,
                 tenant: str | None = None, reason: str = "cancelled"):
        self.job_id = job_id
        self.tenant = tenant
        self.reason = reason
        super().__init__(message)


class AdmissionRejected(LiquidMetalError):
    """The co-execution service refused a job submission — the
    tenant's queue is at its depth bound (or the service is draining).

    An honest rejection: carries the tenant, the observed queue depth,
    and a ``retry_after_s`` hint estimating when capacity should free
    up, so a client can back off instead of hammering a saturated
    pool."""

    def __init__(self, message: str, tenant: str | None = None,
                 queue_depth: int = 0,
                 retry_after_s: float = 0.0, reason: str = "saturated"):
        self.tenant = tenant
        self.queue_depth = queue_depth
        self.retry_after_s = retry_after_s
        self.reason = reason
        super().__init__(message)


class ValueSemanticsError(LiquidMetalError):
    """Attempt to violate value semantics at run time (e.g. mutating a
    value array)."""


class JobResultTimeout(LiquidMetalError):
    """``CoExecutionService.result(timeout_s=...)`` gave up waiting.

    Not a job failure: the job is still in flight (or stuck). Carries
    the job id and the state it was observed in so a client can decide
    to keep waiting, cancel, or escalate."""

    def __init__(self, message: str, job_id: str | None = None,
                 state: str | None = None,
                 timeout_s: float | None = None):
        self.job_id = job_id
        self.state = state
        self.timeout_s = timeout_s
        super().__init__(message)


class CheckpointReplayError(LiquidMetalError):
    """A checkpoint frame disagrees with the re-executing run (stage
    key, call order, or item count diverged). The frame is discarded
    and the job is re-run from scratch — recovery stays correct, just
    slower (docs/RECOVERY.md)."""

    def __init__(self, message: str, job_id: str | None = None):
        self.job_id = job_id
        super().__init__(message)


class ProcessCrash(BaseException):
    """A simulated host-process crash (the ``crash`` fault kind).

    Deliberately derives from :class:`BaseException`, *not*
    :class:`LiquidMetalError`: a crash is not a device fault the
    supervisor may retry or a failure a generic handler may swallow —
    it must unwind the whole service dispatch, exactly like a real
    ``kill -9`` would. The co-execution service catches it at the job
    boundary, appends a ``crashed`` journal record, and marks the
    journal dead (docs/RECOVERY.md)."""

    def __init__(self, message: str, site: str = "", target: str = "",
                 spec_index: int = 0, call_index: int = 0,
                 job_id: str | None = None, tenant: str | None = None):
        self.site = site
        self.target = target
        self.spec_index = spec_index
        self.call_index = call_index
        self.job_id = job_id
        self.tenant = tenant
        super().__init__(message)
