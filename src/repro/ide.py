"""IDE-style views over compilation results (Section 5).

The paper's Eclipse plugin marks source lines for which "the compiler
generated a device artifact for the corresponding task in the
relocation brackets" (the green underline at Figure 4's line 18).
:func:`annotate_source` renders the same information textually: each
source line prefixed by its number and a marker column showing the
devices with artifacts for the task expressions on that line.
"""

from __future__ import annotations

from repro.compiler import CompileResult

_DEVICE_MARKS = {"gpu": "G", "fpga": "F"}


def _line_devices(result: CompileResult) -> dict:
    """Map source line -> set of device kinds with artifacts for a
    stage whose task expression sits on that line."""
    lines: dict[int, set] = {}
    for graph in result.task_graphs:
        for stage in graph.stages:
            if stage.position is None:
                continue
            devices = {
                artifact.device
                for artifact in result.store.for_task(stage.task_id)
                if artifact.device != "bytecode"
            }
            if devices:
                lines.setdefault(stage.position.line, set()).update(
                    devices
                )
    return lines


def annotate_source(result: CompileResult) -> str:
    """Render the program with per-line device-artifact markers.

    Marker column: ``G`` = GPU artifact, ``F`` = FPGA artifact, ``●``
    shown when any device artifact exists (the IDE's round marker).
    """
    device_lines = _line_devices(result)
    out = []
    for number, text in enumerate(result.source.splitlines(), start=1):
        devices = device_lines.get(number, set())
        marks = "".join(
            _DEVICE_MARKS[d] for d in sorted(devices) if d in _DEVICE_MARKS
        )
        bullet = "●" if devices else " "
        out.append(f"{number:4d} {bullet}{marks:<3s}| {text}")
    legend = (
        "\n legend: ● task has device artifacts "
        "(G = OpenCL/GPU, F = Verilog/FPGA)"
    )
    return "\n".join(out) + legend


def exclusion_notes(result: CompileResult) -> str:
    """The IDE's problem-view equivalent: why tasks were excluded."""
    if not result.store.exclusions:
        return "(no exclusions)"
    out = []
    for exclusion in result.store.exclusions:
        out.append(
            f"[{exclusion.device}] {exclusion.task_id}\n"
            f"    {exclusion.reason}"
        )
    return "\n".join(out)
