"""Intermediate representation: function IR, task-graph IR, lowering,
shape discovery, and shallow optimizations."""

from repro.ir.builder import lower
from repro.ir.fusion import (
    FusionGroup,
    FusionOptions,
    FusionPlan,
    apply_fusion,
    fuse_module,
    plan_fusion,
    render_fused_ir,
)
from repro.ir.nodes import IRFunction, IRModule
from repro.ir.optimizations import optimize
from repro.ir.shape import discover_task_graphs
from repro.ir.taskgraph import StageIR, TaskGraphIR
from repro.ir.verifier import verify_module


def build_ir(checked, run_optimizations: bool = True) -> IRModule:
    """Lower a checked program, optimize, verify, and discover task
    graphs. Verification is an internal consistency check on the
    lowerer/optimizer output (compiler bugs, not user errors)."""
    module = lower(checked)
    if run_optimizations:
        optimize(module)
    verify_module(module)
    discover_task_graphs(module)
    return module


__all__ = [
    "FusionGroup",
    "FusionOptions",
    "FusionPlan",
    "IRFunction",
    "IRModule",
    "StageIR",
    "TaskGraphIR",
    "apply_fusion",
    "build_ir",
    "discover_task_graphs",
    "fuse_module",
    "lower",
    "optimize",
    "plan_fusion",
    "render_fused_ir",
]
