"""Lowering from the checked Lime AST to the function IR.

The lowerer desugars:

* compound assignment and ++/-- into explicit load/op/store,
* canonical counted ``for`` loops into :class:`SFor` (other loop shapes
  become :class:`SWhile`),
* relocation brackets into ``relocatable`` flags on the task nodes they
  enclose,
* bare field reads into explicit ``this`` accesses,
* instance field initializers into constructor prologues (a synthetic
  ``<init>`` is produced for every non-enum class).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LoweringError
from repro.lime import ast_nodes as ast
from repro.lime import types as ty
from repro.lime.symbols import CheckedProgram, ClassInfo
from repro.ir import nodes as ir
from repro.values.bits import Bit
from repro.values.arrays import ValueArray
from repro.values.enums import EnumValue


class Lowerer:
    def __init__(self, checked: CheckedProgram):
        self.checked = checked
        self.module = ir.IRModule(functions={}, classes={}, checked=checked)
        self._current_class: Optional[ClassInfo] = None
        self._reloc_depth = 0

    # ------------------------------------------------------------------

    def lower(self) -> ir.IRModule:
        for name, info in self.checked.classes.items():
            if info.decl is None:  # the built-in bit enum
                self.module.classes[name] = ir.IRClass(
                    name, True, True, ["zero", "one"], [], {}
                )
                continue
            self._lower_class(info)
        return self.module

    def _lower_class(self, info: ClassInfo) -> None:
        decl = info.decl
        field_names = [
            f.name for f in decl.fields if not f.is_static
        ]
        field_types = {
            f.name: info.fields[f.name].type
            for f in decl.fields
            if not f.is_static
        }
        statics = {}
        static_types = {}
        self._current_class = info
        for f in decl.fields:
            if f.is_static:
                statics[f.name] = (
                    self._expr(f.init) if f.init is not None else None
                )
                static_types[f.name] = info.fields[f.name].type
        self.module.classes[info.name] = ir.IRClass(
            info.name,
            info.is_value,
            info.is_enum,
            list(decl.enum_constants),
            field_names,
            field_types,
            statics,
            static_types,
        )
        for method in decl.methods:
            if method.is_constructor:
                continue
            self._lower_method(info, method)
        if not info.is_enum:
            self._lower_constructor(info, decl)
        self._current_class = None

    def _lower_method(self, info: ClassInfo, method: ast.MethodDecl) -> None:
        minfo = method.signature
        params = [
            ir.IRParam(p.name, p.type) for p in method.params
        ]
        if not minfo.is_static:
            params.insert(0, ir.IRParam("this", info.type))
        body = self._block(method.body)
        qualified = minfo.qualified_name
        self.module.functions[qualified] = ir.IRFunction(
            qualified_name=qualified,
            params=params,
            return_type=minfo.return_type,
            body=body,
            is_static=minfo.is_static,
            is_local=minfo.is_local,
            is_pure=minfo.is_pure,
            class_name=info.name,
            facts=self.checked.method_facts.get(qualified),
        )

    def _lower_constructor(self, info: ClassInfo, decl: ast.ClassDecl) -> None:
        """Produce ``C.<init>`` — declared constructor body prefixed with
        instance-field-initializer stores."""
        prologue: list = []
        for f in decl.fields:
            if not f.is_static and f.init is not None:
                prologue.append(
                    ir.SFieldStore(
                        ir.EThis(info.type),
                        f.name,
                        info.name,
                        self._expr(f.init),
                    )
                )
        ctor = info.constructors[0] if info.constructors else None
        params: list = [ir.IRParam("this", info.type)]
        body = list(prologue)
        if ctor is not None and ctor.decl is not None:
            params += [
                ir.IRParam(p.name, p.type) for p in ctor.decl.params
            ]
            body += self._block(ctor.decl.body)
        qualified = f"{info.name}.<init>"
        self.module.functions[qualified] = ir.IRFunction(
            qualified_name=qualified,
            params=params,
            return_type=ty.VOID,
            body=body,
            is_static=False,
            is_local=ctor.is_local if ctor else info.is_value,
            is_constructor=True,
            class_name=info.name,
        )

    # -- statements ------------------------------------------------------

    def _block(self, block: ast.Block) -> list:
        out: list = []
        for stmt in block.statements:
            self._stmt(stmt, out)
        return out

    def _stmt(self, stmt: ast.Stmt, out: list) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self._stmt(inner, out)
            return
        if isinstance(stmt, ast.VarDecl):
            init = (
                self._expr(stmt.init)
                if stmt.init is not None
                else self._default_init(stmt.declared_type)
            )
            out.append(ir.SLet(stmt.name, stmt.declared_type, init))
            return
        if isinstance(stmt, ast.ExprStmt):
            self._expr_stmt(stmt.expr, out)
            return
        if isinstance(stmt, ast.If):
            then: list = []
            other: list = []
            self._stmt(stmt.then, then)
            if stmt.other is not None:
                self._stmt(stmt.other, other)
            out.append(ir.SIf(self._expr(stmt.cond), then, other))
            return
        if isinstance(stmt, ast.While):
            body: list = []
            self._stmt(stmt.body, body)
            out.append(ir.SWhile(self._expr(stmt.cond), body))
            return
        if isinstance(stmt, ast.For):
            self._lower_for(stmt, out)
            return
        if isinstance(stmt, ast.Return):
            value = self._expr(stmt.value) if stmt.value is not None else None
            out.append(ir.SReturn(value))
            return
        if isinstance(stmt, ast.Break):
            out.append(ir.SBreak())
            return
        if isinstance(stmt, ast.Continue):
            out.append(ir.SContinue())
            return
        raise LoweringError(f"cannot lower statement {stmt!r}")

    def _default_init(self, var_type: ty.Type) -> ir.IRExpr:
        if isinstance(var_type, ty.PrimType):
            defaults = {
                "int": 0,
                "long": 0,
                "float": 0.0,
                "double": 0.0,
                "boolean": False,
                "bit": Bit.ZERO,
            }
            return ir.EConst(var_type, defaults[var_type.name])
        raise LoweringError(
            f"declaration of {var_type} requires an initializer"
        )

    def _expr_stmt(self, expr: ast.Expr, out: list) -> None:
        if isinstance(expr, ast.Assign):
            self._lower_assign(expr, out)
            return
        if isinstance(expr, ast.Unary) and expr.op in (
            "++pre",
            "--pre",
            "++post",
            "--post",
        ):
            self._lower_incr(expr, out)
            return
        out.append(ir.SExpr(self._expr(expr)))

    def _lower_incr(self, expr: ast.Unary, out: list) -> None:
        delta_op = "+" if expr.op.startswith("++") else "-"
        target = expr.operand
        one = ir.EConst(target.type, 1)
        updated = ir.EBinary(
            target.type, delta_op, self._expr(target), one
        )
        self._store(target, updated, out)

    def _lower_assign(self, expr: ast.Assign, out: list) -> None:
        value = self._expr(expr.value)
        if expr.op != "=":
            op = expr.op[0]  # '+=' -> '+'
            current = self._expr(expr.target)
            value = ir.EBinary(expr.target.type, op, current, value)
        if value.type != expr.target.type and isinstance(
            expr.target.type, ty.PrimType
        ):
            value = ir.ECast(expr.target.type, value)
        self._store(expr.target, value, out)

    def _store(self, target: ast.Expr, value: ir.IRExpr, out: list) -> None:
        if isinstance(target, ast.Name):
            if target.resolution == "local":
                out.append(ir.SAssignLocal(target.ident, value))
                return
            if target.resolution == "field":
                out.append(
                    ir.SFieldStore(
                        ir.EThis(self._current_class.type),
                        target.ident,
                        self._current_class.name,
                        value,
                    )
                )
                return
            if target.resolution == "static_field":
                out.append(
                    ir.SStaticStore(
                        target.decl.owner.name, target.ident, value
                    )
                )
                return
        if isinstance(target, ast.Index):
            out.append(
                ir.SArrayStore(
                    self._expr(target.array),
                    self._expr(target.index),
                    value,
                )
            )
            return
        if isinstance(target, ast.FieldAccess):
            if target.resolution == "static_field":
                out.append(
                    ir.SStaticStore(
                        target.decl.owner.name, target.name, value
                    )
                )
                return
            out.append(
                ir.SFieldStore(
                    self._expr(target.receiver),
                    target.name,
                    target.decl.owner.name,
                    value,
                )
            )
            return
        raise LoweringError(f"cannot lower store to {target!r}")

    def _lower_for(self, stmt: ast.For, out: list) -> None:
        canonical = self._try_canonical_for(stmt)
        if canonical is not None:
            out.append(canonical)
            return
        # General shape: init; while (cond) { body; update; }
        if stmt.init is not None:
            self._stmt(stmt.init, out)
        body: list = []
        self._stmt(stmt.body, body)
        if stmt.update is not None:
            if any(
                isinstance(s, ir.SContinue)
                for s in ir.walk_stmts(body)
            ):
                raise LoweringError(
                    "'continue' inside a non-canonical for loop is not "
                    "supported by the lowerer"
                )
            self._expr_stmt(stmt.update, body)
        cond = (
            self._expr(stmt.cond)
            if stmt.cond is not None
            else ir.EConst(ty.BOOLEAN, True)
        )
        out.append(ir.SWhile(cond, body))

    def _try_canonical_for(self, stmt: ast.For) -> Optional[ir.SFor]:
        """Recognize ``for (int i = start; i < limit; i++/i += step)``."""
        init = stmt.init
        if not isinstance(init, ast.VarDecl) or init.init is None:
            return None
        if init.declared_type not in (ty.INT, ty.LONG):
            return None
        var = init.name
        cond = stmt.cond
        if (
            not isinstance(cond, ast.Binary)
            or cond.op != "<"
            or not isinstance(cond.left, ast.Name)
            or cond.left.ident != var
        ):
            return None
        update = stmt.update
        step: Optional[ir.IRExpr] = None
        if (
            isinstance(update, ast.Unary)
            and update.op in ("++pre", "++post")
            and isinstance(update.operand, ast.Name)
            and update.operand.ident == var
        ):
            step = ir.EConst(ty.INT, 1)
        elif (
            isinstance(update, ast.Assign)
            and update.op == "+="
            and isinstance(update.target, ast.Name)
            and update.target.ident == var
        ):
            step = self._expr(update.value)
        if step is None:
            return None
        body: list = []
        self._stmt(stmt.body, body)
        return ir.SFor(
            var,
            self._expr(init.init),
            self._expr(cond.right),
            step,
            body,
        )

    # -- expressions -------------------------------------------------------

    def _expr(self, expr: ast.Expr) -> ir.IRExpr:
        if isinstance(expr, ast.IntLit):
            return ir.EConst(expr.type, expr.value)
        if isinstance(expr, ast.FloatLit):
            return ir.EConst(expr.type, float(expr.value))
        if isinstance(expr, ast.BoolLit):
            return ir.EConst(ty.BOOLEAN, expr.value)
        if isinstance(expr, ast.BitLit):
            return ir.EConst(expr.type, ValueArray.of_bits(expr.bits))
        if isinstance(expr, ast.StringLit):
            return ir.EConst(ty.STRING, expr.value)
        if isinstance(expr, ast.Name):
            return self._lower_name(expr)
        if isinstance(expr, ast.This):
            return ir.EThis(expr.type)
        if isinstance(expr, ast.FieldAccess):
            return self._lower_field_access(expr)
        if isinstance(expr, ast.Index):
            return ir.EIndex(
                expr.type, self._expr(expr.array), self._expr(expr.index)
            )
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.New):
            return self._lower_new(expr)
        if isinstance(expr, ast.Unary):
            return self._lower_unary(expr)
        if isinstance(expr, ast.Binary):
            return ir.EBinary(
                expr.type, expr.op, self._expr(expr.left), self._expr(expr.right)
            )
        if isinstance(expr, ast.Ternary):
            return ir.ETernary(
                expr.type,
                self._expr(expr.cond),
                self._expr(expr.then),
                self._expr(expr.other),
            )
        if isinstance(expr, ast.Cast):
            return ir.ECast(expr.type, self._expr(expr.operand))
        if isinstance(expr, ast.Assign):
            raise LoweringError(
                "assignment used as a value; Lime subset supports "
                "assignment statements only"
            )
        if isinstance(expr, ast.MapExpr):
            return ir.EMap(
                expr.type,
                expr.target.qualified_name,
                [self._expr(a) for a in expr.args],
                broadcast=list(getattr(expr, "broadcast", [])),
            )
        if isinstance(expr, ast.ReduceExpr):
            return ir.EReduce(
                expr.type,
                expr.target.qualified_name,
                [self._expr(a) for a in expr.args],
            )
        if isinstance(expr, ast.TaskExpr):
            task_type = expr.type
            instance = None
            if getattr(expr, "is_instance_task", False):
                instance = ir.ELocal(expr.receiver_type, expr.receiver)
            node = ir.EGraphTask(
                task_type,
                expr.target.qualified_name,
                relocatable=self._reloc_depth > 0,
                input_type=task_type.input,
                output_type=task_type.output,
                arity=len(expr.target.param_types),
                instance=instance,
            )
            node.src_position = expr.position
            return node
        if isinstance(expr, ast.ConnectExpr):
            return ir.EGraphConnect(
                expr.type, self._expr(expr.left), self._expr(expr.right)
            )
        if isinstance(expr, ast.RelocExpr):
            self._reloc_depth += 1
            try:
                return self._expr(expr.inner)
            finally:
                self._reloc_depth -= 1
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _lower_unary(self, expr: ast.Unary) -> ir.IRExpr:
        if expr.op in ("++pre", "--pre", "++post", "--post"):
            raise LoweringError(
                "++/-- may only be used as a statement or loop update "
                "in this Lime subset"
            )
        operand = self._expr(expr.operand)
        if expr.op == "~":
            if expr.operand.type == ty.BIT:
                return ir.EIntrinsic(ty.BIT, "bit.~", [operand])
            if (
                isinstance(expr.operand.type, ty.ClassType)
                and expr.operand.type.is_enum
            ):
                return ir.ECall(
                    expr.type, f"{expr.operand.type.name}.~", [operand]
                )
        return ir.EUnary(expr.type, expr.op, operand)

    def _lower_new(self, expr: ast.New) -> ir.IRExpr:
        if expr.array_length is not None:
            result_type = expr.type
            return ir.ENewArray(result_type, self._expr(expr.array_length))
        if isinstance(expr.type, ty.ArrayType) and expr.type.is_value_array:
            return ir.EFreeze(expr.type, self._expr(expr.args[0]))
        class_name = expr.type.name
        ctor = f"{class_name}.<init>"
        args = [self._expr(a) for a in expr.args]
        if expr.target is not None:
            args = self._coerce_args(args, expr.target.param_types)
        return ir.ENewObject(expr.type, class_name, ctor, args)

    def _lower_name(self, expr: ast.Name) -> ir.IRExpr:
        if expr.resolution == "local":
            return ir.ELocal(expr.type, expr.ident)
        if expr.resolution == "field":
            return ir.EFieldLoad(
                expr.type,
                ir.EThis(self._current_class.type),
                expr.ident,
                self._current_class.name,
            )
        if expr.resolution == "static_field":
            return ir.EStaticLoad(
                expr.type, expr.decl.owner.name, expr.ident
            )
        if expr.resolution == "enum_const":
            return self._enum_const(self._current_class, expr.ident, expr.type)
        raise LoweringError(f"cannot lower name {expr.ident!r}")

    def _enum_const(self, info: ClassInfo, constant: str, etype) -> ir.IRExpr:
        if info.name == "bit":
            return ir.EConst(ty.BIT, Bit(0 if constant == "zero" else 1))
        descriptor = info.enum_descriptor
        return ir.EConst(etype, descriptor.value_of(constant))

    def _lower_field_access(self, expr: ast.FieldAccess) -> ir.IRExpr:
        if expr.resolution == "length":
            return ir.ELength(ty.INT, self._expr(expr.receiver))
        if expr.resolution == "enum_const":
            info = self.checked.classes[expr.receiver.ident]
            return self._enum_const(info, expr.name, expr.type)
        if expr.resolution == "static_field":
            return ir.EStaticLoad(
                expr.type, expr.decl.owner.name, expr.name
            )
        return ir.EFieldLoad(
            expr.type,
            self._expr(expr.receiver),
            expr.name,
            expr.decl.owner.name,
        )

    def _lower_call(self, expr: ast.Call) -> ir.IRExpr:
        if expr.intrinsic is not None:
            return self._lower_intrinsic_call(expr)
        target = expr.target
        args = [self._expr(a) for a in expr.args]
        args = self._coerce_args(args, target.param_types)
        if not target.is_static:
            if expr.receiver is not None and expr.receiver.type is not None:
                receiver = self._expr(expr.receiver)
            else:
                receiver = ir.EThis(self._current_class.type)
            args.insert(0, receiver)
        return ir.ECall(target.return_type, target.qualified_name, args)

    def _coerce_args(self, args: list, param_types: list) -> list:
        coerced = []
        for arg, expected in zip(args, param_types):
            if arg.type != expected and isinstance(expected, ty.PrimType):
                arg = ir.ECast(expected, arg)
            coerced.append(arg)
        return coerced

    def _lower_intrinsic_call(self, expr: ast.Call) -> ir.IRExpr:
        name = expr.intrinsic
        if name in ("println", "print"):
            return ir.EIntrinsic(
                ty.VOID, name, [self._expr(expr.args[0])]
            )
        if name.startswith("Math."):
            return ir.EIntrinsic(
                expr.type, name, [self._expr(a) for a in expr.args]
            )
        if name == "source":
            rate = getattr(expr, "rate", None)
            if rate is None:
                raise LoweringError(
                    "source rate must be an integer literal so the "
                    "compiler can discover the task graph shape"
                )
            task_type = expr.type
            node = ir.EGraphSource(
                task_type,
                self._expr(expr.receiver),
                rate,
                element_type=task_type.output,
            )
            node.src_position = expr.position
            return node
        if name == "sink":
            task_type = expr.type
            node = ir.EGraphSink(
                task_type,
                self._expr(expr.receiver),
                element_type=task_type.input,
            )
            node.src_position = expr.position
            return node
        if name in ("start", "finish"):
            # Wrapped by _expr_stmt? start/finish are void calls used as
            # statements; represent as an intrinsic marker expression
            # that the statement layer rewraps.
            return ir.EIntrinsic(
                ty.VOID,
                f"graph.{name}",
                [self._expr(expr.receiver)],
            )
        raise LoweringError(f"unknown intrinsic {name!r}")


def _rewrite_graph_starts(body: list) -> None:
    """Replace SExpr(EIntrinsic('graph.start'/'graph.finish')) with the
    dedicated SGraphStart statement, recursively."""
    for i, stmt in enumerate(body):
        if isinstance(stmt, ir.SExpr) and isinstance(stmt.expr, ir.EIntrinsic):
            if stmt.expr.name in ("graph.start", "graph.finish"):
                body[i] = ir.SGraphStart(
                    stmt.expr.args[0],
                    blocking=stmt.expr.name == "graph.finish",
                )
        elif isinstance(stmt, ir.SIf):
            _rewrite_graph_starts(stmt.then)
            _rewrite_graph_starts(stmt.other)
        elif isinstance(stmt, (ir.SWhile, ir.SFor)):
            _rewrite_graph_starts(stmt.body)


def lower(checked: CheckedProgram) -> ir.IRModule:
    """Lower a checked program to IR (without optimization)."""
    module = Lowerer(checked).lower()
    for function in module.functions.values():
        _rewrite_graph_starts(function.body)
    return module
