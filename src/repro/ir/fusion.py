"""Profile-guided task fusion (docs/FUSION.md).

Adjacent data-parallel operators pay the marshaling boundary once per
stage: a ``g(f(x))`` map chain serializes the intermediate array out of
the device and straight back in, and a two-filter pipeline crosses the
0x09 batch boundary once per stage per batch. The fusion pass removes
those interior crossings:

* **map chains** — an :class:`~repro.ir.nodes.EMap` whose mapped
  argument is another EMap (directly, or through a single-use local)
  is rewritten to one EMap over a synthesized composite function whose
  body is ``return g(f(x))``. One kernel, one launch, one crossing per
  direction; the intermediate array is never serialized.
* **graph spans** — contiguous relocatable, stateless, arity-1 filter
  runs are recorded as fusion groups. The backends already emit
  multi-stage artifacts for these spans; the runtime's fusion mode
  (``RuntimeConfig.fusion``) decides whether substitution may take
  them (``auto``), must ignore them (``off``), or may take exactly the
  planned ones (``plan``).

The pass never fuses across stateful tasks, reduce barriers, or
non-relocatable stages; health-demoted spans are excluded at dispatch
time by :meth:`SubstitutionPolicy.allows` exactly as for any other
substitution.

Plans are first-class ``repro.fusion/1`` artifacts: saved to JSON,
inspected with ``python -m repro fuse``, and replayed deterministically
(``--fusion plan=FILE``). A plan records the pre-fusion IR fingerprint
so replay against a different program fails loudly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, LoweringError
from repro.ir import nodes as ir
from repro.ir.verifier import verify_module

#: Schema tag stamped on every serialized plan.
FUSION_SCHEMA = "repro.fusion/1"

#: Accepted fusion modes (compile-time and runtime).
FUSION_MODES = ("off", "auto", "plan")


@dataclass(frozen=True)
class FusionOptions:
    """Compile-time fusion knobs (a :class:`CompileOptions` block).

    ``mode='off'`` (the default) leaves the IR untouched. ``'auto'``
    plans and applies every legal group — optionally gated by the
    profile report at ``profile_path``. ``'plan'`` replays the saved
    ``repro.fusion/1`` plan at ``plan_path`` deterministically.
    """

    mode: str = "off"
    plan_path: str = ""
    profile_path: str = ""

    def __post_init__(self):
        self.validate()

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    def validate(self) -> "FusionOptions":
        if self.mode not in FUSION_MODES:
            raise ConfigurationError(
                f"unknown fusion mode {self.mode!r}; expected one of "
                + ", ".join(FUSION_MODES)
            )
        if self.mode == "plan" and not self.plan_path:
            raise ConfigurationError(
                "fusion mode 'plan' requires plan_path "
                "(--fusion plan=FILE)"
            )
        return self

    @classmethod
    def from_flag(cls, flag: "str | None",
                  profile_path: str = "") -> "FusionOptions":
        """Parse the CLI ``--fusion {off,auto,plan=FILE}`` value."""
        if flag is None:
            return cls()
        if flag.startswith("plan="):
            return cls(
                mode="plan",
                plan_path=flag[len("plan="):],
                profile_path=profile_path,
            )
        return cls(mode=flag, profile_path=profile_path)


# ---------------------------------------------------------------------------
# Plan artifact
# ---------------------------------------------------------------------------


@dataclass
class FusionGroup:
    """One fusable unit: a map chain or a task-graph span."""

    kind: str                 # 'map' | 'graph'
    task_ids: list            # map: [inner, outer] task ids; graph: span
    fused: str = ""           # synthesized function name (map groups)
    site: str = ""            # host function holding the chain (map)
    graph_id: str = ""        # owning graph (graph groups)
    reason: str = "static"    # why the planner kept (or dropped) it

    def key(self) -> tuple:
        return (self.kind, tuple(self.task_ids), self.site, self.graph_id)

    def to_dict(self) -> dict:
        data = {"kind": self.kind, "task_ids": list(self.task_ids)}
        if self.fused:
            data["fused"] = self.fused
        if self.site:
            data["site"] = self.site
        if self.graph_id:
            data["graph_id"] = self.graph_id
        data["reason"] = self.reason
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FusionGroup":
        return cls(
            kind=data["kind"],
            task_ids=list(data["task_ids"]),
            fused=data.get("fused", ""),
            site=data.get("site", ""),
            graph_id=data.get("graph_id", ""),
            reason=data.get("reason", "static"),
        )


@dataclass
class FusionPlan:
    """A saved, inspectable, replayable fusion decision set."""

    program: str = ""              # pre-fusion ir_fingerprint
    groups: list = field(default_factory=list)
    rejected: list = field(default_factory=list)
    profile: str = ""              # where the evidence came from

    @property
    def map_groups(self) -> list:
        return [g for g in self.groups if g.kind == "map"]

    @property
    def graph_groups(self) -> list:
        return [g for g in self.groups if g.kind == "graph"]

    def allows_span(self, task_ids) -> bool:
        """True when a multi-stage artifact covering exactly
        ``task_ids`` is sanctioned by this plan (runtime 'plan' mode)."""
        covered = list(task_ids)
        return any(
            group.task_ids == covered for group in self.graph_groups
        )

    def to_dict(self) -> dict:
        return {
            "schema": FUSION_SCHEMA,
            "program": self.program,
            "profile": self.profile,
            "groups": [g.to_dict() for g in self.groups],
            "rejected": [g.to_dict() for g in self.rejected],
        }

    def dumps(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.dumps())

    @classmethod
    def from_dict(cls, data: dict) -> "FusionPlan":
        problems = validate_plan_data(data)
        if problems:
            raise ConfigurationError(
                "invalid fusion plan: " + "; ".join(problems)
            )
        return cls(
            program=data.get("program", ""),
            profile=data.get("profile", ""),
            groups=[FusionGroup.from_dict(g) for g in data["groups"]],
            rejected=[
                FusionGroup.from_dict(g) for g in data.get("rejected", [])
            ],
        )

    @classmethod
    def loads(cls, text: str) -> "FusionPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FusionPlan":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.loads(handle.read())
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read fusion plan {path!r}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fusion plan {path!r} is not valid JSON: {exc}"
            ) from exc

    def describe(self) -> str:
        """Human-readable plan rendering (`python -m repro fuse`)."""
        lines = [f"fusion plan ({FUSION_SCHEMA})"]
        if self.program:
            lines.append(f"program: {self.program[:16]}…")
        if self.profile:
            lines.append(f"profile: {self.profile}")
        lines.append(f"groups: {len(self.groups)}")
        for group in self.groups:
            arrow = " -> ".join(group.task_ids)
            where = group.site or group.graph_id
            lines.append(f"  [{group.kind:5s}] {arrow}")
            lines.append(f"          at {where}: {group.reason}")
        if self.rejected:
            lines.append(f"rejected: {len(self.rejected)}")
            for group in self.rejected:
                arrow = " -> ".join(group.task_ids)
                lines.append(f"  [{group.kind:5s}] {arrow}: {group.reason}")
        return "\n".join(lines)


def validate_plan_data(data) -> list:
    """Problems with a ``repro.fusion/1`` payload; empty means valid."""
    problems: list = []
    if not isinstance(data, dict):
        return ["plan must be a JSON object"]
    if data.get("schema") != FUSION_SCHEMA:
        problems.append(
            f"schema must be {FUSION_SCHEMA!r}, got {data.get('schema')!r}"
        )
    groups = data.get("groups")
    if not isinstance(groups, list):
        problems.append("groups must be a list")
        groups = []
    for i, group in enumerate(groups):
        if not isinstance(group, dict):
            problems.append(f"groups[{i}] must be an object")
            continue
        kind = group.get("kind")
        if kind not in ("map", "graph"):
            problems.append(f"groups[{i}].kind must be 'map' or 'graph'")
        task_ids = group.get("task_ids")
        if (
            not isinstance(task_ids, list)
            or len(task_ids) < 2
            or not all(isinstance(t, str) for t in task_ids)
        ):
            problems.append(
                f"groups[{i}].task_ids must list >= 2 task id strings"
            )
        if kind == "graph" and not group.get("graph_id"):
            problems.append(f"groups[{i}] (graph) must name its graph_id")
    return problems


# ---------------------------------------------------------------------------
# Map-chain discovery
# ---------------------------------------------------------------------------


@dataclass
class _MapSite:
    """One fusable map pair found in a function body."""

    function: ir.IRFunction
    outer: ir.EMap
    arg_pos: int
    inner: ir.EMap
    let_stmt: "ir.SLet | None" = None   # chained through a local
    block: "list | None" = None         # statement list holding the let

    @property
    def inner_method(self) -> str:
        return self.inner.method

    @property
    def outer_method(self) -> str:
        return self.outer.method

    def task_ids(self) -> list:
        return [f"map:{self.inner.method}", f"map:{self.outer.method}"]


def _broadcast_of(emap: ir.EMap) -> list:
    """The EMap's broadcast flags, normalized to full arg length (an
    empty list means every argument is mapped)."""
    flags = list(emap.broadcast)
    if not flags:
        flags = [False] * len(emap.args)
    return flags


def _function_blocks(function: ir.IRFunction):
    """Yield every statement list of a function body, outermost first."""
    pending = [function.body]
    while pending:
        block = pending.pop(0)
        yield block
        for stmt in block:
            if isinstance(stmt, ir.SIf):
                pending.append(stmt.then)
                pending.append(stmt.other)
            elif isinstance(stmt, (ir.SWhile, ir.SFor)):
                pending.append(stmt.body)


def _local_uses(function: ir.IRFunction, name: str) -> int:
    uses = 0
    for stmt in ir.walk_stmts(function.body):
        if isinstance(stmt, ir.SAssignLocal) and stmt.name == name:
            return -1  # reassigned: never forwardable
        for expr in ir.stmt_exprs(stmt):
            for node in ir.walk_expr(expr):
                if isinstance(node, ir.ELocal) and node.name == name:
                    uses += 1
    return uses


def _fusable_target(module: ir.IRModule, method: str) -> bool:
    """Map targets must be known, pure, static functions — the function
    IR analog of 'never fuse across stateful tasks'."""
    function = module.functions.get(method)
    return (
        function is not None
        and function.is_pure
        and function.is_static
        and not function.is_constructor
    )


def _direct_sites(module: ir.IRModule, function: ir.IRFunction):
    """Fusable ``g(f(x))`` pairs where the inner EMap is nested
    directly in the outer's argument list. EReduce arguments are never
    considered — a reduce is a barrier, not a map link."""
    sites = []
    for stmt in ir.walk_stmts(function.body):
        for expr in ir.stmt_exprs(stmt):
            for node in ir.walk_expr(expr):
                if not isinstance(node, ir.EMap):
                    continue
                flags = _broadcast_of(node)
                for pos, (arg, is_broadcast) in enumerate(
                    zip(node.args, flags)
                ):
                    if is_broadcast or not isinstance(arg, ir.EMap):
                        continue
                    if not (
                        _fusable_target(module, node.method)
                        and _fusable_target(module, arg.method)
                    ):
                        continue
                    sites.append(
                        _MapSite(
                            function=function,
                            outer=node,
                            arg_pos=pos,
                            inner=arg,
                        )
                    )
    return sites


def _let_sites(module: ir.IRModule, function: ir.IRFunction):
    """Fusable pairs chained through a single-use local::

        var t = C @ f(xs);
        return C @ g(t);

    Conservative forwarding: the local must be initialized from an
    EMap, never reassigned, used exactly once, and that use must be a
    mapped (non-broadcast) argument of an EMap in a *later statement of
    the same block* — so the forwarded computation cannot move into a
    loop or change how often it runs."""
    sites = []
    for block in _function_blocks(function):
        for index, stmt in enumerate(block):
            if not (
                isinstance(stmt, ir.SLet)
                and isinstance(stmt.init, ir.EMap)
            ):
                continue
            if _local_uses(function, stmt.name) != 1:
                continue
            inner = stmt.init
            found = None
            for later in block[index + 1:]:
                for expr in ir.stmt_exprs(later):
                    for node in ir.walk_expr(expr):
                        if not isinstance(node, ir.EMap):
                            continue
                        flags = _broadcast_of(node)
                        for pos, (arg, is_broadcast) in enumerate(
                            zip(node.args, flags)
                        ):
                            if (
                                not is_broadcast
                                and isinstance(arg, ir.ELocal)
                                and arg.name == stmt.name
                            ):
                                found = (node, pos)
                                break
                        if found:
                            break
                    if found:
                        break
                if found:
                    break
            if found is None:
                continue
            outer, pos = found
            if not (
                _fusable_target(module, outer.method)
                and _fusable_target(module, inner.method)
            ):
                continue
            sites.append(
                _MapSite(
                    function=function,
                    outer=outer,
                    arg_pos=pos,
                    inner=inner,
                    let_stmt=stmt,
                    block=block,
                )
            )
    return sites


def find_map_sites(module: ir.IRModule) -> list:
    """All currently fusable map pairs, in deterministic order."""
    sites: list = []
    for name in sorted(module.functions):
        function = module.functions[name]
        sites.extend(_direct_sites(module, function))
        sites.extend(_let_sites(module, function))
    return sites


# ---------------------------------------------------------------------------
# Graph-span discovery
# ---------------------------------------------------------------------------


def find_graph_groups(module: ir.IRModule) -> list:
    """Fusable task-graph spans: maximal stateless runs inside each
    relocation region with at least two arity-1 filter stages. A
    stateful stage is a barrier that splits the run — fusion never
    crosses it."""
    groups: list = []
    for graph in module.task_graphs:
        for start, end in graph.relocation_regions():
            run: list = []
            for stage in graph.stages[start:end + 1]:
                barrier = (
                    stage.kind != "filter"
                    or stage.stateful
                    or stage.arity != 1
                )
                if barrier:
                    if len(run) >= 2:
                        groups.append(_graph_group(graph, run))
                    run = []
                else:
                    run.append(stage)
            if len(run) >= 2:
                groups.append(_graph_group(graph, run))
    return groups


def _graph_group(graph, stages) -> FusionGroup:
    return FusionGroup(
        kind="graph",
        task_ids=[s.task_id for s in stages],
        graph_id=graph.graph_id,
        reason="static: contiguous stateless relocatable span",
    )


# ---------------------------------------------------------------------------
# Profile-guided gating
# ---------------------------------------------------------------------------


def _profile_payload(profile) -> dict:
    if profile is None:
        return {}
    data = getattr(profile, "data", profile)
    if not isinstance(data, dict):
        raise ConfigurationError(
            "profile must be a repro.profile/1 dict or ProfileReport"
        )
    return data


def _offload_rows(payload: dict) -> dict:
    return {
        row.get("name"): row
        for row in payload.get("stages", [])
        if row.get("kind") == "offload"
    }

def _stage_rows(payload: dict) -> dict:
    return {
        row.get("name"): row
        for row in payload.get("stages", [])
        if row.get("kind") == "stage"
    }


def _gate_map_group(group: FusionGroup, payload: dict) -> "str | None":
    """Profile evidence that a map chain is worth fusing: one of its
    kernels was actually offloaded (`offload.kernel_us` exists for it),
    so each call paid `marshal.crossing_us` both ways. Returns the
    evidence string, or None to reject."""
    offloads = _offload_rows(payload)
    for task_id in group.task_ids:
        row = offloads.get(f"gpu:{task_id}")
        if row is not None and row.get("calls", 0) > 0:
            return (
                f"profile: gpu:{task_id} offloaded {row['calls']}x "
                f"({row.get('span_us', 0.0):.0f}us on critical path)"
            )
    return None


def _gate_graph_group(group: FusionGroup, payload: dict) -> "str | None":
    """Profile evidence for a graph span: its stages ran on a device
    (each batch paid a `marshal.batch` crossing per stage), or the
    fused artifact itself already shows up as an offload target."""
    offloads = _offload_rows(payload)
    stages = _stage_rows(payload)
    for device in ("gpu", "fpga"):
        fused_target = f"{device}:" + "+".join(group.task_ids)
        if fused_target in offloads:
            return f"profile: fused span already offloaded ({fused_target})"
    for task_id in group.task_ids:
        row = stages.get(task_id)
        if row is not None and row.get("device") not in (None, "bytecode"):
            return (
                f"profile: stage {task_id} ran on {row['device']} "
                f"({row.get('calls', 0)} firings)"
            )
    return None


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def plan_fusion(module: ir.IRModule, profile=None) -> FusionPlan:
    """Discover and apply every legal fusion group (mutating the
    module), recording each step in plan order. Multi-link chains fuse
    iteratively: ``h(g(f(x)))`` records ``f->g`` first, then
    ``fused(f,g)->h`` against the rewritten IR, so replaying the plan
    group-by-group reproduces the exact same module. With a profile
    report, only groups the evidence says are worth it are applied
    (critical-path offloads and marshaling crossings); the rest are
    recorded as rejected so the plan stays inspectable."""
    from repro.backends.artifacts import ir_fingerprint

    payload = _profile_payload(profile)
    plan = FusionPlan(
        program=ir_fingerprint(module),
        profile=payload.get("app", "") if payload else "",
    )
    decided: set = set()
    while True:
        progressed = False
        for site in find_map_sites(module):
            group = FusionGroup(
                kind="map",
                task_ids=site.task_ids(),
                fused=_fused_name(module, site),
                site=site.function.qualified_name,
                reason=(
                    "static: map chain"
                    + (" (via single-use local)" if site.let_stmt else "")
                ),
            )
            if group.key() in decided:
                continue
            decided.add(group.key())
            if payload:
                evidence = _gate_map_group(group, payload)
                if evidence is None:
                    group.reason = "profile: no offload evidence for chain"
                    plan.rejected.append(group)
                    continue
                group.reason = evidence
            _apply_site(module, site)
            plan.groups.append(group)
            progressed = True
            break  # re-discover against the rewritten IR
        if not progressed:
            break
    if plan.map_groups:
        verify_module(module)
    for group in find_graph_groups(module):
        if payload:
            evidence = _gate_graph_group(group, payload)
            if evidence is None:
                group.reason = "profile: span never ran on a device"
                plan.rejected.append(group)
                continue
            group.reason = evidence
        plan.groups.append(group)
    return plan


# ---------------------------------------------------------------------------
# Application (the IR rewrite)
# ---------------------------------------------------------------------------


def _fused_name(module: ir.IRModule, site: _MapSite) -> str:
    """Deterministic name for the synthesized composite function. The
    argument position is encoded when nonzero so ``g(f(x), y)`` and
    ``g(y, f(x))`` synthesize distinct composites."""
    outer_fn = module.functions[site.outer_method]
    owner = outer_fn.class_name or site.outer_method.split(".")[0]
    inner = site.inner_method.replace(".", "_")
    outer = site.outer_method.replace(".", "_")
    name = f"{owner}.fused_{inner}__{outer}"
    if site.arg_pos:
        name += f"_at{site.arg_pos}"
    return name


def _synthesize(module: ir.IRModule, site: _MapSite, name: str):
    """Build the composite ``return g(..., f(y...), ...)`` function and
    the argument/broadcast splice for the rewritten EMap."""
    inner_fn = module.functions[site.inner_method]
    outer_fn = module.functions[site.outer_method]
    params: list = []
    call_args: list = []
    fused_args: list = []
    fused_broadcast: list = []
    outer_flags = _broadcast_of(site.outer)
    inner_flags = _broadcast_of(site.inner)
    for pos, param in enumerate(outer_fn.params):
        if pos == site.arg_pos:
            inner_call_args = []
            for q, inner_param in enumerate(inner_fn.params):
                fresh = ir.IRParam(f"i{q}", inner_param.type)
                params.append(fresh)
                inner_call_args.append(
                    ir.ELocal(inner_param.type, fresh.name)
                )
                fused_args.append(site.inner.args[q])
                fused_broadcast.append(inner_flags[q])
            call_args.append(
                ir.ECall(
                    inner_fn.return_type,
                    site.inner_method,
                    inner_call_args,
                )
            )
        else:
            fresh = ir.IRParam(f"o{pos}", param.type)
            params.append(fresh)
            call_args.append(ir.ELocal(param.type, fresh.name))
            fused_args.append(site.outer.args[pos])
            fused_broadcast.append(outer_flags[pos])
    body = [
        ir.SReturn(
            ir.ECall(outer_fn.return_type, site.outer_method, call_args)
        )
    ]
    function = ir.IRFunction(
        qualified_name=name,
        params=params,
        return_type=outer_fn.return_type,
        body=body,
        is_static=True,
        is_local=True,
        is_pure=inner_fn.is_pure and outer_fn.is_pure,
        is_constructor=False,
        class_name=outer_fn.class_name,
    )
    return function, fused_args, fused_broadcast


def _apply_site(module: ir.IRModule, site: _MapSite) -> str:
    """Fuse one map pair in place; returns the fused function name."""
    name = _fused_name(module, site)
    function, fused_args, fused_broadcast = _synthesize(module, site, name)
    existing = module.functions.get(name)
    if existing is None:
        module.functions[name] = function
    # Rewrite the outer EMap node in place: same node object, so any
    # enclosing expression keeps pointing at the fused map.
    site.outer.method = name
    site.outer.args = fused_args
    site.outer.broadcast = fused_broadcast
    if site.let_stmt is not None and site.block is not None:
        site.block.remove(site.let_stmt)
    return name


def apply_fusion(
    module: ir.IRModule, plan: FusionPlan, check_program: bool = True
) -> dict:
    """Apply a plan's map groups to the module (in place) and validate
    its graph groups against the discovered task graphs. Deterministic
    replay: the same plan against the same program always produces the
    same rewritten IR; a plan recorded against a *different* program is
    rejected up front."""
    from repro.backends.artifacts import ir_fingerprint

    if check_program and plan.program:
        actual = ir_fingerprint(module)
        if actual != plan.program:
            raise ConfigurationError(
                "fusion plan was recorded against a different program "
                f"(plan {plan.program[:12]}…, module {actual[:12]}…); "
                "regenerate it with `python -m repro fuse`"
            )
    fused: list = []
    for group in plan.map_groups:
        site = _match_site(module, group)
        if site is None:
            raise LoweringError(
                "fusion plan does not match the program: no fusable "
                f"chain {' -> '.join(group.task_ids)} in "
                f"{group.site or '<any function>'}"
            )
        fused.append(_apply_site(module, site))
    for group in plan.graph_groups:
        _check_graph_group(module, group)
    if fused:
        verify_module(module)
    return {
        "map_fused": fused,
        "graph_groups": len(plan.graph_groups),
    }


def _match_site(module: ir.IRModule, group: FusionGroup):
    want_inner = group.task_ids[0].split("map:", 1)[-1]
    want_outer = group.task_ids[-1].split("map:", 1)[-1]
    for site in find_map_sites(module):
        if group.site and site.function.qualified_name != group.site:
            continue
        if (
            site.inner_method == want_inner
            and site.outer_method == want_outer
        ):
            return site
    return None


def _check_graph_group(module: ir.IRModule, group: FusionGroup) -> None:
    """A graph group must still describe a legal span: the fusion-pass
    verifier rules. Raises LoweringError on any violation."""
    graph = next(
        (
            g
            for g in module.task_graphs
            if g.graph_id == group.graph_id
        ),
        None,
    )
    if graph is None:
        raise LoweringError(
            f"fusion plan names unknown task graph {group.graph_id!r}"
        )
    by_id = {s.task_id: s for s in graph.stages}
    stages = []
    for task_id in group.task_ids:
        stage = by_id.get(task_id)
        if stage is None:
            raise LoweringError(
                f"fusion plan names unknown stage {task_id!r} in "
                f"graph {group.graph_id!r}"
            )
        stages.append(stage)
    indices = [s.index for s in stages]
    if indices != list(range(indices[0], indices[0] + len(indices))):
        raise LoweringError(
            f"fusion group {group.task_ids} is not contiguous in "
            f"graph {group.graph_id!r}"
        )
    for stage in stages:
        if stage.stateful:
            raise LoweringError(
                f"fusion group crosses stateful stage {stage.task_id!r}"
            )
        if not stage.relocatable:
            raise LoweringError(
                f"fusion group includes non-relocatable stage "
                f"{stage.task_id!r}"
            )
        if stage.arity != 1:
            raise LoweringError(
                f"fusion group includes arity-{stage.arity} stage "
                f"{stage.task_id!r}"
            )


def fuse_module(module: ir.IRModule, mode: str, plan_path: str = "",
                profile=None) -> "FusionPlan | None":
    """The compile-driver entry: plan (or load) and apply fusion in the
    requested mode. Returns the applied plan, or None for 'off'."""
    if mode not in FUSION_MODES:
        raise ConfigurationError(
            f"unknown fusion mode {mode!r}; expected one of "
            + ", ".join(FUSION_MODES)
        )
    if mode == "off":
        return None
    if mode == "plan":
        if not plan_path:
            raise ConfigurationError(
                "fusion mode 'plan' requires a plan file "
                "(--fusion plan=FILE)"
            )
        plan = FusionPlan.load(plan_path)
        apply_fusion(module, plan)
        return plan
    # 'auto': planning applies as it goes (iterative chain rewriting).
    return plan_fusion(module, profile=profile)


# ---------------------------------------------------------------------------
# Canonical fused-IR rendering (golden tests)
# ---------------------------------------------------------------------------


def _render_expr(expr) -> str:
    if isinstance(expr, ir.EConst):
        return repr(expr.value)
    if isinstance(expr, ir.ELocal):
        return expr.name
    if isinstance(expr, ir.ECall):
        args = ", ".join(_render_expr(a) for a in expr.args)
        return f"{expr.callee}({args})"
    if isinstance(expr, ir.EMap):
        args = ", ".join(_render_expr(a) for a in expr.args)
        return f"map[{expr.method}]({args})"
    if isinstance(expr, ir.EReduce):
        args = ", ".join(_render_expr(a) for a in expr.args)
        return f"reduce[{expr.method}]({args})"
    if isinstance(expr, ir.EBinary):
        return (
            f"({_render_expr(expr.left)} {expr.op} "
            f"{_render_expr(expr.right)})"
        )
    if isinstance(expr, ir.EUnary):
        return f"({expr.op}{_render_expr(expr.operand)})"
    if isinstance(expr, ir.ECast):
        return f"cast({_render_expr(expr.operand)})"
    if isinstance(expr, ir.EIndex):
        return f"{_render_expr(expr.array)}[{_render_expr(expr.index)}]"
    return f"<{type(expr).__name__}>"


def render_fused_ir(module: ir.IRModule, plan: FusionPlan) -> str:
    """Canonical printer output for the plan's fusion groups: the
    synthesized composite functions plus the sanctioned graph spans.
    Locked by tests/golden/fusion/ so any fusion-pass drift shows up
    as an explicit golden diff."""
    lines = [f"fused-ir {FUSION_SCHEMA}"]
    for group in plan.map_groups:
        lines.append("")
        lines.append(f"map-chain {' -> '.join(group.task_ids)}")
        lines.append(f"  site {group.site}")
        function = module.functions.get(group.fused)
        if function is None:
            lines.append(f"  fused {group.fused} (not applied)")
            continue
        params = ", ".join(
            f"{p.type} {p.name}" for p in function.params
        )
        lines.append(
            f"  fused {function.return_type} "
            f"{function.qualified_name}({params})"
        )
        for stmt in function.body:
            if isinstance(stmt, ir.SReturn) and stmt.value is not None:
                lines.append(f"    return {_render_expr(stmt.value)}")
            else:
                lines.append(f"    <{type(stmt).__name__}>")
    for group in plan.graph_groups:
        lines.append("")
        lines.append(f"graph-span {group.graph_id}")
        lines.append(f"  stages {' => '.join(group.task_ids)}")
    return "\n".join(lines) + "\n"
