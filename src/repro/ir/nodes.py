"""The Liquid Metal intermediate representation.

Section 1 of the paper: "a program is lowered into an intermediate
representation that describes the computation as independent but
interconnected computational nodes". Our IR has two levels:

* **function IR** — a typed, desugared, structured representation of
  each method body (statements/expressions with resolved names), which
  every backend consumes;
* **task-graph IR** (:mod:`repro.ir.taskgraph`) — the computational
  nodes (sources, filters, sinks) with their connections, discovered
  statically from the function IR.

Expression nodes carry their semantic type (:mod:`repro.lime.types`),
which backends translate to device-specific types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lime import types as ty

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class IRExpr:
    type: ty.Type


@dataclass
class EConst(IRExpr):
    """A literal of any value kind (int, float, bool, Bit, string,
    ValueArray for bit literals, EnumValue for enum constants)."""

    value: object


@dataclass
class ELocal(IRExpr):
    """A local variable or parameter read, by name (names are unique
    within a function because Lime forbids shadowing)."""

    name: str


@dataclass
class EThis(IRExpr):
    pass


@dataclass
class EFieldLoad(IRExpr):
    receiver: IRExpr
    field_name: str
    class_name: str


@dataclass
class EStaticLoad(IRExpr):
    """Read of a static field (mutable statics only appear in global
    code; final statics are usually constant-folded)."""

    class_name: str
    field_name: str


@dataclass
class EUnary(IRExpr):
    op: str  # '-', '!', '~'
    operand: IRExpr


@dataclass
class EBinary(IRExpr):
    op: str
    left: IRExpr
    right: IRExpr


@dataclass
class ETernary(IRExpr):
    cond: IRExpr
    then: IRExpr
    other: IRExpr


@dataclass
class ECast(IRExpr):
    operand: IRExpr


@dataclass
class EIndex(IRExpr):
    array: IRExpr
    index: IRExpr


@dataclass
class ELength(IRExpr):
    array: IRExpr


@dataclass
class ECall(IRExpr):
    """Direct call to a compiled Lime method, by qualified name."""

    callee: str
    args: list


@dataclass
class EIntrinsic(IRExpr):
    """Call to a runtime intrinsic: 'Math.sqrt', 'bit.~', 'println',
    'str.concat'."""

    name: str
    args: list


@dataclass
class ENewArray(IRExpr):
    """``new T[n]`` — a default-filled mutable array."""

    length: IRExpr


@dataclass
class EFreeze(IRExpr):
    """``new T[[]](mutable)`` — snapshot a mutable array into a value
    array (Figure 1, line 21)."""

    operand: IRExpr


@dataclass
class ENewObject(IRExpr):
    """``new C(args)``; ``ctor`` is the constructor's qualified name or
    None for the implicit default constructor."""

    class_name: str
    ctor: Optional[str]
    args: list


@dataclass
class EMap(IRExpr):
    """Data-parallel map of a pure method over value arrays
    (``C @ m(arrays...)``). The primary GPU offload unit.

    ``broadcast[i]`` marks argument i as a whole-value broadcast
    (same for every work item) rather than a mapped array."""

    method: str
    args: list
    broadcast: list = field(default_factory=list)


@dataclass
class EReduce(IRExpr):
    """Data-parallel reduction with a pure binary method
    (``C ! m(array)``)."""

    method: str
    args: list


# Task-graph construction expressions (only in global code) ----------------


@dataclass
class EGraphSource(IRExpr):
    """``arr.source(rate)``."""

    array: IRExpr
    rate: int
    element_type: ty.Type = None


@dataclass
class EGraphSink(IRExpr):
    """``arr.sink()`` — accumulates into the (host-side) mutable array."""

    array: IRExpr
    element_type: ty.Type = None


@dataclass
class EGraphTask(IRExpr):
    """``task m`` — a filter actor applying method ``method``.

    ``relocatable`` is True when the task appeared inside relocation
    brackets ``([ ... ])``; only those tasks are offered to the device
    backends (Section 2.3).
    """

    method: str
    relocatable: bool = False
    input_type: ty.Type = None
    output_type: ty.Type = None
    arity: int = 1
    # Stateful tasks (Section 2.1): the instance expression whose
    # isolating-constructor-built object carries the pipeline state.
    instance: "IRExpr | None" = None


@dataclass
class EGraphConnect(IRExpr):
    left: IRExpr
    right: IRExpr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class IRStmt:
    pass


@dataclass
class SLet(IRStmt):
    """Declaration (with initializer) of a new local variable."""

    name: str
    var_type: ty.Type
    init: IRExpr


@dataclass
class SAssignLocal(IRStmt):
    name: str
    value: IRExpr


@dataclass
class SArrayStore(IRStmt):
    array: IRExpr
    index: IRExpr
    value: IRExpr


@dataclass
class SFieldStore(IRStmt):
    receiver: IRExpr
    field_name: str
    class_name: str
    value: IRExpr


@dataclass
class SStaticStore(IRStmt):
    class_name: str
    field_name: str
    value: IRExpr


@dataclass
class SIf(IRStmt):
    cond: IRExpr
    then: list
    other: list


@dataclass
class SWhile(IRStmt):
    cond: IRExpr
    body: list


@dataclass
class SFor(IRStmt):
    """Canonical counted loop: ``for (var = start; var < limit;
    var += step)``. Loops that do not fit the canonical shape lower to
    SWhile instead; the FPGA backend only accepts SFor with constant
    bounds (it fully unrolls or pipelines them)."""

    var: str
    start: IRExpr
    limit: IRExpr
    step: IRExpr
    body: list


@dataclass
class SBreak(IRStmt):
    pass


@dataclass
class SContinue(IRStmt):
    pass


@dataclass
class SReturn(IRStmt):
    value: Optional[IRExpr]


@dataclass
class SExpr(IRStmt):
    expr: IRExpr


@dataclass
class SGraphStart(IRStmt):
    """``g.start()`` / ``g.finish()`` on a task graph local."""

    graph: IRExpr
    blocking: bool  # finish() blocks; start() does not
    graph_id: Optional[str] = None  # filled by shape discovery


# ---------------------------------------------------------------------------
# Functions and the whole-program IR module
# ---------------------------------------------------------------------------


@dataclass
class IRParam:
    name: str
    type: ty.Type


@dataclass
class IRFunction:
    """One compiled method/constructor."""

    qualified_name: str
    params: list
    return_type: ty.Type
    body: list
    is_static: bool = True
    is_local: bool = False
    is_pure: bool = False
    is_constructor: bool = False
    class_name: str = ""
    facts: object = None

    def __repr__(self) -> str:
        params = ", ".join(f"{p.type} {p.name}" for p in self.params)
        return f"ir {self.return_type} {self.qualified_name}({params})"


@dataclass
class IRClass:
    name: str
    is_value: bool
    is_enum: bool
    enum_constants: list
    field_names: list
    field_types: dict
    static_fields: dict = field(default_factory=dict)  # name -> init IRExpr|None
    static_types: dict = field(default_factory=dict)   # name -> semantic type


@dataclass
class IRModule:
    """The whole program in IR form."""

    functions: dict        # qualified name -> IRFunction
    classes: dict          # class name -> IRClass
    task_graphs: list = field(default_factory=list)  # filled by shape discovery
    checked: object = None  # the CheckedProgram, for backends needing facts

    def function(self, qualified_name: str) -> IRFunction:
        return self.functions[qualified_name]


def walk_expr(expr: IRExpr):
    """Yield ``expr`` and all sub-expressions, preorder."""
    yield expr
    children: list = []
    if isinstance(expr, (EUnary, ECast, EFreeze)):
        children = [expr.operand]
    elif isinstance(expr, EBinary):
        children = [expr.left, expr.right]
    elif isinstance(expr, ETernary):
        children = [expr.cond, expr.then, expr.other]
    elif isinstance(expr, EIndex):
        children = [expr.array, expr.index]
    elif isinstance(expr, ELength):
        children = [expr.array]
    elif isinstance(expr, (ECall, EIntrinsic, EMap, EReduce)):
        children = list(expr.args)
    elif isinstance(expr, ENewArray):
        children = [expr.length]
    elif isinstance(expr, ENewObject):
        children = list(expr.args)
    elif isinstance(expr, EFieldLoad):
        children = [expr.receiver]
    elif isinstance(expr, EGraphSource):
        children = [expr.array]
    elif isinstance(expr, EGraphSink):
        children = [expr.array]
    elif isinstance(expr, EGraphConnect):
        children = [expr.left, expr.right]
    for child in children:
        yield from walk_expr(child)


def walk_stmts(stmts):
    """Yield every statement in a body, recursively."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, SIf):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.other)
        elif isinstance(stmt, SWhile):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, SFor):
            yield from walk_stmts(stmt.body)


def stmt_exprs(stmt: IRStmt):
    """The direct expressions of one statement (not recursive into
    nested statements)."""
    if isinstance(stmt, SLet):
        return [stmt.init]
    if isinstance(stmt, SAssignLocal):
        return [stmt.value]
    if isinstance(stmt, SArrayStore):
        return [stmt.array, stmt.index, stmt.value]
    if isinstance(stmt, SFieldStore):
        return [stmt.receiver, stmt.value]
    if isinstance(stmt, SStaticStore):
        return [stmt.value]
    if isinstance(stmt, SIf):
        return [stmt.cond]
    if isinstance(stmt, SWhile):
        return [stmt.cond]
    if isinstance(stmt, SFor):
        return [stmt.start, stmt.limit, stmt.step]
    if isinstance(stmt, SReturn):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, SExpr):
        return [stmt.expr]
    if isinstance(stmt, SGraphStart):
        return [stmt.graph]
    return []
