"""Shallow IR optimizations.

The paper's frontend "performs shallow optimizations" before emitting
bytecode (Section 3). We implement the classic shallow set:

* constant folding over arithmetic/logic/comparison operators,
* algebraic identity simplification (x+0, x*1, x*0, x&&true, …),
* branch pruning for constant conditions,
* unreachable-code elimination after return/break/continue.

All passes preserve types and evaluation order of side-effecting
expressions (calls are never folded or dropped).
"""

from __future__ import annotations

from typing import Optional

from repro.ir import nodes as ir
from repro.lime import types as ty

_INT_MASK = (1 << 32) - 1
_LONG_MASK = (1 << 64) - 1


def _wrap_int(value: int, type_: ty.Type) -> int:
    """Two's-complement wrap-around like the JVM."""
    if type_ == ty.INT:
        value &= _INT_MASK
        return value - (1 << 32) if value >= (1 << 31) else value
    if type_ == ty.LONG:
        value &= _LONG_MASK
        return value - (1 << 64) if value >= (1 << 63) else value
    return value


def fold_binary(op: str, left: object, right: object, type_: ty.Type):
    """Fold two Python-level constants; returns (ok, value)."""
    try:
        if op == "+":
            result = left + right
        elif op == "-":
            result = left - right
        elif op == "*":
            result = left * right
        elif op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    return False, None
                result = abs(left) // abs(right)
                if (left < 0) != (right < 0):
                    result = -result
            else:
                if right == 0:
                    return False, None
                result = left / right
        elif op == "%":
            if right == 0:
                return False, None
            if isinstance(left, int) and isinstance(right, int):
                result = abs(left) % abs(right)
                if left < 0:
                    result = -result
            else:
                import math

                result = math.fmod(left, right)
        elif op == "<<":
            result = left << (right & 31)
        elif op == ">>":
            result = left >> (right & 31)
        elif op == "&":
            result = left & right
        elif op == "|":
            result = left | right
        elif op == "^":
            result = left ^ right
        elif op == "==":
            result = left == right
        elif op == "!=":
            result = left != right
        elif op == "<":
            result = left < right
        elif op == ">":
            result = left > right
        elif op == "<=":
            result = left <= right
        elif op == ">=":
            result = left >= right
        elif op == "&&":
            result = left and right
        elif op == "||":
            result = left or right
        else:
            return False, None
    except TypeError:
        return False, None
    if isinstance(result, bool):
        return True, result
    if isinstance(result, int) and type_ in (ty.INT, ty.LONG):
        return True, _wrap_int(result, type_)
    if type_ in (ty.FLOAT, ty.DOUBLE):
        return True, float(result)
    return True, result


def _is_const(expr: ir.IRExpr, value=None) -> bool:
    if not isinstance(expr, ir.EConst):
        return False
    if value is None:
        return True
    return expr.value == value and not isinstance(expr.value, bool) or (
        isinstance(value, bool) and expr.value is value
    )


def _is_number(expr: ir.IRExpr, value: float) -> bool:
    return (
        isinstance(expr, ir.EConst)
        and isinstance(expr.value, (int, float))
        and not isinstance(expr.value, bool)
        and expr.value == value
    )


def _pure_expr(expr: ir.IRExpr) -> bool:
    """Conservatively: no calls, loads from mutable state are fine to
    duplicate-free drop but we only use this to *discard* expressions,
    so anything without calls/intrinsics/allocation is safe."""
    for e in ir.walk_expr(expr):
        if isinstance(
            e,
            (
                ir.ECall,
                ir.EIntrinsic,
                ir.ENewArray,
                ir.ENewObject,
                ir.EMap,
                ir.EReduce,
                ir.EGraphSource,
                ir.EGraphSink,
                ir.EGraphTask,
                ir.EGraphConnect,
            ),
        ):
            return False
    return True


class Optimizer:
    def __init__(self, module: ir.IRModule):
        self.module = module

    def run(self) -> ir.IRModule:
        for function in self.module.functions.values():
            function.body = self._stmts(function.body)
        return self.module

    # -- statements --------------------------------------------------

    def _stmts(self, body: list) -> list:
        out: list = []
        for stmt in body:
            simplified = self._stmt(stmt)
            if simplified is None:
                continue
            if isinstance(simplified, list):
                out.extend(simplified)
            else:
                out.append(simplified)
            last = out[-1] if out else None
            if isinstance(last, (ir.SReturn, ir.SBreak, ir.SContinue)):
                break  # anything after is unreachable
        return out

    def _stmt(self, stmt: ir.IRStmt):
        if isinstance(stmt, ir.SLet):
            stmt.init = self._expr(stmt.init)
            return stmt
        if isinstance(stmt, ir.SAssignLocal):
            stmt.value = self._expr(stmt.value)
            return stmt
        if isinstance(stmt, ir.SArrayStore):
            stmt.array = self._expr(stmt.array)
            stmt.index = self._expr(stmt.index)
            stmt.value = self._expr(stmt.value)
            return stmt
        if isinstance(stmt, ir.SFieldStore):
            stmt.receiver = self._expr(stmt.receiver)
            stmt.value = self._expr(stmt.value)
            return stmt
        if isinstance(stmt, ir.SStaticStore):
            stmt.value = self._expr(stmt.value)
            return stmt
        if isinstance(stmt, ir.SIf):
            stmt.cond = self._expr(stmt.cond)
            stmt.then = self._stmts(stmt.then)
            stmt.other = self._stmts(stmt.other)
            if isinstance(stmt.cond, ir.EConst):
                return stmt.then if stmt.cond.value else stmt.other
            if not stmt.then and not stmt.other and _pure_expr(stmt.cond):
                return None
            return stmt
        if isinstance(stmt, ir.SWhile):
            stmt.cond = self._expr(stmt.cond)
            stmt.body = self._stmts(stmt.body)
            if isinstance(stmt.cond, ir.EConst) and not stmt.cond.value:
                return None
            return stmt
        if isinstance(stmt, ir.SFor):
            stmt.start = self._expr(stmt.start)
            stmt.limit = self._expr(stmt.limit)
            stmt.step = self._expr(stmt.step)
            stmt.body = self._stmts(stmt.body)
            if (
                isinstance(stmt.start, ir.EConst)
                and isinstance(stmt.limit, ir.EConst)
                and stmt.start.value >= stmt.limit.value
            ):
                return None  # zero-trip loop
            return stmt
        if isinstance(stmt, ir.SReturn):
            if stmt.value is not None:
                stmt.value = self._expr(stmt.value)
            return stmt
        if isinstance(stmt, ir.SExpr):
            stmt.expr = self._expr(stmt.expr)
            if _pure_expr(stmt.expr):
                return None  # value discarded, no effects
            return stmt
        if isinstance(stmt, ir.SGraphStart):
            stmt.graph = self._expr(stmt.graph)
            return stmt
        return stmt

    # -- expressions ---------------------------------------------------

    def _expr(self, expr: ir.IRExpr) -> ir.IRExpr:
        # Recurse first.
        if isinstance(expr, ir.EUnary):
            expr.operand = self._expr(expr.operand)
            return self._fold_unary(expr)
        if isinstance(expr, ir.EBinary):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            return self._fold_binary_expr(expr)
        if isinstance(expr, ir.ETernary):
            expr.cond = self._expr(expr.cond)
            expr.then = self._expr(expr.then)
            expr.other = self._expr(expr.other)
            if isinstance(expr.cond, ir.EConst):
                return expr.then if expr.cond.value else expr.other
            return expr
        if isinstance(expr, ir.ECast):
            expr.operand = self._expr(expr.operand)
            return self._fold_cast(expr)
        if isinstance(expr, ir.EIndex):
            expr.array = self._expr(expr.array)
            expr.index = self._expr(expr.index)
            return expr
        if isinstance(expr, ir.ELength):
            expr.array = self._expr(expr.array)
            if isinstance(expr.array, ir.EConst):
                return ir.EConst(ty.INT, len(expr.array.value))
            return expr
        if isinstance(
            expr, (ir.ECall, ir.EIntrinsic, ir.EMap, ir.EReduce)
        ):
            expr.args = [self._expr(a) for a in expr.args]
            return expr
        if isinstance(expr, ir.ENewArray):
            expr.length = self._expr(expr.length)
            return expr
        if isinstance(expr, ir.ENewObject):
            expr.args = [self._expr(a) for a in expr.args]
            return expr
        if isinstance(expr, ir.EFieldLoad):
            expr.receiver = self._expr(expr.receiver)
            return expr
        if isinstance(expr, ir.EFreeze):
            expr.operand = self._expr(expr.operand)
            return expr
        if isinstance(expr, ir.EGraphSource):
            expr.array = self._expr(expr.array)
            return expr
        if isinstance(expr, ir.EGraphSink):
            expr.array = self._expr(expr.array)
            return expr
        if isinstance(expr, ir.EGraphConnect):
            expr.left = self._expr(expr.left)
            expr.right = self._expr(expr.right)
            return expr
        return expr

    def _fold_unary(self, expr: ir.EUnary) -> ir.IRExpr:
        operand = expr.operand
        if isinstance(operand, ir.EConst):
            value = operand.value
            if expr.op == "-" and isinstance(value, (int, float)):
                return ir.EConst(expr.type, _wrap_int(-value, expr.type))
            if expr.op == "!" and isinstance(value, bool):
                return ir.EConst(expr.type, not value)
            if expr.op == "~" and isinstance(value, int) and not isinstance(value, bool):
                return ir.EConst(expr.type, _wrap_int(~value, expr.type))
        # --x => x
        if (
            expr.op == "-"
            and isinstance(operand, ir.EUnary)
            and operand.op == "-"
        ):
            return operand.operand
        if (
            expr.op == "!"
            and isinstance(operand, ir.EUnary)
            and operand.op == "!"
        ):
            return operand.operand
        return expr

    def _fold_binary_expr(self, expr: ir.EBinary) -> ir.IRExpr:
        left, right = expr.left, expr.right
        if (
            isinstance(left, ir.EConst)
            and isinstance(right, ir.EConst)
            and expr.type != ty.STRING
        ):
            ok, value = fold_binary(
                expr.op, left.value, right.value, expr.type
            )
            if ok:
                return ir.EConst(expr.type, value)
        op = expr.op
        # Algebraic identities. Only applied when dropping the other
        # operand is effect-free.
        if op == "+":
            if _is_number(left, 0) and expr.type == right.type:
                return right
            if _is_number(right, 0) and expr.type == left.type:
                return left
        if op == "-" and _is_number(right, 0) and expr.type == left.type:
            return left
        if op == "*":
            if _is_number(left, 1) and expr.type == right.type:
                return right
            if _is_number(right, 1) and expr.type == left.type:
                return left
            if (
                _is_number(right, 0)
                and _pure_expr(left)
                and expr.type == right.type
            ):
                return right
            if (
                _is_number(left, 0)
                and _pure_expr(right)
                and expr.type == left.type
            ):
                return left
        if op == "/" and _is_number(right, 1) and expr.type == left.type:
            return left
        if op == "&&":
            if isinstance(left, ir.EConst):
                return right if left.value else left
            if isinstance(right, ir.EConst) and right.value:
                return left
        if op == "||":
            if isinstance(left, ir.EConst):
                return left if left.value else right
            if isinstance(right, ir.EConst) and not right.value:
                return left
        return expr

    def _fold_cast(self, expr: ir.ECast) -> ir.IRExpr:
        operand = expr.operand
        if operand.type == expr.type:
            return operand
        if isinstance(operand, ir.EConst) and isinstance(
            expr.type, ty.PrimType
        ):
            value = operand.value
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                if expr.type in (ty.INT, ty.LONG):
                    return ir.EConst(
                        expr.type, _wrap_int(int(value), expr.type)
                    )
                if expr.type in (ty.FLOAT, ty.DOUBLE):
                    return ir.EConst(expr.type, float(value))
        return expr


def optimize(module: ir.IRModule) -> ir.IRModule:
    """Run the shallow optimization pipeline in place."""
    return Optimizer(module).run()
