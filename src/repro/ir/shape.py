"""Static discovery of task-graph shapes.

Section 3 of the paper: "The compiler discovers the shape and other
properties of these task graphs statically. As expected, compile-time
analysis may not discover all possible task graphs that the program
might build. If the relocation brackets are present and the compiler
fails to determine the shape of the task graph, the programmer is
informed at compile time with an appropriate error message."

The analysis symbolically evaluates the *top-level straight-line*
statements of each global function, tracking which pipeline shape each
task-typed local holds. Graph construction under control flow (loops,
branches) defeats the analysis; that is an error when the undiscovered
graph contains relocation brackets, and merely leaves the graph as a
bytecode-only dynamic graph otherwise.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import TaskGraphError
from repro.ir import nodes as ir
from repro.ir.taskgraph import StageIR, TaskGraphIR

_GRAPH_EXPRS = (
    ir.EGraphSource,
    ir.EGraphSink,
    ir.EGraphTask,
    ir.EGraphConnect,
)


def _contains_graph_expr(expr: ir.IRExpr) -> bool:
    return any(isinstance(e, _GRAPH_EXPRS) for e in ir.walk_expr(expr))


def _nested_graph_construction(body: list) -> bool:
    """True if any graph expression occurs under control flow."""
    for stmt in body:
        if isinstance(stmt, ir.SIf):
            nested = list(ir.walk_stmts(stmt.then)) + list(
                ir.walk_stmts(stmt.other)
            )
        elif isinstance(stmt, (ir.SWhile, ir.SFor)):
            nested = list(ir.walk_stmts(stmt.body))
        else:
            continue
        for inner in nested:
            for expr in ir.stmt_exprs(inner):
                if _contains_graph_expr(expr):
                    return True
    return False


def _nested_has_relocatable(body: list) -> bool:
    for stmt in ir.walk_stmts(body):
        for expr in ir.stmt_exprs(stmt):
            for e in ir.walk_expr(expr):
                if isinstance(e, ir.EGraphTask) and e.relocatable:
                    return True
    return False


class _FunctionShapes:
    """Shape analysis of one function body."""

    def __init__(self, function: ir.IRFunction):
        self.function = function
        self.env: dict[str, list[StageIR]] = {}
        self.graphs: list[TaskGraphIR] = []
        self._graph_counter = 0
        self._stage_counter = 0

    def run(self) -> list:
        body = self.function.body
        if _nested_graph_construction(body):
            # Dynamic graph construction; only an error when relocation
            # brackets are involved.
            if _nested_has_relocatable(body):
                raise TaskGraphError(
                    f"in {self.function.qualified_name}: cannot "
                    "statically determine the shape of a task graph "
                    "built under control flow, but relocation brackets "
                    "request co-execution — restructure the graph "
                    "construction into straight-line code"
                )
            return []
        for stmt in body:
            self._visit(stmt)
        return self.graphs

    def _visit(self, stmt: ir.IRStmt) -> None:
        if isinstance(stmt, ir.SLet):
            if _contains_graph_expr(stmt.init):
                self.env[stmt.name] = self._eval(stmt.init)
            return
        if isinstance(stmt, ir.SAssignLocal):
            if _contains_graph_expr(stmt.value):
                self.env[stmt.name] = self._eval(stmt.value)
            return
        if isinstance(stmt, ir.SGraphStart):
            shape = self._eval(stmt.graph)
            graph = self._register_graph(shape)
            stmt.graph_id = graph.graph_id
            return
        # Straight-line statements with embedded graph expressions that
        # never reach a start() are legal but produce no static graph.

    def _eval(self, expr: ir.IRExpr) -> list:
        if isinstance(expr, ir.ELocal):
            shape = self.env.get(expr.name)
            if shape is None:
                if self._expr_relocatable(expr):
                    raise TaskGraphError(
                        f"in {self.function.qualified_name}: shape of "
                        f"task graph in {expr.name!r} cannot be "
                        "determined statically"
                    )
                return []
            return shape
        if isinstance(expr, ir.EGraphSource):
            return [self._stage(expr)]
        if isinstance(expr, ir.EGraphSink):
            return [self._stage(expr)]
        if isinstance(expr, ir.EGraphTask):
            return [self._stage(expr)]
        if isinstance(expr, ir.EGraphConnect):
            return self._eval(expr.left) + self._eval(expr.right)
        raise TaskGraphError(
            f"in {self.function.qualified_name}: cannot statically "
            f"evaluate task expression {type(expr).__name__}"
        )

    def _expr_relocatable(self, expr: ir.IRExpr) -> bool:
        return any(
            isinstance(e, ir.EGraphTask) and e.relocatable
            for e in ir.walk_expr(expr)
        )

    def _stage(self, expr: ir.IRExpr) -> StageIR:
        # Reuse the stage already minted for this syntactic node so that
        # re-evaluation (an alias used twice) keeps one identity.
        existing = getattr(expr, "stage_ir", None)
        if existing is not None:
            return existing
        index = self._stage_counter
        self._stage_counter += 1
        owner = self.function.qualified_name
        if isinstance(expr, ir.EGraphSource):
            stage = StageIR(
                index=index,
                kind="source",
                task_id=f"{owner}/s{index}:source",
                rate=expr.rate,
                output_type=expr.element_type,
            )
        elif isinstance(expr, ir.EGraphSink):
            stage = StageIR(
                index=index,
                kind="sink",
                task_id=f"{owner}/s{index}:sink",
                input_type=expr.element_type,
            )
        else:
            assert isinstance(expr, ir.EGraphTask)
            stage = StageIR(
                index=index,
                kind="filter",
                task_id=f"{owner}/s{index}:{expr.method}",
                method=expr.method,
                arity=expr.arity,
                relocatable=expr.relocatable,
                stateful=expr.instance is not None,
                input_type=expr.input_type,
                output_type=expr.output_type,
            )
        stage.position = getattr(expr, "src_position", None)
        expr.stage_ir = stage
        expr.task_id = stage.task_id
        return stage

    def _register_graph(self, shape: list) -> TaskGraphIR:
        graph_id = f"{self.function.qualified_name}#g{self._graph_counter}"
        self._graph_counter += 1
        graph = TaskGraphIR(
            graph_id=graph_id,
            owner_function=self.function.qualified_name,
            stages=list(shape),
        )
        if not graph.is_closed:
            raise TaskGraphError(
                f"task graph {graph_id} is not closed "
                f"({graph.describe() or 'empty'})"
            )
        self.graphs.append(graph)
        return graph


def discover_task_graphs(module: ir.IRModule) -> list:
    """Run shape analysis over every function; annotate the module."""
    graphs: list[TaskGraphIR] = []
    for function in module.functions.values():
        graphs.extend(_FunctionShapes(function).run())
    module.task_graphs = graphs
    return graphs
