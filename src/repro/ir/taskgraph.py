"""Task-graph IR: the computational nodes the backends compile.

A :class:`TaskGraphIR` is the statically discovered shape of one task
graph built by a global method — a linear pipeline of stages
(source, filters, sink), which matches the Lime connect operator's
single-input/single-output port discipline. Each stage carries a unique
*task identifier*; backends label the artifacts they generate with these
identifiers and the runtime matches artifacts to runtime tasks through
them (Section 3: "the frontend and backend compilers cooperate to
produce a manifest describing each generated artifact and labeling it
with a unique task identifier").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.lime import types as ty


@dataclass
class StageIR:
    """One computational node in a task graph."""

    index: int
    kind: str  # 'source' | 'filter' | 'sink'
    task_id: str
    method: Optional[str] = None  # the filter's method (qualified)
    rate: int = 1                 # items per firing (sources)
    arity: int = 1                # inputs consumed per firing (filters)
    relocatable: bool = False
    stateful: bool = False  # instance task carrying pipeline state
    input_type: Optional[ty.Type] = None
    output_type: Optional[ty.Type] = None
    position: object = None  # SourcePosition of the task expression

    def __repr__(self) -> str:
        extra = f":{self.method}" if self.method else ""
        marker = "[R]" if self.relocatable else ""
        return f"<{self.kind}{extra}{marker} #{self.index}>"


@dataclass
class TaskGraphIR:
    """A statically discovered linear pipeline."""

    graph_id: str
    owner_function: str
    stages: list = field(default_factory=list)

    @property
    def filters(self) -> list:
        return [s for s in self.stages if s.kind == "filter"]

    @property
    def is_closed(self) -> bool:
        return (
            bool(self.stages)
            and self.stages[0].kind == "source"
            and self.stages[-1].kind == "sink"
        )

    def relocation_regions(self) -> "list[tuple[int, int]]":
        """Maximal runs ``[start, end]`` (stage indices, inclusive) of
        contiguous relocatable filters. These are the units the device
        backends may compile, and the substitution algorithm prefers
        the largest (Section 4.2)."""
        regions: list[tuple[int, int]] = []
        run_start: Optional[int] = None
        for i, stage in enumerate(self.stages):
            if stage.kind == "filter" and stage.relocatable:
                if run_start is None:
                    run_start = i
            else:
                if run_start is not None:
                    regions.append((run_start, i - 1))
                    run_start = None
        if run_start is not None:
            regions.append((run_start, len(self.stages) - 1))
        return regions

    def describe(self) -> str:
        """One-line arrow rendering, e.g. ``source => [flip] => sink``."""
        parts = []
        for stage in self.stages:
            if stage.kind == "source":
                parts.append(f"source({stage.rate})")
            elif stage.kind == "sink":
                parts.append("sink")
            else:
                name = stage.method.split(".")[-1] if stage.method else "?"
                parts.append(f"[{name}]" if stage.relocatable else name)
        return " => ".join(parts)

    def __repr__(self) -> str:
        return f"TaskGraphIR({self.graph_id}: {self.describe()})"
