"""IR well-formedness verifier.

Run after lowering and optimization as an internal consistency check —
the lowerer and optimizer must only ever hand the backends IR that
satisfies these invariants:

* every expression node carries a semantic type;
* locals are defined (parameter or SLet) before use, per control-flow
  path approximation (declaration seen earlier in the same or an
  enclosing block);
* break/continue appear only inside loops;
* non-void functions end every path with a return (mirrors the
  checker; the optimizer must not have broken it);
* task-graph expressions appear only in global (non-local) functions;
* every ECall target exists in the module.

Violations raise :class:`~repro.errors.LoweringError` — they indicate a
compiler bug, not a user error.
"""

from __future__ import annotations

from repro.errors import LoweringError
from repro.ir import nodes as ir
from repro.lime import types as ty


class _FunctionVerifier:
    def __init__(self, function: ir.IRFunction, module: ir.IRModule):
        self.function = function
        self.module = module
        self.defined: set = {p.name for p in function.params}

    def fail(self, message: str) -> None:
        raise LoweringError(
            f"IR verification failed in {self.function.qualified_name}: "
            f"{message}"
        )

    def run(self) -> None:
        returns = self._stmts(self.function.body, loop_depth=0)
        f = self.function
        if (
            f.return_type != ty.VOID
            and not f.is_constructor
            and not returns
        ):
            self.fail("a path falls off the end without returning")

    # ------------------------------------------------------------------

    def _stmts(self, body: list, loop_depth: int) -> bool:
        """Returns True when the statement list definitely returns."""
        returns = False
        for stmt in body:
            if returns:
                self.fail("unreachable statement survived optimization")
            returns = self._stmt(stmt, loop_depth)
        return returns

    def _stmt(self, stmt: ir.IRStmt, loop_depth: int) -> bool:
        if isinstance(stmt, ir.SLet):
            self._expr(stmt.init)
            self.defined.add(stmt.name)
            return False
        if isinstance(stmt, ir.SAssignLocal):
            if stmt.name not in self.defined:
                self.fail(f"assignment to undefined local {stmt.name!r}")
            self._expr(stmt.value)
            return False
        if isinstance(stmt, ir.SArrayStore):
            for e in (stmt.array, stmt.index, stmt.value):
                self._expr(e)
            return False
        if isinstance(stmt, ir.SFieldStore):
            self._expr(stmt.receiver)
            self._expr(stmt.value)
            return False
        if isinstance(stmt, ir.SStaticStore):
            self._expr(stmt.value)
            return False
        if isinstance(stmt, ir.SIf):
            self._expr(stmt.cond)
            saved = set(self.defined)
            then_returns = self._stmts(stmt.then, loop_depth)
            defined_then = self.defined
            self.defined = set(saved)
            else_returns = self._stmts(stmt.other, loop_depth)
            # Only names defined on *both* arms survive the join.
            self.defined = (
                saved | (defined_then & self.defined)
                if not (then_returns or else_returns)
                else (
                    self.defined
                    if then_returns and not else_returns
                    else defined_then
                    if else_returns and not then_returns
                    else saved
                )
            )
            return then_returns and else_returns
        if isinstance(stmt, ir.SWhile):
            self._expr(stmt.cond)
            saved = set(self.defined)
            self._stmts(stmt.body, loop_depth + 1)
            self.defined = saved  # loop may run zero times
            return False
        if isinstance(stmt, ir.SFor):
            for e in (stmt.start, stmt.limit, stmt.step):
                self._expr(e)
            saved = set(self.defined)
            self.defined.add(stmt.var)
            self._stmts(stmt.body, loop_depth + 1)
            self.defined = saved | {stmt.var}
            return False
        if isinstance(stmt, (ir.SBreak, ir.SContinue)):
            if loop_depth == 0:
                self.fail("break/continue outside a loop")
            return False
        if isinstance(stmt, ir.SReturn):
            if stmt.value is not None:
                self._expr(stmt.value)
                if self.function.return_type == ty.VOID:
                    self.fail("value returned from a void function")
            return True
        if isinstance(stmt, ir.SExpr):
            self._expr(stmt.expr)
            return False
        if isinstance(stmt, ir.SGraphStart):
            self._expr(stmt.graph)
            return False
        self.fail(f"unknown statement {type(stmt).__name__}")
        return False

    # ------------------------------------------------------------------

    def _expr(self, expr: ir.IRExpr) -> None:
        for node in ir.walk_expr(expr):
            if getattr(node, "type", None) is None:
                self.fail(
                    f"expression {type(node).__name__} has no type"
                )
            if isinstance(node, ir.ELocal):
                if node.name not in self.defined:
                    self.fail(f"use of undefined local {node.name!r}")
            elif isinstance(node, ir.ECall):
                if node.callee not in self.module.functions:
                    self.fail(f"call to unknown function {node.callee!r}")
            elif isinstance(
                node,
                (
                    ir.EGraphSource,
                    ir.EGraphSink,
                    ir.EGraphTask,
                    ir.EGraphConnect,
                ),
            ):
                if self.function.is_local:
                    self.fail(
                        "task-graph construction inside a local method"
                    )


def verify_module(module: ir.IRModule) -> None:
    """Check every function; raises LoweringError on the first defect."""
    for function in module.functions.values():
        _FunctionVerifier(function, module).run()
