"""The Lime language frontend: lexer, parser, types, semantic analysis."""

from repro.lime.lexer import Lexer, lex
from repro.lime.parser import Parser, parse
from repro.lime.printer import pretty
from repro.lime.typecheck import TypeChecker, analyze, check

__all__ = [
    "Lexer",
    "Parser",
    "TypeChecker",
    "analyze",
    "check",
    "lex",
    "parse",
    "pretty",
]
