"""Abstract syntax tree for the Lime subset.

Nodes are plain dataclasses. The type checker annotates expression nodes
in place by assigning their ``type`` attribute (initially ``None``), and
resolves names by filling ``resolution``-style fields; the AST therefore
doubles as the typed tree consumed by the IR lowerer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SourcePosition

# ---------------------------------------------------------------------------
# Type syntax (what the programmer wrote; resolved to semantic types later)
# ---------------------------------------------------------------------------


@dataclass
class TypeSyntax:
    """A written type: base name plus array suffixes.

    ``array_dims`` is a list of ``"value"`` / ``"mutable"`` entries from
    outermost to innermost suffix, so ``bit[[]]`` has ``["value"]`` and
    ``int[][]`` has ``["mutable", "mutable"]``.
    """

    name: str
    array_dims: list
    position: SourcePosition

    def __str__(self) -> str:
        suffix = "".join(
            "[[]]" if d == "value" else "[]" for d in self.array_dims
        )
        return self.name + suffix


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    position: SourcePosition

    def __post_init__(self) -> None:
        # Filled in by the type checker.
        self.type = None


@dataclass
class IntLit(Expr):
    value: int
    is_long: bool = False


@dataclass
class FloatLit(Expr):
    value: float
    is_double: bool = True


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class BitLit(Expr):
    """A bit literal like ``100b``; ``bits`` is LSB-first."""

    bits: tuple


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Name(Expr):
    """An identifier; resolution is set by the checker to one of
    'local', 'param', 'field', 'static_field', 'class', 'enum_const'."""

    ident: str

    def __post_init__(self) -> None:
        super().__post_init__()
        self.resolution = None
        self.decl = None


@dataclass
class This(Expr):
    pass


@dataclass
class FieldAccess(Expr):
    receiver: Expr
    name: str

    def __post_init__(self) -> None:
        super().__post_init__()
        self.resolution = None  # 'field' | 'length' | 'enum_const' | 'static_field'


@dataclass
class Index(Expr):
    array: Expr
    index: Expr


@dataclass
class Call(Expr):
    """A method call ``receiver.name(args)`` or bare ``name(args)``.

    ``type_args`` carries explicit generic arguments as in
    ``result.<bit>sink()``. The checker sets ``target`` to the resolved
    method (or an intrinsic descriptor).
    """

    receiver: Optional[Expr]
    name: str
    args: list
    type_args: list = field(default_factory=list)

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None
        self.intrinsic = None


@dataclass
class New(Expr):
    """``new T(args)`` for classes; ``new T[n]`` / ``new T[[]](src)``
    for arrays (``array_dims`` mirrors TypeSyntax)."""

    type_syntax: TypeSyntax
    args: list
    array_length: Optional[Expr] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None  # resolved constructor, if a class new


@dataclass
class Unary(Expr):
    op: str  # '-', '!', '~', '++pre', '--pre', '++post', '--post'
    operand: Expr


@dataclass
class Binary(Expr):
    op: str
    left: Expr
    right: Expr


@dataclass
class Ternary(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class Assign(Expr):
    """``target = value`` or compound ``target op= value``; target is a
    Name, Index, or FieldAccess."""

    target: Expr
    op: str  # '=', '+=', '-=', '*=', '/='
    value: Expr


@dataclass
class Cast(Expr):
    type_syntax: TypeSyntax
    operand: Expr


@dataclass
class MapExpr(Expr):
    """Lime map: ``Receiver @ method(arrays...)`` (Figure 1, line 12)."""

    receiver: Optional[str]
    method: str
    args: list

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None


@dataclass
class ReduceExpr(Expr):
    """Lime reduce: ``Receiver ! method(array)`` — the paper mentions
    reduce alongside map (Section 2.2) without showing its syntax; we
    follow the companion Lime papers."""

    receiver: Optional[str]
    method: str
    args: list

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None


@dataclass
class TaskExpr(Expr):
    """``task m`` / ``task C.m``: a dataflow actor that repeatedly
    applies the named method (Section 2.2)."""

    receiver: Optional[str]
    method: str

    def __post_init__(self) -> None:
        super().__post_init__()
        self.target = None


@dataclass
class ConnectExpr(Expr):
    """``left => right``: values flow from left's output to right's
    input."""

    left: Expr
    right: Expr


@dataclass
class RelocExpr(Expr):
    """Relocation brackets ``([ e ])`` marking a co-executable region
    (Section 2.3)."""

    inner: Expr


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    position: SourcePosition


@dataclass
class Block(Stmt):
    statements: list


@dataclass
class VarDecl(Stmt):
    """One declared variable; ``type_syntax is None`` for ``var``."""

    type_syntax: Optional[TypeSyntax]
    name: str
    init: Optional[Expr]

    def __post_init__(self) -> None:
        self.declared_type = None  # semantic type, set by the checker


@dataclass
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt
    other: Optional[Stmt]


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt


@dataclass
class For(Stmt):
    init: Optional[Stmt]  # VarDecl or ExprStmt
    cond: Optional[Expr]
    update: Optional[Expr]
    body: Stmt


@dataclass
class Return(Stmt):
    value: Optional[Expr]


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    type_syntax: TypeSyntax
    name: str
    position: SourcePosition

    def __post_init__(self) -> None:
        self.type = None


@dataclass
class MethodDecl:
    """A method, operator method (``public bit ~ this {...}``), or
    constructor (``name`` equals the class name, ``return_type`` None).
    """

    modifiers: list
    return_type: Optional[TypeSyntax]
    name: str
    params: list
    body: Optional[Block]
    position: SourcePosition
    is_operator: bool = False

    def __post_init__(self) -> None:
        # Semantic facts, filled by the checker.
        self.owner = None
        self.is_local_effective = False
        self.is_pure = False
        self.signature = None

    @property
    def is_static(self) -> bool:
        return "static" in self.modifiers

    @property
    def is_constructor(self) -> bool:
        return self.return_type is None and not self.is_operator


@dataclass
class FieldDecl:
    modifiers: list
    type_syntax: TypeSyntax
    name: str
    init: Optional[Expr]
    position: SourcePosition

    def __post_init__(self) -> None:
        self.owner = None
        self.type = None

    @property
    def is_static(self) -> bool:
        return "static" in self.modifiers

    @property
    def is_final(self) -> bool:
        return "final" in self.modifiers


@dataclass
class ClassDecl:
    """A class or value enum declaration."""

    modifiers: list
    name: str
    is_enum: bool
    enum_constants: list
    fields: list
    methods: list
    position: SourcePosition

    @property
    def is_value(self) -> bool:
        return "value" in self.modifiers


@dataclass
class Program:
    classes: list
    source: str = ""

    def find_class(self, name: str) -> Optional[ClassDecl]:
        for cls in self.classes:
            if cls.name == name:
                return cls
        return None
