"""Hand-written lexer for the Lime subset.

Notable Lime-specific lexical features:

* bit literals — ``100b`` (Section 2.2): a run of 0/1 digits followed by
  the ``b`` suffix;
* the map operator ``@`` and reduce operator ``!`` are ordinary tokens;
* ``=>`` (task connect) must win maximal munch over ``=``.
"""

from __future__ import annotations

from repro.errors import LimeSyntaxError, SourcePosition
from repro.lime.tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR = {
    "=>": TokenKind.CONNECT,
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "<<": TokenKind.SHL,
    ">>": TokenKind.SHR,
    "&&": TokenKind.AMP_AMP,
    "||": TokenKind.PIPE_PIPE,
    "+=": TokenKind.PLUS_ASSIGN,
    "-=": TokenKind.MINUS_ASSIGN,
    "*=": TokenKind.STAR_ASSIGN,
    "/=": TokenKind.SLASH_ASSIGN,
    "++": TokenKind.PLUS_PLUS,
    "--": TokenKind.MINUS_MINUS,
}

_ONE_CHAR = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    ".": TokenKind.DOT,
    ":": TokenKind.COLON,
    "?": TokenKind.QUESTION,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "@": TokenKind.AT,
    "!": TokenKind.BANG,
    "~": TokenKind.TILDE,
    "&": TokenKind.AMP,
    "|": TokenKind.PIPE,
    "^": TokenKind.CARET,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
}


class Lexer:
    """Converts Lime source text into a token list (ending with EOF)."""

    def __init__(self, source: str, filename: str = "<lime>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def _position(self) -> SourcePosition:
        return SourcePosition(self.line, self.column, self.filename)

    def _peek(self, ahead: int = 0) -> str:
        index = self.pos + ahead
        return self.source[index] if index < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _skip_trivia(self) -> None:
        """Skip whitespace and both comment styles."""
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self._position()
                self._advance()
                self._advance()
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.source):
                        raise LimeSyntaxError("unterminated comment", start)
                    self._advance()
                self._advance()
                self._advance()
            else:
                return

    def tokens(self) -> "list[Token]":
        """Lex the whole source; raises LimeSyntaxError on bad input."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                out.append(Token(TokenKind.EOF, "", self._position()))
                return out
            out.append(self._next_token())

    def _next_token(self) -> Token:
        position = self._position()
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number(position)
        if ch.isalpha() or ch == "_":
            return self._lex_word(position)
        if ch == '"':
            return self._lex_string(position)
        two = ch + self._peek(1)
        if two in _TWO_CHAR:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR[two], two, position)
        if ch in _ONE_CHAR:
            self._advance()
            return Token(_ONE_CHAR[ch], ch, position)
        raise LimeSyntaxError(f"unexpected character {ch!r}", position)

    def _lex_word(self, position: SourcePosition) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start : self.pos]
        kind = KEYWORDS.get(text, TokenKind.IDENT)
        if kind in (TokenKind.KW_TRUE, TokenKind.KW_FALSE):
            return Token(kind, text, position, text == "true")
        return Token(kind, text, position)

    def _lex_string(self, position: SourcePosition) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.source) or self._peek() == "\n":
                raise LimeSyntaxError("unterminated string literal", position)
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                escapes = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if esc not in escapes:
                    raise LimeSyntaxError(
                        f"unknown escape \\{esc}", position
                    )
                chars.append(escapes[esc])
            else:
                chars.append(ch)
        text = "".join(chars)
        return Token(TokenKind.STRING_LIT, text, position, text)

    def _lex_number(self, position: SourcePosition) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        # Fractional part: require a digit after '.' to keep member
        # access on literals unambiguous.
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        # Exponent part.
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start : self.pos]
        # NB: guard against end-of-input — '' would match any `in` test.
        suffix = self._peek() or "\0"
        if not is_float and suffix == "b" and not self._peek(1).isalnum():
            # Bit literal, e.g. 100b. Only 0/1 digits are legal.
            self._advance()
            if any(c not in "01" for c in text):
                raise LimeSyntaxError(
                    f"malformed bit literal {text}b: digits must be 0 or 1",
                    position,
                )
            from repro.values.bits import parse_bit_literal

            return Token(
                TokenKind.BIT_LIT, text + "b", position, parse_bit_literal(text)
            )
        if suffix in "fF":
            self._advance()
            return Token(
                TokenKind.FLOAT_LIT, text + suffix, position, float(text)
            )
        if suffix in "dD":
            self._advance()
            return Token(
                TokenKind.DOUBLE_LIT, text + suffix, position, float(text)
            )
        if not is_float and suffix in "lL":
            self._advance()
            return Token(
                TokenKind.LONG_LIT, text + suffix, position, int(text)
            )
        if is_float:
            return Token(TokenKind.DOUBLE_LIT, text, position, float(text))
        return Token(TokenKind.INT_LIT, text, position, int(text))


def lex(source: str, filename: str = "<lime>") -> "list[Token]":
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokens()
