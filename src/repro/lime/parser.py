"""Recursive-descent parser for the Lime subset.

Grammar highlights that differ from Java:

* value classes and value enums (``public value enum bit { zero, one; … }``),
* operator methods (``public bit ~ this { … }``),
* value array types ``T[[]]`` (lexed as four bracket tokens),
* bit literals ``100b``,
* the map operator ``@`` and reduce operator ``!`` in binary position,
* the task operator (``task m``), the connect operator ``=>``, and
  relocation brackets ``([ … ])``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LimeSyntaxError, SourcePosition
from repro.lime import ast_nodes as ast
from repro.lime.lexer import lex
from repro.lime.tokens import PRIMITIVE_TYPE_KINDS, Token, TokenKind

# Binary operator precedence (higher binds tighter). Connect and
# assignment are handled separately because of associativity.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_MAP_REDUCE_PRECEDENCE = 11  # '@' and '!' bind tighter than arithmetic

_TOKEN_OP_TEXT = {
    TokenKind.PIPE_PIPE: "||",
    TokenKind.AMP_AMP: "&&",
    TokenKind.PIPE: "|",
    TokenKind.CARET: "^",
    TokenKind.AMP: "&",
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.GT: ">",
    TokenKind.LE: "<=",
    TokenKind.GE: ">=",
    TokenKind.SHL: "<<",
    TokenKind.SHR: ">>",
    TokenKind.PLUS: "+",
    TokenKind.MINUS: "-",
    TokenKind.STAR: "*",
    TokenKind.SLASH: "/",
    TokenKind.PERCENT: "%",
}

_MODIFIER_TOKENS = {
    TokenKind.KW_PUBLIC: "public",
    TokenKind.KW_PRIVATE: "private",
    TokenKind.KW_STATIC: "static",
    TokenKind.KW_LOCAL: "local",
    TokenKind.KW_VALUE: "value",
    TokenKind.KW_FINAL: "final",
}

_ASSIGN_TOKENS = {
    TokenKind.ASSIGN: "=",
    TokenKind.PLUS_ASSIGN: "+=",
    TokenKind.MINUS_ASSIGN: "-=",
    TokenKind.STAR_ASSIGN: "*=",
    TokenKind.SLASH_ASSIGN: "/=",
}


class Parser:
    def __init__(self, tokens: "list[Token]"):
        self.tokens = tokens
        self.index = 0

    # -- token helpers ----------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.index + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, kind: TokenKind, ahead: int = 0) -> bool:
        return self._peek(ahead).kind == kind

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != TokenKind.EOF:
            self.index += 1
        return token

    def _expect(self, kind: TokenKind, what: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise LimeSyntaxError(
                f"expected {what}, found {token.text or 'end of file'!r}",
                token.position,
            )
        return self._advance()

    def _accept(self, kind: TokenKind) -> Optional[Token]:
        if self._at(kind):
            return self._advance()
        return None

    # -- program / declarations -------------------------------------------

    def parse_program(self) -> ast.Program:
        classes = []
        while not self._at(TokenKind.EOF):
            classes.append(self._parse_class())
        return ast.Program(classes)

    def _parse_modifiers(self) -> "list[str]":
        modifiers: list[str] = []
        while self._peek().kind in _MODIFIER_TOKENS:
            # 'value' is only a modifier when it precedes class/enum or a
            # member declaration; 'value' never starts an expression in
            # our subset so consuming greedily here is safe.
            modifiers.append(_MODIFIER_TOKENS[self._advance().kind])
        return modifiers

    def _parse_class(self) -> ast.ClassDecl:
        position = self._peek().position
        modifiers = self._parse_modifiers()
        if self._accept(TokenKind.KW_ENUM):
            return self._parse_enum_body(modifiers, position)
        self._expect(TokenKind.KW_CLASS, "'class'")
        name = self._expect(TokenKind.IDENT, "class name").text
        self._expect(TokenKind.LBRACE, "'{'")
        fields: list = []
        methods: list = []
        while not self._accept(TokenKind.RBRACE):
            self._parse_member(name, fields, methods)
        return ast.ClassDecl(
            modifiers, name, False, [], fields, methods, position
        )

    def _parse_enum_body(
        self, modifiers: "list[str]", position: SourcePosition
    ) -> ast.ClassDecl:
        name = self._expect(TokenKind.IDENT, "enum name").text
        self._expect(TokenKind.LBRACE, "'{'")
        constants = [self._expect(TokenKind.IDENT, "enum constant").text]
        while self._accept(TokenKind.COMMA):
            constants.append(
                self._expect(TokenKind.IDENT, "enum constant").text
            )
        fields: list = []
        methods: list = []
        if self._accept(TokenKind.SEMI):
            while not self._at(TokenKind.RBRACE):
                self._parse_member(name, fields, methods)
        self._expect(TokenKind.RBRACE, "'}'")
        return ast.ClassDecl(
            modifiers, name, True, constants, fields, methods, position
        )

    def _parse_member(
        self, class_name: str, fields: list, methods: list
    ) -> None:
        position = self._peek().position
        modifiers = self._parse_modifiers()
        # Constructor: ClassName '(' …
        if (
            self._at(TokenKind.IDENT)
            and self._peek().text == class_name
            and self._at(TokenKind.LPAREN, 1)
        ):
            name = self._advance().text
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(modifiers, None, name, params, body, position)
            )
            return
        type_syntax = self._parse_type()
        # Operator method: 'public bit ~ this { … }' (Figure 1, line 3).
        if self._peek().kind in (
            TokenKind.TILDE,
            TokenKind.BANG,
            TokenKind.MINUS,
        ):
            op = self._advance().text
            self._expect(TokenKind.KW_THIS, "'this'")
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(
                    modifiers,
                    type_syntax,
                    op,
                    [],
                    body,
                    position,
                    is_operator=True,
                )
            )
            return
        name = self._expect(TokenKind.IDENT, "member name").text
        if self._at(TokenKind.LPAREN):
            params = self._parse_params()
            body = self._parse_block()
            methods.append(
                ast.MethodDecl(
                    modifiers, type_syntax, name, params, body, position
                )
            )
            return
        init = None
        if self._accept(TokenKind.ASSIGN):
            init = self._parse_expression()
        self._expect(TokenKind.SEMI, "';'")
        fields.append(
            ast.FieldDecl(modifiers, type_syntax, name, init, position)
        )

    def _parse_params(self) -> "list[ast.Param]":
        self._expect(TokenKind.LPAREN, "'('")
        params: list[ast.Param] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                position = self._peek().position
                type_syntax = self._parse_type()
                name = self._expect(TokenKind.IDENT, "parameter name").text
                params.append(ast.Param(type_syntax, name, position))
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "')'")
        return params

    # -- types -------------------------------------------------------------

    def _at_type_start(self) -> bool:
        kind = self._peek().kind
        return kind in PRIMITIVE_TYPE_KINDS or kind in (
            TokenKind.IDENT,
            TokenKind.KW_STRING,
        )

    def _parse_type(self) -> ast.TypeSyntax:
        token = self._peek()
        if token.kind in PRIMITIVE_TYPE_KINDS:
            self._advance()
            name = PRIMITIVE_TYPE_KINDS[token.kind]
        elif token.kind == TokenKind.KW_STRING:
            self._advance()
            name = "String"
        else:
            name = self._expect(TokenKind.IDENT, "type name").text
        dims = self._parse_array_suffixes()
        return ast.TypeSyntax(name, dims, token.position)

    def _parse_array_suffixes(self) -> "list[str]":
        dims: list[str] = []
        while self._at(TokenKind.LBRACKET):
            if self._at(TokenKind.LBRACKET, 1) and self._at(
                TokenKind.RBRACKET, 2
            ):
                # '[[]]' value array suffix.
                self._advance()
                self._advance()
                self._expect(TokenKind.RBRACKET, "']'")
                self._expect(TokenKind.RBRACKET, "']'")
                dims.append("value")
            elif self._at(TokenKind.RBRACKET, 1):
                self._advance()
                self._advance()
                dims.append("mutable")
            else:
                break
        return dims

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> ast.Block:
        position = self._expect(TokenKind.LBRACE, "'{'").position
        statements = []
        while not self._accept(TokenKind.RBRACE):
            statements.append(self._parse_statement())
        return ast.Block(position, statements)

    def _looks_like_declaration(self) -> bool:
        """Lookahead test: does a statement start with a local variable
        declaration rather than an expression?"""
        kind = self._peek().kind
        if kind == TokenKind.KW_VAR:
            return True
        if kind in PRIMITIVE_TYPE_KINDS or kind == TokenKind.KW_STRING:
            return True
        if kind != TokenKind.IDENT:
            return False
        # IDENT IDENT            -> 'Foo x'
        if self._at(TokenKind.IDENT, 1):
            return True
        # IDENT '[' ']'          -> 'Foo[] x'
        if self._at(TokenKind.LBRACKET, 1) and self._at(TokenKind.RBRACKET, 2):
            return True
        # IDENT '[' '[' ']'      -> 'Foo[[]] x'
        if (
            self._at(TokenKind.LBRACKET, 1)
            and self._at(TokenKind.LBRACKET, 2)
            and self._at(TokenKind.RBRACKET, 3)
        ):
            return True
        return False

    def _parse_statement(self) -> ast.Stmt:
        token = self._peek()
        if token.kind == TokenKind.LBRACE:
            return self._parse_block()
        if token.kind == TokenKind.SEMI:
            self._advance()
            return ast.Block(token.position, [])
        if token.kind == TokenKind.KW_IF:
            return self._parse_if()
        if token.kind == TokenKind.KW_WHILE:
            return self._parse_while()
        if token.kind == TokenKind.KW_FOR:
            return self._parse_for()
        if token.kind == TokenKind.KW_RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.SEMI):
                value = self._parse_expression()
            self._expect(TokenKind.SEMI, "';'")
            return ast.Return(token.position, value)
        if token.kind == TokenKind.KW_BREAK:
            self._advance()
            self._expect(TokenKind.SEMI, "';'")
            return ast.Break(token.position)
        if token.kind == TokenKind.KW_CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI, "';'")
            return ast.Continue(token.position)
        if self._looks_like_declaration():
            stmt = self._parse_var_decl()
            self._expect(TokenKind.SEMI, "';'")
            return stmt
        expr = self._parse_expression()
        self._expect(TokenKind.SEMI, "';'")
        return ast.ExprStmt(token.position, expr)

    def _parse_var_decl(self) -> ast.Stmt:
        position = self._peek().position
        if self._accept(TokenKind.KW_VAR):
            type_syntax = None
        else:
            type_syntax = self._parse_type()
        decls = []
        while True:
            name = self._expect(TokenKind.IDENT, "variable name").text
            init = None
            if self._accept(TokenKind.ASSIGN):
                init = self._parse_expression()
            decls.append(ast.VarDecl(position, type_syntax, name, init))
            if not self._accept(TokenKind.COMMA):
                break
        if len(decls) == 1:
            return decls[0]
        return ast.Block(position, decls)

    def _parse_if(self) -> ast.If:
        position = self._expect(TokenKind.KW_IF, "'if'").position
        self._expect(TokenKind.LPAREN, "'('")
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN, "')'")
        then = self._parse_statement()
        other = None
        if self._accept(TokenKind.KW_ELSE):
            other = self._parse_statement()
        return ast.If(position, cond, then, other)

    def _parse_while(self) -> ast.While:
        position = self._expect(TokenKind.KW_WHILE, "'while'").position
        self._expect(TokenKind.LPAREN, "'('")
        cond = self._parse_expression()
        self._expect(TokenKind.RPAREN, "')'")
        body = self._parse_statement()
        return ast.While(position, cond, body)

    def _parse_for(self) -> ast.For:
        position = self._expect(TokenKind.KW_FOR, "'for'").position
        self._expect(TokenKind.LPAREN, "'('")
        init: Optional[ast.Stmt] = None
        if not self._at(TokenKind.SEMI):
            if self._looks_like_declaration():
                init = self._parse_var_decl()
            else:
                init = ast.ExprStmt(
                    self._peek().position, self._parse_expression()
                )
        self._expect(TokenKind.SEMI, "';'")
        cond = None
        if not self._at(TokenKind.SEMI):
            cond = self._parse_expression()
        self._expect(TokenKind.SEMI, "';'")
        update = None
        if not self._at(TokenKind.RPAREN):
            update = self._parse_expression()
        self._expect(TokenKind.RPAREN, "')'")
        body = self._parse_statement()
        return ast.For(position, init, cond, update, body)

    # -- expressions ---------------------------------------------------------

    def _parse_expression(self) -> ast.Expr:
        return self._parse_assignment()

    def _parse_assignment(self) -> ast.Expr:
        left = self._parse_connect()
        token = self._peek()
        if token.kind in _ASSIGN_TOKENS:
            op = _ASSIGN_TOKENS[self._advance().kind]
            value = self._parse_assignment()  # right-associative
            if not isinstance(
                left, (ast.Name, ast.Index, ast.FieldAccess)
            ):
                raise LimeSyntaxError(
                    "invalid assignment target", token.position
                )
            return ast.Assign(token.position, left, op, value)
        return left

    def _parse_connect(self) -> ast.Expr:
        left = self._parse_ternary()
        while self._at(TokenKind.CONNECT):
            position = self._advance().position
            right = self._parse_ternary()
            left = ast.ConnectExpr(position, left, right)
        return left

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._at(TokenKind.QUESTION):
            position = self._advance().position
            then = self._parse_expression()
            self._expect(TokenKind.COLON, "':'")
            other = self._parse_ternary()
            return ast.Ternary(position, cond, then, other)
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            # Map / reduce in binary position: 'recv @ m(args)'.
            if token.kind in (TokenKind.AT, TokenKind.BANG):
                if _MAP_REDUCE_PRECEDENCE < min_precedence:
                    return left
                left = self._parse_map_reduce(left, token)
                continue
            op = _TOKEN_OP_TEXT.get(token.kind)
            if op is None:
                return left
            precedence = _BINARY_PRECEDENCE[op]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(token.position, op, left, right)

    def _parse_map_reduce(self, left: ast.Expr, token: Token) -> ast.Expr:
        if not isinstance(left, ast.Name):
            raise LimeSyntaxError(
                "map/reduce receiver must be a class name", token.position
            )
        self._advance()
        method = self._expect(TokenKind.IDENT, "method name").text
        self._expect(TokenKind.LPAREN, "'('")
        args = self._parse_args()
        node_cls = (
            ast.MapExpr if token.kind == TokenKind.AT else ast.ReduceExpr
        )
        return node_cls(token.position, left.ident, method, args)

    def _parse_args(self) -> "list[ast.Expr]":
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self._parse_expression())
                if not self._accept(TokenKind.COMMA):
                    break
        self._expect(TokenKind.RPAREN, "')'")
        return args

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in (
            TokenKind.MINUS,
            TokenKind.BANG,
            TokenKind.TILDE,
        ):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.position, token.text, operand)
        if token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(token.position, token.text + "pre", operand)
        # Cast: '(' primitive-type ')' operand.
        if (
            token.kind == TokenKind.LPAREN
            and self._peek(1).kind in PRIMITIVE_TYPE_KINDS
            and self._at(TokenKind.RPAREN, 2)
        ):
            self._advance()
            type_token = self._advance()
            self._advance()
            operand = self._parse_unary()
            type_syntax = ast.TypeSyntax(
                PRIMITIVE_TYPE_KINDS[type_token.kind], [], type_token.position
            )
            return ast.Cast(token.position, type_syntax, operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind == TokenKind.DOT:
                self._advance()
                expr = self._parse_member_suffix(expr)
            elif token.kind == TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expression()
                self._expect(TokenKind.RBRACKET, "']'")
                expr = ast.Index(token.position, expr, index)
            elif token.kind in (TokenKind.PLUS_PLUS, TokenKind.MINUS_MINUS):
                self._advance()
                expr = ast.Unary(token.position, token.text + "post", expr)
            else:
                return expr

    def _parse_member_suffix(self, receiver: ast.Expr) -> ast.Expr:
        position = self._peek().position
        type_args: list[ast.TypeSyntax] = []
        if self._accept(TokenKind.LT):
            # Generic call, e.g. result.<bit>sink().
            type_args.append(self._parse_type())
            while self._accept(TokenKind.COMMA):
                type_args.append(self._parse_type())
            self._expect(TokenKind.GT, "'>'")
        name = self._expect(TokenKind.IDENT, "member name").text
        if self._at(TokenKind.LPAREN):
            self._advance()
            args = self._parse_args()
            return ast.Call(position, receiver, name, args, type_args)
        if type_args:
            raise LimeSyntaxError(
                "type arguments require a method call", position
            )
        return ast.FieldAccess(position, receiver, name)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.INT_LIT:
            self._advance()
            return ast.IntLit(token.position, token.value)
        if token.kind == TokenKind.LONG_LIT:
            self._advance()
            return ast.IntLit(token.position, token.value, is_long=True)
        if token.kind == TokenKind.FLOAT_LIT:
            self._advance()
            return ast.FloatLit(token.position, token.value, is_double=False)
        if token.kind == TokenKind.DOUBLE_LIT:
            self._advance()
            return ast.FloatLit(token.position, token.value, is_double=True)
        if token.kind == TokenKind.BIT_LIT:
            self._advance()
            return ast.BitLit(token.position, token.value)
        if token.kind == TokenKind.STRING_LIT:
            self._advance()
            return ast.StringLit(token.position, token.value)
        if token.kind in (TokenKind.KW_TRUE, TokenKind.KW_FALSE):
            self._advance()
            return ast.BoolLit(token.position, token.value)
        if token.kind == TokenKind.KW_THIS:
            self._advance()
            return ast.This(token.position)
        if token.kind == TokenKind.KW_TASK:
            return self._parse_task()
        if token.kind == TokenKind.KW_NEW:
            return self._parse_new()
        if token.kind == TokenKind.KW_BIT:
            # 'bit' used as an expression receiver, e.g. bit.zero.
            self._advance()
            name = ast.Name(token.position, "bit")
            return name
        if token.kind == TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.LPAREN):
                self._advance()
                args = self._parse_args()
                return ast.Call(token.position, None, token.text, args)
            return ast.Name(token.position, token.text)
        if token.kind == TokenKind.LPAREN:
            if self._at(TokenKind.LBRACKET, 1):
                # Relocation brackets '([ … ])'.
                self._advance()
                self._advance()
                inner = self._parse_expression()
                self._expect(TokenKind.RBRACKET, "']'")
                self._expect(TokenKind.RPAREN, "')'")
                return ast.RelocExpr(token.position, inner)
            self._advance()
            expr = self._parse_expression()
            self._expect(TokenKind.RPAREN, "')'")
            return expr
        raise LimeSyntaxError(
            f"unexpected token {token.text or 'end of file'!r}",
            token.position,
        )

    def _parse_task(self) -> ast.TaskExpr:
        position = self._expect(TokenKind.KW_TASK, "'task'").position
        first = self._expect(TokenKind.IDENT, "method name").text
        if self._accept(TokenKind.DOT):
            method = self._expect(TokenKind.IDENT, "method name").text
            return ast.TaskExpr(position, first, method)
        return ast.TaskExpr(position, None, first)

    def _parse_new(self) -> ast.New:
        position = self._expect(TokenKind.KW_NEW, "'new'").position
        token = self._peek()
        if token.kind in PRIMITIVE_TYPE_KINDS:
            self._advance()
            base = PRIMITIVE_TYPE_KINDS[token.kind]
        else:
            base = self._expect(TokenKind.IDENT, "type name").text
        # 'new T[n]' — sized array allocation.
        if self._at(TokenKind.LBRACKET) and not (
            self._at(TokenKind.LBRACKET, 1) or self._at(TokenKind.RBRACKET, 1)
        ):
            self._advance()
            length = self._parse_expression()
            self._expect(TokenKind.RBRACKET, "']'")
            type_syntax = ast.TypeSyntax(base, ["mutable"], token.position)
            return ast.New(position, type_syntax, [], array_length=length)
        dims = self._parse_array_suffixes()
        type_syntax = ast.TypeSyntax(base, dims, token.position)
        self._expect(TokenKind.LPAREN, "'('")
        args = self._parse_args()
        return ast.New(position, type_syntax, args)


def parse(source: str, filename: str = "<lime>") -> ast.Program:
    """Parse Lime source text into an AST program."""
    program = Parser(lex(source, filename)).parse_program()
    program.source = source
    return program
