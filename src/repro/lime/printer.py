"""Lime source pretty-printer.

Renders an AST back to compilable Lime source. The invariant tests rely
on is *structural idempotence*: ``parse(pretty(parse(s)))`` produces a
tree that pretty-prints identically — which also makes the printer a
handy normalizer for generated or machine-edited Lime code.
"""

from __future__ import annotations

from repro.lime import ast_nodes as ast
from repro.values.bits import format_bit_literal

_INDENT = "    "


class Printer:
    def __init__(self):
        self.lines: list[str] = []
        self.depth = 0

    def emit(self, text: str) -> None:
        self.lines.append(_INDENT * self.depth + text)

    # -- declarations -----------------------------------------------------

    def program(self, program: ast.Program) -> str:
        for i, cls in enumerate(program.classes):
            if i:
                self.lines.append("")
            self.class_decl(cls)
        return "\n".join(self.lines) + "\n"

    def class_decl(self, cls: ast.ClassDecl) -> None:
        mods = " ".join(m for m in cls.modifiers if m != "value")
        prefix = (mods + " ") if mods else ""
        if cls.is_enum:
            self.emit(f"{prefix}value enum {cls.name} {{")
            self.depth += 1
            constants = ", ".join(cls.enum_constants)
            self.emit(constants + (";" if cls.methods else ";"))
        else:
            value = "value " if cls.is_value else ""
            self.emit(f"{prefix}{value}class {cls.name} {{")
            self.depth += 1
        for field in cls.fields:
            self.field_decl(field)
        for method in cls.methods:
            self.method_decl(method)
        self.depth -= 1
        self.emit("}")

    def field_decl(self, field: ast.FieldDecl) -> None:
        mods = " ".join(field.modifiers)
        prefix = (mods + " ") if mods else ""
        init = f" = {self.expr(field.init)}" if field.init else ""
        self.emit(f"{prefix}{field.type_syntax} {field.name}{init};")

    def method_decl(self, method: ast.MethodDecl) -> None:
        mods = " ".join(method.modifiers)
        prefix = (mods + " ") if mods else ""
        if method.is_operator:
            self.emit(
                f"{prefix}{method.return_type} {method.name} this {{"
            )
        elif method.is_constructor:
            params = ", ".join(
                f"{p.type_syntax} {p.name}" for p in method.params
            )
            self.emit(f"{prefix}{method.name}({params}) {{")
        else:
            params = ", ".join(
                f"{p.type_syntax} {p.name}" for p in method.params
            )
            self.emit(
                f"{prefix}{method.return_type} {method.name}({params}) {{"
            )
        self.depth += 1
        for stmt in method.body.statements:
            self.stmt(stmt)
        self.depth -= 1
        self.emit("}")

    # -- statements ---------------------------------------------------------

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            if not stmt.statements:
                self.emit("{ }")
                return
            self.emit("{")
            self.depth += 1
            for inner in stmt.statements:
                self.stmt(inner)
            self.depth -= 1
            self.emit("}")
        elif isinstance(stmt, ast.VarDecl):
            type_text = (
                "var" if stmt.type_syntax is None else str(stmt.type_syntax)
            )
            init = f" = {self.expr(stmt.init)}" if stmt.init else ""
            self.emit(f"{type_text} {stmt.name}{init};")
        elif isinstance(stmt, ast.ExprStmt):
            self.emit(f"{self.expr(stmt.expr)};")
        elif isinstance(stmt, ast.If):
            self.emit(f"if ({self.expr(stmt.cond)})")
            self._nested(stmt.then)
            if stmt.other is not None:
                self.emit("else")
                self._nested(stmt.other)
        elif isinstance(stmt, ast.While):
            self.emit(f"while ({self.expr(stmt.cond)})")
            self._nested(stmt.body)
        elif isinstance(stmt, ast.For):
            init = self._inline_stmt(stmt.init) if stmt.init else ""
            cond = self.expr(stmt.cond) if stmt.cond else ""
            update = self.expr(stmt.update) if stmt.update else ""
            self.emit(f"for ({init}; {cond}; {update})")
            self._nested(stmt.body)
        elif isinstance(stmt, ast.Return):
            if stmt.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {self.expr(stmt.value)};")
        elif isinstance(stmt, ast.Break):
            self.emit("break;")
        elif isinstance(stmt, ast.Continue):
            self.emit("continue;")
        else:
            raise TypeError(f"cannot print {stmt!r}")

    def _nested(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.stmt(stmt)
        else:
            self.depth += 1
            self.stmt(stmt)
            self.depth -= 1

    def _inline_stmt(self, stmt: ast.Stmt) -> str:
        if isinstance(stmt, ast.VarDecl):
            type_text = (
                "var" if stmt.type_syntax is None else str(stmt.type_syntax)
            )
            init = f" = {self.expr(stmt.init)}" if stmt.init else ""
            return f"{type_text} {stmt.name}{init}"
        if isinstance(stmt, ast.ExprStmt):
            return self.expr(stmt.expr)
        raise TypeError(f"cannot inline {stmt!r}")

    # -- expressions ----------------------------------------------------------

    def expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return f"{expr.value}L" if expr.is_long else str(expr.value)
        if isinstance(expr, ast.FloatLit):
            if expr.is_double:
                text = repr(float(expr.value))
                return text if "." in text or "e" in text else text + ".0"
            return f"{expr.value!r}f"
        if isinstance(expr, ast.BoolLit):
            return "true" if expr.value else "false"
        if isinstance(expr, ast.BitLit):
            return format_bit_literal(expr.bits)
        if isinstance(expr, ast.StringLit):
            escaped = (
                expr.value.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n")
                .replace("\t", "\\t")
            )
            return f'"{escaped}"'
        if isinstance(expr, ast.Name):
            return expr.ident
        if isinstance(expr, ast.This):
            return "this"
        if isinstance(expr, ast.FieldAccess):
            return f"{self.expr(expr.receiver)}.{expr.name}"
        if isinstance(expr, ast.Index):
            return f"{self.expr(expr.array)}[{self.expr(expr.index)}]"
        if isinstance(expr, ast.Call):
            args = ", ".join(self.expr(a) for a in expr.args)
            generics = (
                "<" + ", ".join(str(t) for t in expr.type_args) + ">"
                if expr.type_args
                else ""
            )
            if expr.receiver is None:
                return f"{expr.name}({args})"
            return f"{self.expr(expr.receiver)}.{generics}{expr.name}({args})"
        if isinstance(expr, ast.New):
            if expr.array_length is not None:
                return (
                    f"new {expr.type_syntax.name}"
                    f"[{self.expr(expr.array_length)}]"
                )
            args = ", ".join(self.expr(a) for a in expr.args)
            return f"new {expr.type_syntax}({args})"
        if isinstance(expr, ast.Unary):
            if expr.op.endswith("post"):
                return f"{self.expr(expr.operand)}{expr.op[:2]}"
            if expr.op.endswith("pre"):
                return f"{expr.op[:2]}{self.expr(expr.operand)}"
            return f"{expr.op}{self._paren(expr.operand)}"
        if isinstance(expr, ast.Binary):
            return (
                f"{self._paren(expr.left)} {expr.op} "
                f"{self._paren(expr.right)}"
            )
        if isinstance(expr, ast.Ternary):
            return (
                f"{self._paren(expr.cond)} ? {self._paren(expr.then)} : "
                f"{self._paren(expr.other)}"
            )
        if isinstance(expr, ast.Assign):
            return (
                f"{self.expr(expr.target)} {expr.op} "
                f"{self.expr(expr.value)}"
            )
        if isinstance(expr, ast.Cast):
            return f"({expr.type_syntax}) {self._paren(expr.operand)}"
        if isinstance(expr, ast.MapExpr):
            args = ", ".join(self.expr(a) for a in expr.args)
            return f"{expr.receiver} @ {expr.method}({args})"
        if isinstance(expr, ast.ReduceExpr):
            args = ", ".join(self.expr(a) for a in expr.args)
            return f"{expr.receiver} ! {expr.method}({args})"
        if isinstance(expr, ast.TaskExpr):
            if expr.receiver is not None:
                return f"task {expr.receiver}.{expr.method}"
            return f"task {expr.method}"
        if isinstance(expr, ast.ConnectExpr):
            return f"{self._paren(expr.left)} => {self._paren(expr.right)}"
        if isinstance(expr, ast.RelocExpr):
            return f"([ {self.expr(expr.inner)} ])"
        raise TypeError(f"cannot print {expr!r}")

    def _paren(self, expr: ast.Expr) -> str:
        """Parenthesize anything that is not atomically bound, keeping
        precedence questions out of the printer entirely."""
        text = self.expr(expr)
        atomic = isinstance(
            expr,
            (
                ast.IntLit,
                ast.FloatLit,
                ast.BoolLit,
                ast.BitLit,
                ast.StringLit,
                ast.Name,
                ast.This,
                ast.FieldAccess,
                ast.Index,
                ast.Call,
                ast.RelocExpr,
                ast.TaskExpr,
                ast.MapExpr,
                ast.ReduceExpr,
            ),
        )
        return text if atomic else f"({text})"


def pretty(program: ast.Program) -> str:
    """Render an AST program as Lime source text."""
    return Printer().program(program)
