"""Symbol tables produced by semantic analysis.

The checker builds one :class:`ClassInfo` per declared class (plus the
built-in ``bit`` enum), resolving member signatures to semantic types,
and records per-method :class:`MethodFacts` that the backends use for
eligibility decisions (Section 3: each device compiler "examines the
tasks … and decides whether the code that comprises the tasks is
suitable for the device").
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from repro.lime import ast_nodes as ast
from repro.lime import types as ty
from repro.values.enums import EnumDescriptor


@dataclass
class FieldInfo:
    name: str
    type: ty.Type
    is_static: bool
    is_final: bool
    owner: "ClassInfo"
    decl: Optional[ast.FieldDecl]


@dataclass
class MethodInfo:
    name: str
    param_types: list
    return_type: ty.Type
    is_static: bool
    is_local: bool       # effective locality (declared, or implied by value class)
    is_operator: bool
    owner: "ClassInfo"
    decl: Optional[ast.MethodDecl]
    is_constructor: bool = False
    is_pure: bool = False        # computed by the purity fixpoint
    is_intrinsic: bool = False
    intrinsic_name: str = ""

    @property
    def qualified_name(self) -> str:
        return f"{self.owner.name}.{self.name}"

    @property
    def takes_only_values(self) -> bool:
        return all(p.is_value_type for p in self.param_types)

    def __repr__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types)
        return f"{self.return_type} {self.qualified_name}({params})"


@dataclass
class MethodFacts:
    """Observed behaviours of one method body, for backend eligibility."""

    calls: set = dataclass_field(default_factory=set)  # qualified names
    intrinsic_calls: set = dataclass_field(default_factory=set)
    uses_strings: bool = False
    does_io: bool = False
    has_while: bool = False
    has_for: bool = False
    builds_tasks: bool = False
    accesses_static_mutable: bool = False
    accesses_instance_fields: bool = False
    allocates_arrays: bool = False
    uses_double: bool = False
    reads_params_only: bool = True


class ClassInfo:
    """Resolved view of one class/enum declaration."""

    def __init__(self, decl: Optional[ast.ClassDecl], name: str,
                 is_value: bool, is_enum: bool):
        self.decl = decl
        self.name = name
        self.is_value = is_value
        self.is_enum = is_enum
        self.fields: dict[str, FieldInfo] = {}
        self.methods: dict[str, MethodInfo] = {}
        self.constructors: list[MethodInfo] = []
        self.enum_descriptor: Optional[EnumDescriptor] = None
        if is_enum and decl is not None:
            self.enum_descriptor = EnumDescriptor(name, decl.enum_constants)

    @property
    def type(self) -> ty.ClassType:
        size = self.enum_descriptor.size if self.enum_descriptor else 0
        return ty.ClassType(self.name, self.is_value, self.is_enum, size)

    def find_method(self, name: str) -> Optional[MethodInfo]:
        return self.methods.get(name)

    def find_field(self, name: str) -> Optional[FieldInfo]:
        return self.fields.get(name)

    def __repr__(self) -> str:
        flavor = "enum" if self.is_enum else "class"
        value = "value " if self.is_value else ""
        return f"<{value}{flavor} {self.name}>"


def make_builtin_bit_class() -> ClassInfo:
    """The built-in ``bit`` value enum from Figure 1.

    ``bit`` behaves exactly like the paper's user-declared enum: two
    constants (zero, one) and a pure ``~`` operator method, but it is
    wired into the compiler because bit data is first class in Lime.
    """
    info = ClassInfo(None, "bit", is_value=True, is_enum=True)
    info.enum_descriptor = EnumDescriptor("bit", ["zero", "one"])
    flip = MethodInfo(
        name="~",
        param_types=[],
        return_type=ty.BIT,
        is_static=False,
        is_local=True,
        is_operator=True,
        owner=info,
        decl=None,
        is_pure=True,
        is_intrinsic=True,
        intrinsic_name="bit.~",
    )
    info.methods["~"] = flip
    return info


# Math intrinsics: name -> (param kinds, result rule). All are pure and
# local; 'numeric' means the result follows the promoted argument type.
MATH_INTRINSICS = {
    "sqrt": (1, "double"),
    "exp": (1, "double"),
    "log": (1, "double"),
    "sin": (1, "double"),
    "cos": (1, "double"),
    "tan": (1, "double"),
    "pow": (2, "double"),
    "abs": (1, "numeric"),
    "min": (2, "numeric"),
    "max": (2, "numeric"),
    "floor": (1, "double"),
    "ceil": (1, "double"),
}


class CheckedProgram:
    """The result of semantic analysis: the annotated AST plus tables."""

    def __init__(self, program: ast.Program):
        self.program = program
        self.classes: dict[str, ClassInfo] = {}
        self.method_facts: dict[str, MethodFacts] = {}

    def class_info(self, name: str) -> Optional[ClassInfo]:
        return self.classes.get(name)

    def method(self, qualified: str) -> Optional[MethodInfo]:
        class_name, _, method_name = qualified.partition(".")
        info = self.classes.get(class_name)
        return info.find_method(method_name) if info else None

    def facts(self, qualified: str) -> MethodFacts:
        return self.method_facts.setdefault(qualified, MethodFacts())

    def all_methods(self):
        for cls in self.classes.values():
            for method in cls.methods.values():
                yield method
            yield from cls.constructors
