"""Token definitions for the Lime lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from repro.errors import SourcePosition


class TokenKind(Enum):
    # Literals and names
    IDENT = auto()
    INT_LIT = auto()
    LONG_LIT = auto()
    FLOAT_LIT = auto()
    DOUBLE_LIT = auto()
    BIT_LIT = auto()
    STRING_LIT = auto()

    # Punctuation
    LPAREN = auto()      # (
    RPAREN = auto()      # )
    LBRACE = auto()      # {
    RBRACE = auto()      # }
    LBRACKET = auto()    # [
    RBRACKET = auto()    # ]
    SEMI = auto()        # ;
    COMMA = auto()       # ,
    DOT = auto()         # .
    COLON = auto()       # :
    QUESTION = auto()    # ?

    # Operators
    ASSIGN = auto()      # =
    PLUS_ASSIGN = auto()     # +=
    MINUS_ASSIGN = auto()    # -=
    STAR_ASSIGN = auto()     # *=
    SLASH_ASSIGN = auto()    # /=
    CONNECT = auto()     # =>
    PLUS = auto()        # +
    MINUS = auto()       # -
    STAR = auto()        # *
    SLASH = auto()       # /
    PERCENT = auto()     # %
    AT = auto()          # @  (map operator)
    BANG = auto()        # !  (unary not / binary reduce operator)
    TILDE = auto()       # ~
    AMP = auto()         # &
    PIPE = auto()        # |
    CARET = auto()       # ^
    AMP_AMP = auto()     # &&
    PIPE_PIPE = auto()   # ||
    EQ = auto()          # ==
    NE = auto()          # !=
    LT = auto()          # <
    GT = auto()          # >
    LE = auto()          # <=
    GE = auto()          # >=
    SHL = auto()         # <<
    SHR = auto()         # >>
    PLUS_PLUS = auto()   # ++
    MINUS_MINUS = auto() # --

    # Keywords
    KW_CLASS = auto()
    KW_ENUM = auto()
    KW_VALUE = auto()
    KW_LOCAL = auto()
    KW_PUBLIC = auto()
    KW_PRIVATE = auto()
    KW_STATIC = auto()
    KW_FINAL = auto()
    KW_VAR = auto()
    KW_NEW = auto()
    KW_RETURN = auto()
    KW_IF = auto()
    KW_ELSE = auto()
    KW_FOR = auto()
    KW_WHILE = auto()
    KW_BREAK = auto()
    KW_CONTINUE = auto()
    KW_TASK = auto()
    KW_THIS = auto()
    KW_TRUE = auto()
    KW_FALSE = auto()
    KW_VOID = auto()
    KW_INT = auto()
    KW_LONG = auto()
    KW_FLOAT = auto()
    KW_DOUBLE = auto()
    KW_BOOLEAN = auto()
    KW_BIT = auto()
    KW_STRING = auto()

    EOF = auto()


KEYWORDS = {
    "class": TokenKind.KW_CLASS,
    "enum": TokenKind.KW_ENUM,
    "value": TokenKind.KW_VALUE,
    "local": TokenKind.KW_LOCAL,
    "public": TokenKind.KW_PUBLIC,
    "private": TokenKind.KW_PRIVATE,
    "static": TokenKind.KW_STATIC,
    "final": TokenKind.KW_FINAL,
    "var": TokenKind.KW_VAR,
    "new": TokenKind.KW_NEW,
    "return": TokenKind.KW_RETURN,
    "if": TokenKind.KW_IF,
    "else": TokenKind.KW_ELSE,
    "for": TokenKind.KW_FOR,
    "while": TokenKind.KW_WHILE,
    "break": TokenKind.KW_BREAK,
    "continue": TokenKind.KW_CONTINUE,
    "task": TokenKind.KW_TASK,
    "this": TokenKind.KW_THIS,
    "true": TokenKind.KW_TRUE,
    "false": TokenKind.KW_FALSE,
    "void": TokenKind.KW_VOID,
    "int": TokenKind.KW_INT,
    "long": TokenKind.KW_LONG,
    "float": TokenKind.KW_FLOAT,
    "double": TokenKind.KW_DOUBLE,
    "boolean": TokenKind.KW_BOOLEAN,
    "bit": TokenKind.KW_BIT,
    "String": TokenKind.KW_STRING,
}

PRIMITIVE_TYPE_KINDS = {
    TokenKind.KW_INT: "int",
    TokenKind.KW_LONG: "long",
    TokenKind.KW_FLOAT: "float",
    TokenKind.KW_DOUBLE: "double",
    TokenKind.KW_BOOLEAN: "boolean",
    TokenKind.KW_BIT: "bit",
    TokenKind.KW_VOID: "void",
}


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position and literal payload."""

    kind: TokenKind
    text: str
    position: SourcePosition
    value: object = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}@{self.position})"
