"""Semantic analysis for Lime.

Beyond ordinary Java-style type checking, this pass enforces the strong
isolation rules of Section 2.1 and the task-graph typing of Section 2.2:

* value classes may only contain value-typed (implicitly final) fields,
  and their methods are implicitly ``local``;
* a ``local`` method may only call other local methods, may not touch
  static mutable state, may not perform I/O, and may not build tasks;
* a pure method is a local static method whose parameters and return
  type are all values and which touches no fields;
* the ``task`` operator applies only to local methods with value
  parameters and a value return (these become filters);
* only values may flow along a connect (``=>``) edge;
* relocation brackets wrap task-typed expressions only.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import IsolationError, LimeTypeError, TaskGraphError
from repro.lime import ast_nodes as ast
from repro.lime import types as ty
from repro.lime.parser import parse
from repro.lime.symbols import (
    MATH_INTRINSICS,
    CheckedProgram,
    ClassInfo,
    FieldInfo,
    MethodFacts,
    MethodInfo,
    make_builtin_bit_class,
)


class _Scope:
    """Lexical scope chain for locals. Lime forbids shadowing, so a
    redeclaration anywhere in the chain is an error."""

    def __init__(self, parent: "Optional[_Scope]" = None):
        self.parent = parent
        self.names: dict[str, ty.Type] = {}

    def declare(self, name: str, type_: ty.Type, position) -> None:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                raise LimeTypeError(
                    f"variable {name!r} is already declared", position
                )
            scope = scope.parent
        self.names[name] = type_

    def lookup(self, name: str) -> Optional[ty.Type]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class TypeChecker:
    def __init__(self, program: ast.Program):
        self.program = program
        self.checked = CheckedProgram(program)
        self.checked.classes["bit"] = make_builtin_bit_class()
        # Per-body state.
        self._current_class: Optional[ClassInfo] = None
        self._current_method: Optional[MethodInfo] = None
        self._facts: Optional[MethodFacts] = None
        self._loop_depth = 0

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def check(self) -> CheckedProgram:
        self._declare_classes()
        self._declare_members()
        for cls in self.program.classes:
            self._check_class_body(cls)
        self._compute_purity()
        return self.checked

    # ------------------------------------------------------------------
    # Declaration passes
    # ------------------------------------------------------------------

    def _declare_classes(self) -> None:
        for cls in self.program.classes:
            if cls.name in self.checked.classes:
                raise LimeTypeError(
                    f"duplicate class {cls.name!r}", cls.position
                )
            if cls.is_enum and not cls.is_value:
                raise LimeTypeError(
                    "Lime enums must be declared 'value' (unlike Java "
                    "enums, they are immutable)",
                    cls.position,
                )
            self.checked.classes[cls.name] = ClassInfo(
                cls, cls.name, cls.is_value, cls.is_enum
            )

    def _declare_members(self) -> None:
        for cls in self.program.classes:
            info = self.checked.classes[cls.name]
            for field in cls.fields:
                self._declare_field(info, field)
            for method in cls.methods:
                self._declare_method(info, method)

    def _declare_field(self, info: ClassInfo, field: ast.FieldDecl) -> None:
        if info.is_enum:
            raise LimeTypeError(
                "value enums may not declare fields", field.position
            )
        field_type = self.resolve_type(field.type_syntax)
        if info.is_value:
            if not field_type.is_value_type:
                raise IsolationError(
                    f"field {field.name!r} of value class {info.name} "
                    f"must have a value type, found {field_type}",
                    field.position,
                )
        if field.name in info.fields:
            raise LimeTypeError(
                f"duplicate field {field.name!r}", field.position
            )
        field.owner = info
        field.type = field_type
        # Fields of value classes are implicitly final.
        is_final = field.is_final or info.is_value
        info.fields[field.name] = FieldInfo(
            field.name, field_type, field.is_static, is_final, info, field
        )

    def _declare_method(self, info: ClassInfo, method: ast.MethodDecl) -> None:
        if method.is_constructor:
            if method.name != info.name:
                raise LimeTypeError(
                    f"constructor name {method.name!r} does not match "
                    f"class {info.name}",
                    method.position,
                )
            param_types = [
                self.resolve_type(p.type_syntax) for p in method.params
            ]
            for param, ptype in zip(method.params, param_types):
                param.type = ptype
            method.owner = info
            minfo = MethodInfo(
                name=method.name,
                param_types=param_types,
                return_type=info.type,
                is_static=False,
                is_local=("local" in method.modifiers) or info.is_value,
                is_operator=False,
                owner=info,
                decl=method,
                is_constructor=True,
            )
            method.signature = minfo
            info.constructors.append(minfo)
            return
        if method.name in info.methods:
            raise LimeTypeError(
                f"duplicate method {method.name!r} in {info.name} "
                "(the Lime subset does not support overloading)",
                method.position,
            )
        return_type = self.resolve_type(method.return_type)
        param_types = [
            self.resolve_type(p.type_syntax) for p in method.params
        ]
        for param, ptype in zip(method.params, param_types):
            param.type = ptype
        if method.is_operator and method.is_static:
            raise LimeTypeError(
                "operator methods apply to 'this' and cannot be static",
                method.position,
            )
        # Methods of value classes (and enums) are local by default
        # (Section 2.1: "The methods of a value type are local by
        # default").
        is_local = ("local" in method.modifiers) or info.is_value
        method.owner = info
        method.is_local_effective = is_local
        minfo = MethodInfo(
            name=method.name,
            param_types=param_types,
            return_type=return_type,
            is_static=method.is_static,
            is_local=is_local,
            is_operator=method.is_operator,
            owner=info,
            decl=method,
        )
        method.signature = minfo
        info.methods[method.name] = minfo

    def resolve_type(self, syntax: Optional[ast.TypeSyntax]) -> ty.Type:
        if syntax is None:
            return ty.VOID
        base: ty.Type
        prim = ty.type_from_kind_name(syntax.name)
        if prim is not None:
            base = prim
        elif syntax.name == "String":
            base = ty.STRING
        else:
            info = self.checked.classes.get(syntax.name)
            if info is None:
                raise LimeTypeError(
                    f"unknown type {syntax.name!r}", syntax.position
                )
            base = info.type
        for dim in reversed(syntax.array_dims):
            is_value = dim == "value"
            if is_value and not base.is_value_type:
                raise IsolationError(
                    f"value array element type {base} must itself be a "
                    "value type",
                    syntax.position,
                )
            if isinstance(base, ty.PrimType) and base.name == "void":
                raise LimeTypeError("array of void", syntax.position)
            base = ty.ArrayType(base, is_value)
        return base

    # ------------------------------------------------------------------
    # Body checking
    # ------------------------------------------------------------------

    def _check_class_body(self, cls: ast.ClassDecl) -> None:
        info = self.checked.classes[cls.name]
        self._current_class = info
        for field in cls.fields:
            if field.init is not None:
                # Field initializers are checked in a static-global or
                # instance context without locals.
                self._current_method = None
                self._facts = None
                self._scope = None
                init_type = self.check_expr(field.init)
                if not ty.assignable(info.fields[field.name].type, init_type):
                    raise LimeTypeError(
                        f"cannot initialize {info.fields[field.name].type} "
                        f"field {field.name!r} with {init_type}",
                        field.position,
                    )
        for method in cls.methods:
            self._check_method_body(info, method)
        self._current_class = None

    def _check_method_body(self, info: ClassInfo, method: ast.MethodDecl) -> None:
        minfo = method.signature
        self._current_method = minfo
        self._facts = self.checked.facts(minfo.qualified_name)
        scope = _Scope()
        for param in method.params:
            scope.declare(param.name, param.type, param.position)
        returns = self._check_block(method.body, scope)
        if (
            not minfo.is_constructor
            and minfo.return_type != ty.VOID
            and not returns
        ):
            raise LimeTypeError(
                f"method {minfo.qualified_name} may complete without "
                "returning a value",
                method.position,
            )
        self._current_method = None
        self._facts = None

    # Statements ---------------------------------------------------------

    def _check_block(self, block: ast.Block, scope: _Scope) -> bool:
        inner = _Scope(scope)
        returns = False
        for stmt in block.statements:
            if returns:
                raise LimeTypeError("unreachable statement", stmt.position)
            returns = self._check_stmt(stmt, inner)
        return returns

    def _check_stmt(self, stmt: ast.Stmt, scope: _Scope) -> bool:
        # Pin the expression-resolution scope to this statement's scope;
        # otherwise a scope from an exited nested block could leak into
        # sibling statements.
        self._scope = scope
        if isinstance(stmt, ast.Block):
            return self._check_block(stmt, scope)
        if isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope)
            return False
        if isinstance(stmt, ast.ExprStmt):
            self.check_expr(stmt.expr)
            return False
        if isinstance(stmt, ast.If):
            self._require_boolean(stmt.cond, "if condition")
            then_returns = self._check_stmt(stmt.then, _Scope(scope))
            else_returns = False
            if stmt.other is not None:
                else_returns = self._check_stmt(stmt.other, _Scope(scope))
            return then_returns and else_returns and stmt.other is not None
        if isinstance(stmt, ast.While):
            if self._facts is not None:
                self._facts.has_while = True
            self._require_boolean(stmt.cond, "while condition")
            self._loop_depth += 1
            self._check_stmt(stmt.body, _Scope(scope))
            self._loop_depth -= 1
            return False
        if isinstance(stmt, ast.For):
            if self._facts is not None:
                self._facts.has_for = True
            inner = _Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, inner)
            if stmt.cond is not None:
                self._require_boolean(stmt.cond, "for condition")
            self._loop_depth += 1
            if stmt.update is not None:
                # Must check the body first? Order does not matter for
                # typing; update may use loop variables from init.
                pass
            self._check_stmt(stmt.body, _Scope(inner))
            if stmt.update is not None:
                self.check_expr_in_scope(stmt.update, inner)
            self._loop_depth -= 1
            return False
        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self._loop_depth == 0:
                raise LimeTypeError(
                    "break/continue outside of a loop", stmt.position
                )
            return False
        if isinstance(stmt, ast.Return):
            return self._check_return(stmt)
        raise AssertionError(f"unknown statement {stmt!r}")

    def _check_var_decl(self, stmt: ast.VarDecl, scope: _Scope) -> None:
        if stmt.init is None and stmt.type_syntax is None:
            raise LimeTypeError(
                f"'var' declaration of {stmt.name!r} needs an initializer",
                stmt.position,
            )
        declared = (
            self.resolve_type(stmt.type_syntax)
            if stmt.type_syntax is not None
            else None
        )
        if stmt.init is not None:
            init_type = self.check_expr_in_scope(stmt.init, scope)
            if isinstance(init_type, ty.PrimType) and init_type.name == "void":
                raise LimeTypeError(
                    "cannot assign a void expression", stmt.position
                )
            if declared is None:
                declared = init_type
            elif not ty.assignable(declared, init_type):
                raise LimeTypeError(
                    f"cannot initialize {declared} variable "
                    f"{stmt.name!r} with {init_type}",
                    stmt.position,
                )
        assert declared is not None
        stmt.declared_type = declared
        scope.declare(stmt.name, declared, stmt.position)

    def _check_return(self, stmt: ast.Return) -> bool:
        minfo = self._current_method
        assert minfo is not None
        expected = (
            minfo.owner.type if minfo.is_constructor else minfo.return_type
        )
        if minfo.is_constructor:
            if stmt.value is not None:
                raise LimeTypeError(
                    "constructors cannot return a value", stmt.position
                )
            return True
        if expected == ty.VOID:
            if stmt.value is not None:
                raise LimeTypeError(
                    f"{minfo.qualified_name} returns void", stmt.position
                )
            return True
        if stmt.value is None:
            raise LimeTypeError(
                f"{minfo.qualified_name} must return {expected}",
                stmt.position,
            )
        actual = self.check_expr(stmt.value)
        if not ty.assignable(expected, actual):
            raise LimeTypeError(
                f"cannot return {actual} from method of type {expected}",
                stmt.position,
            )
        return True

    def _require_boolean(self, expr: ast.Expr, what: str) -> None:
        found = self.check_expr(expr)
        if found != ty.BOOLEAN:
            raise LimeTypeError(
                f"{what} must be boolean, found {found}", expr.position
            )

    # Expressions ----------------------------------------------------------

    def check_expr_in_scope(self, expr: ast.Expr, scope: _Scope) -> ty.Type:
        self._scope = scope
        return self.check_expr(expr)

    def check_expr(self, expr: ast.Expr) -> ty.Type:
        result = self._check_expr_inner(expr)
        expr.type = result
        return result

    # The scope is threaded through an attribute because every recursive
    # call shares the innermost scope of the enclosing statement.
    _scope: Optional[_Scope] = None

    def _check_expr_inner(self, expr: ast.Expr) -> ty.Type:
        if isinstance(expr, ast.IntLit):
            return ty.LONG if expr.is_long else ty.INT
        if isinstance(expr, ast.FloatLit):
            if self._facts is not None and expr.is_double:
                self._facts.uses_double = True
            return ty.DOUBLE if expr.is_double else ty.FLOAT
        if isinstance(expr, ast.BoolLit):
            return ty.BOOLEAN
        if isinstance(expr, ast.BitLit):
            return ty.ArrayType(ty.BIT, is_value=True)
        if isinstance(expr, ast.StringLit):
            self._note_string_use(expr)
            return ty.STRING
        if isinstance(expr, ast.Name):
            return self._check_name(expr)
        if isinstance(expr, ast.This):
            return self._check_this(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._check_field_access(expr)
        if isinstance(expr, ast.Index):
            return self._check_index(expr)
        if isinstance(expr, ast.Call):
            return self._check_call(expr)
        if isinstance(expr, ast.New):
            return self._check_new(expr)
        if isinstance(expr, ast.Unary):
            return self._check_unary(expr)
        if isinstance(expr, ast.Binary):
            return self._check_binary(expr)
        if isinstance(expr, ast.Ternary):
            return self._check_ternary(expr)
        if isinstance(expr, ast.Assign):
            return self._check_assign(expr)
        if isinstance(expr, ast.Cast):
            return self._check_cast(expr)
        if isinstance(expr, ast.MapExpr):
            return self._check_map(expr)
        if isinstance(expr, ast.ReduceExpr):
            return self._check_reduce(expr)
        if isinstance(expr, ast.TaskExpr):
            return self._check_task(expr)
        if isinstance(expr, ast.ConnectExpr):
            return self._check_connect(expr)
        if isinstance(expr, ast.RelocExpr):
            return self._check_reloc(expr)
        raise AssertionError(f"unknown expression {expr!r}")

    def _note_string_use(self, expr: ast.Expr) -> None:
        if self._facts is not None:
            self._facts.uses_strings = True
        if self._in_local_context():
            raise IsolationError(
                "strings are host-only and unavailable in local methods",
                expr.position,
            )

    def _in_local_context(self) -> bool:
        return self._current_method is not None and self._current_method.is_local

    def _check_name(self, expr: ast.Name) -> ty.Type:
        if self._scope is not None:
            local = self._scope.lookup(expr.ident)
            if local is not None:
                expr.resolution = "local"
                return local
        # A field of the current class?
        if self._current_class is not None:
            field = self._current_class.find_field(expr.ident)
            if field is not None:
                return self._resolve_field_use(expr, field)
            # Bare enum constants are in scope inside their own enum
            # (Figure 1: 'this == zero ? one : zero').
            descriptor = self._current_class.enum_descriptor
            if descriptor is not None and expr.ident in descriptor.constants:
                expr.resolution = "enum_const"
                expr.decl = self._current_class
                return (
                    ty.BIT
                    if self._current_class.name == "bit"
                    else self._current_class.type
                )
        # A class name (receiver position)?
        if expr.ident in self.checked.classes or expr.ident == "Math":
            expr.resolution = "class"
            # Class references have no value type; flag misuse lazily at
            # the use site (calls and field accesses handle 'class').
            return ty.VOID
        raise LimeTypeError(f"unknown name {expr.ident!r}", expr.position)

    def _resolve_field_use(self, expr, field: FieldInfo) -> ty.Type:
        if field.is_static:
            expr.resolution = "static_field"
            if not field.is_final and self._in_local_context():
                raise IsolationError(
                    f"local method {self._current_method.qualified_name} "
                    f"may not access static mutable field {field.name!r}",
                    expr.position,
                )
            if not field.is_final and self._facts is not None:
                self._facts.accesses_static_mutable = True
        else:
            expr.resolution = "field"
            if self._current_method is not None and self._current_method.is_static:
                raise LimeTypeError(
                    f"instance field {field.name!r} referenced from a "
                    "static method",
                    expr.position,
                )
            if self._facts is not None:
                self._facts.accesses_instance_fields = True
        expr.decl = field
        return field.type

    def _check_this(self, expr: ast.This) -> ty.Type:
        if self._current_class is None or (
            self._current_method is not None and self._current_method.is_static
        ):
            raise LimeTypeError("'this' in a static context", expr.position)
        if self._facts is not None:
            self._facts.accesses_instance_fields = True
        return self._current_class.type

    def _check_field_access(self, expr: ast.FieldAccess) -> ty.Type:
        receiver = expr.receiver
        # Class-qualified access: enum constants or static fields.
        if isinstance(receiver, ast.Name):
            receiver_type = self.check_expr(receiver)
            if receiver.resolution == "class":
                info = self.checked.classes.get(receiver.ident)
                if info is None:
                    raise LimeTypeError(
                        f"unknown class {receiver.ident!r}", expr.position
                    )
                if info.is_enum and info.enum_descriptor is not None:
                    if expr.name in info.enum_descriptor.constants:
                        expr.resolution = "enum_const"
                        # The built-in bit enum is also the primitive
                        # bit type: bit.zero has type bit.
                        if info.name == "bit":
                            return ty.BIT
                        return info.type
                field = info.find_field(expr.name)
                if field is not None and field.is_static:
                    return self._resolve_field_use(expr, field)
                raise LimeTypeError(
                    f"{receiver.ident} has no static member {expr.name!r}",
                    expr.position,
                )
        else:
            receiver_type = self.check_expr(receiver)
        if isinstance(receiver_type, ty.ArrayType) and expr.name == "length":
            expr.resolution = "length"
            return ty.INT
        if isinstance(receiver_type, ty.ClassType):
            info = self.checked.classes.get(receiver_type.name)
            if info is not None:
                field = info.find_field(expr.name)
                if field is not None and not field.is_static:
                    expr.resolution = "field"
                    expr.decl = field
                    return field.type
        raise LimeTypeError(
            f"{receiver_type} has no member {expr.name!r}", expr.position
        )

    def _check_index(self, expr: ast.Index) -> ty.Type:
        array_type = self.check_expr(expr.array)
        if not isinstance(array_type, ty.ArrayType):
            raise LimeTypeError(
                f"cannot index into {array_type}", expr.position
            )
        index_type = self.check_expr(expr.index)
        if index_type not in (ty.INT, ty.LONG):
            raise LimeTypeError(
                f"array index must be integral, found {index_type}",
                expr.index.position,
            )
        return array_type.element

    # Calls ----------------------------------------------------------------

    def _check_call(self, expr: ast.Call) -> ty.Type:
        # Bare calls: method of the current class, or the println/print
        # intrinsics.
        if expr.receiver is None:
            if expr.name in ("println", "print"):
                return self._check_println(expr)
            if self._current_class is None:
                raise LimeTypeError(
                    f"unknown function {expr.name!r}", expr.position
                )
            target = self._current_class.find_method(expr.name)
            if target is None:
                raise LimeTypeError(
                    f"{self._current_class.name} has no method "
                    f"{expr.name!r}",
                    expr.position,
                )
            return self._check_resolved_call(expr, target, has_receiver=False)
        # Receiver may be a class reference (static call / Math).
        if isinstance(expr.receiver, ast.Name):
            receiver_name = expr.receiver.ident
            if receiver_name == "Math":
                expr.receiver.resolution = "class"
                return self._check_math(expr)
            if receiver_name in self.checked.classes and (
                self._scope is None
                or self._scope.lookup(receiver_name) is None
            ):
                expr.receiver.resolution = "class"
                info = self.checked.classes[receiver_name]
                target = info.find_method(expr.name)
                if target is None or not target.is_static:
                    raise LimeTypeError(
                        f"{receiver_name} has no static method "
                        f"{expr.name!r}",
                        expr.position,
                    )
                return self._check_resolved_call(
                    expr, target, has_receiver=False
                )
        receiver_type = self.check_expr(expr.receiver)
        if isinstance(receiver_type, ty.ArrayType):
            return self._check_array_method(expr, receiver_type)
        if isinstance(receiver_type, ty.TaskType):
            return self._check_task_method(expr, receiver_type)
        if isinstance(receiver_type, ty.ClassType):
            info = self.checked.classes.get(receiver_type.name)
            if info is None:
                raise LimeTypeError(
                    f"unknown class {receiver_type.name!r}", expr.position
                )
            target = info.find_method(expr.name)
            if target is None or target.is_static:
                raise LimeTypeError(
                    f"{receiver_type} has no instance method {expr.name!r}",
                    expr.position,
                )
            return self._check_resolved_call(expr, target, has_receiver=True)
        raise LimeTypeError(
            f"cannot call {expr.name!r} on {receiver_type}", expr.position
        )

    def _check_resolved_call(
        self, expr: ast.Call, target: MethodInfo, has_receiver: bool
    ) -> ty.Type:
        if not target.is_static and not has_receiver:
            # Implicit this call.
            if self._current_method is not None and self._current_method.is_static:
                raise LimeTypeError(
                    f"instance method {target.qualified_name} called from "
                    "a static context",
                    expr.position,
                )
        if len(expr.args) != len(target.param_types):
            raise LimeTypeError(
                f"{target.qualified_name} expects "
                f"{len(target.param_types)} arguments, got {len(expr.args)}",
                expr.position,
            )
        for arg, param_type in zip(expr.args, target.param_types):
            arg_type = self.check_expr(arg)
            if not ty.assignable(param_type, arg_type):
                raise LimeTypeError(
                    f"argument of type {arg_type} not assignable to "
                    f"{param_type} in call to {target.qualified_name}",
                    arg.position,
                )
        if self._in_local_context() and not target.is_local:
            raise IsolationError(
                f"local method {self._current_method.qualified_name} may "
                f"only call local methods; {target.qualified_name} is "
                "global",
                expr.position,
            )
        if self._facts is not None:
            self._facts.calls.add(target.qualified_name)
        expr.target = target
        return target.return_type

    def _check_println(self, expr: ast.Call) -> ty.Type:
        if self._in_local_context():
            raise IsolationError(
                "I/O (println) is not allowed in local methods",
                expr.position,
            )
        if self._facts is not None:
            self._facts.does_io = True
        if len(expr.args) != 1:
            raise LimeTypeError(
                f"{expr.name} takes exactly one argument", expr.position
            )
        self.check_expr(expr.args[0])
        expr.intrinsic = expr.name
        return ty.VOID

    def _check_math(self, expr: ast.Call) -> ty.Type:
        spec = MATH_INTRINSICS.get(expr.name)
        if spec is None:
            raise LimeTypeError(
                f"Math has no intrinsic {expr.name!r}", expr.position
            )
        arity, result_rule = spec
        if len(expr.args) != arity:
            raise LimeTypeError(
                f"Math.{expr.name} expects {arity} arguments",
                expr.position,
            )
        arg_types = [self.check_expr(arg) for arg in expr.args]
        promoted: ty.Type = ty.DOUBLE
        for arg_type in arg_types:
            if not (isinstance(arg_type, ty.PrimType) and arg_type.is_numeric):
                raise LimeTypeError(
                    f"Math.{expr.name} requires numeric arguments, "
                    f"found {arg_type}",
                    expr.position,
                )
        if result_rule == "numeric":
            promoted = arg_types[0]
            for arg_type in arg_types[1:]:
                promoted = ty.binary_numeric_result(promoted, arg_type)
        if self._facts is not None:
            self._facts.intrinsic_calls.add(f"Math.{expr.name}")
        expr.intrinsic = f"Math.{expr.name}"
        return promoted

    def _check_array_method(
        self, expr: ast.Call, receiver_type: ty.ArrayType
    ) -> ty.Type:
        if expr.name == "source":
            return self._check_source(expr, receiver_type)
        if expr.name == "sink":
            return self._check_sink(expr, receiver_type)
        raise LimeTypeError(
            f"arrays have no method {expr.name!r}", expr.position
        )

    def _check_source(
        self, expr: ast.Call, receiver_type: ty.ArrayType
    ) -> ty.Type:
        self._require_graph_context(expr, "source")
        if not receiver_type.is_value_array:
            raise IsolationError(
                "source() requires a value array: only values may flow "
                "between tasks",
                expr.position,
            )
        if len(expr.args) != 1:
            raise LimeTypeError(
                "source(rate) takes exactly one argument", expr.position
            )
        rate_type = self.check_expr(expr.args[0])
        if rate_type != ty.INT:
            raise LimeTypeError(
                f"source rate must be int, found {rate_type}",
                expr.position,
            )
        rate = None
        if isinstance(expr.args[0], ast.IntLit):
            rate = expr.args[0].value
            if rate < 1:
                raise LimeTypeError(
                    "source rate must be at least 1", expr.position
                )
        expr.intrinsic = "source"
        expr.rate = rate
        element = receiver_type.element
        out_type = (
            element
            if rate == 1 or rate is None
            else ty.ArrayType(element, is_value=True)
        )
        return ty.TaskType(None, out_type)

    def _check_sink(
        self, expr: ast.Call, receiver_type: ty.ArrayType
    ) -> ty.Type:
        self._require_graph_context(expr, "sink")
        if receiver_type.is_value_array:
            raise LimeTypeError(
                "sink() accumulates into a mutable array, not a value "
                "array",
                expr.position,
            )
        if expr.args:
            raise LimeTypeError("sink() takes no arguments", expr.position)
        element = receiver_type.element
        if expr.type_args:
            explicit = self.resolve_type(expr.type_args[0])
            if explicit != element:
                raise LimeTypeError(
                    f"sink type argument {explicit} does not match array "
                    f"element type {element}",
                    expr.position,
                )
        if not element.is_value_type:
            raise IsolationError(
                "sink element type must be a value type", expr.position
            )
        expr.intrinsic = "sink"
        return ty.TaskType(element, None)

    def _check_task_method(
        self, expr: ast.Call, receiver_type: ty.TaskType
    ) -> ty.Type:
        if expr.name not in ("start", "finish"):
            raise LimeTypeError(
                f"task graphs have no method {expr.name!r}", expr.position
            )
        if expr.args:
            raise LimeTypeError(
                f"{expr.name}() takes no arguments", expr.position
            )
        if not receiver_type.is_closed:
            raise TaskGraphError(
                f"cannot {expr.name}() an open task graph of type "
                f"{receiver_type}: connect a source and a sink first",
                expr.position,
            )
        expr.intrinsic = expr.name
        return ty.VOID

    def _require_graph_context(self, expr: ast.Expr, what: str) -> None:
        if self._in_local_context():
            raise IsolationError(
                f"task graph construction ({what}) is not allowed in "
                "local methods",
                expr.position,
            )
        if self._facts is not None:
            self._facts.builds_tasks = True

    # new ------------------------------------------------------------------

    def _check_new(self, expr: ast.New) -> ty.Type:
        syntax = expr.type_syntax
        if expr.array_length is not None:
            # new T[n]
            element = self.resolve_type(
                ast.TypeSyntax(syntax.name, [], syntax.position)
            )
            length_type = self.check_expr(expr.array_length)
            if length_type != ty.INT:
                raise LimeTypeError(
                    f"array length must be int, found {length_type}",
                    expr.position,
                )
            if self._facts is not None:
                self._facts.allocates_arrays = True
            return ty.ArrayType(element, is_value=False)
        resolved = self.resolve_type(syntax)
        if isinstance(resolved, ty.ArrayType) and resolved.is_value_array:
            # new T[[]](mutableArray): freeze conversion (Figure 1).
            if len(expr.args) != 1:
                raise LimeTypeError(
                    "value array construction takes one array argument",
                    expr.position,
                )
            arg_type = self.check_expr(expr.args[0])
            expected = ty.ArrayType(resolved.element, is_value=False)
            if arg_type != expected and arg_type != resolved:
                raise LimeTypeError(
                    f"cannot construct {resolved} from {arg_type}",
                    expr.position,
                )
            return resolved
        if isinstance(resolved, ty.ClassType):
            info = self.checked.classes[resolved.name]
            if info.is_enum:
                raise LimeTypeError(
                    "enums cannot be instantiated with new", expr.position
                )
            ctor = self._find_constructor(info, expr)
            expr.target = ctor
            return resolved
        raise LimeTypeError(f"cannot instantiate {resolved}", expr.position)

    def _find_constructor(
        self, info: ClassInfo, expr: ast.New
    ) -> Optional[MethodInfo]:
        if not info.constructors:
            if expr.args:
                raise LimeTypeError(
                    f"{info.name} has no constructor taking arguments",
                    expr.position,
                )
            if info.is_value and info.fields:
                raise LimeTypeError(
                    f"value class {info.name} requires a constructor to "
                    "initialize its fields",
                    expr.position,
                )
            return None
        ctor = info.constructors[0]
        if len(expr.args) != len(ctor.param_types):
            raise LimeTypeError(
                f"{info.name} constructor expects "
                f"{len(ctor.param_types)} arguments",
                expr.position,
            )
        for arg, param_type in zip(expr.args, ctor.param_types):
            arg_type = self.check_expr(arg)
            if not ty.assignable(param_type, arg_type):
                raise LimeTypeError(
                    f"constructor argument {arg_type} not assignable to "
                    f"{param_type}",
                    arg.position,
                )
        if self._facts is not None:
            self._facts.calls.add(f"{info.name}.<init>")
        return ctor

    # Operators --------------------------------------------------------------

    def _check_unary(self, expr: ast.Unary) -> ty.Type:
        operand = self.check_expr(expr.operand)
        op = expr.op
        if op in ("++pre", "--pre", "++post", "--post"):
            if not isinstance(expr.operand, (ast.Name, ast.Index, ast.FieldAccess)):
                raise LimeTypeError(
                    "++/-- require an assignable operand", expr.position
                )
            self._check_lvalue(expr.operand)
            if operand not in (ty.INT, ty.LONG):
                raise LimeTypeError(
                    f"++/-- require an integral operand, found {operand}",
                    expr.position,
                )
            return operand
        if op == "-":
            if not (isinstance(operand, ty.PrimType) and operand.is_numeric):
                raise LimeTypeError(
                    f"cannot negate {operand}", expr.position
                )
            return operand
        if op == "!":
            if operand != ty.BOOLEAN:
                raise LimeTypeError(
                    f"'!' requires boolean, found {operand}", expr.position
                )
            return ty.BOOLEAN
        if op == "~":
            if operand == ty.BIT:
                # The built-in bit.~ operator method (Figure 1).
                if self._facts is not None:
                    self._facts.intrinsic_calls.add("bit.~")
                return ty.BIT
            if operand in (ty.INT, ty.LONG):
                return operand
            if isinstance(operand, ty.ClassType) and operand.is_enum:
                info = self.checked.classes.get(operand.name)
                target = info.find_method("~") if info else None
                if target is not None:
                    if self._facts is not None:
                        self._facts.calls.add(target.qualified_name)
                    return target.return_type
            raise LimeTypeError(
                f"no '~' operator for {operand}", expr.position
            )
        raise AssertionError(f"unknown unary {op}")

    def _check_binary(self, expr: ast.Binary) -> ty.Type:
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        op = expr.op
        if op == "+" and (left == ty.STRING or right == ty.STRING):
            self._note_string_use(expr)
            return ty.STRING
        if op in ("+", "-", "*", "/", "%"):
            result = ty.binary_numeric_result(left, right)
            if result is None:
                raise LimeTypeError(
                    f"operator {op} undefined for {left} and {right}",
                    expr.position,
                )
            return result
        if op in ("<<", ">>"):
            if left not in (ty.INT, ty.LONG) or right != ty.INT:
                raise LimeTypeError(
                    f"shift requires integral operands, found {left} "
                    f"and {right}",
                    expr.position,
                )
            return left
        if op in ("&", "|", "^"):
            if left == right == ty.BOOLEAN:
                return ty.BOOLEAN
            if left == right == ty.BIT:
                return ty.BIT
            if left in (ty.INT, ty.LONG) and right in (ty.INT, ty.LONG):
                result = ty.binary_numeric_result(left, right)
                assert result is not None
                return result
            raise LimeTypeError(
                f"operator {op} undefined for {left} and {right}",
                expr.position,
            )
        if op in ("&&", "||"):
            if left != ty.BOOLEAN or right != ty.BOOLEAN:
                raise LimeTypeError(
                    f"operator {op} requires booleans", expr.position
                )
            return ty.BOOLEAN
        if op in ("<", ">", "<=", ">="):
            if ty.binary_numeric_result(left, right) is None:
                raise LimeTypeError(
                    f"cannot compare {left} and {right}", expr.position
                )
            return ty.BOOLEAN
        if op in ("==", "!="):
            if (
                left == right
                or ty.binary_numeric_result(left, right) is not None
            ):
                return ty.BOOLEAN
            raise LimeTypeError(
                f"cannot compare {left} and {right}", expr.position
            )
        raise AssertionError(f"unknown binary {op}")

    def _check_ternary(self, expr: ast.Ternary) -> ty.Type:
        self._require_boolean(expr.cond, "conditional expression")
        then = self.check_expr(expr.then)
        other = self.check_expr(expr.other)
        if then == other:
            return then
        promoted = ty.binary_numeric_result(then, other)
        if promoted is not None:
            return promoted
        raise LimeTypeError(
            f"incompatible branches {then} and {other} in conditional",
            expr.position,
        )

    def _check_assign(self, expr: ast.Assign) -> ty.Type:
        target_type = self.check_expr(expr.target)
        self._check_lvalue(expr.target)
        value_type = self.check_expr(expr.value)
        if expr.op == "=":
            if not ty.assignable(target_type, value_type):
                raise LimeTypeError(
                    f"cannot assign {value_type} to {target_type}",
                    expr.position,
                )
            return target_type
        # Compound assignment carries an implicit narrowing cast back to
        # the target type (Java semantics: 'x += 2.5' is legal for int
        # x), so both sides merely need to be numeric.
        result = ty.binary_numeric_result(target_type, value_type)
        if result is None:
            raise LimeTypeError(
                f"compound assignment {expr.op} undefined for "
                f"{target_type} and {value_type}",
                expr.position,
            )
        return target_type

    def _check_lvalue(self, target: ast.Expr) -> None:
        if isinstance(target, ast.Name):
            if target.resolution in ("local", "param"):
                return
            if target.resolution in ("field", "static_field"):
                self._check_field_store(target, target.decl)
                return
            raise LimeTypeError(
                f"cannot assign to {target.ident!r}", target.position
            )
        if isinstance(target, ast.Index):
            array_type = target.array.type
            if isinstance(array_type, ty.ArrayType) and array_type.is_value_array:
                raise IsolationError(
                    "value array elements are read-only and cannot be "
                    "assigned (Section 2.2)",
                    target.position,
                )
            return
        if isinstance(target, ast.FieldAccess):
            if target.resolution in ("field", "static_field"):
                self._check_field_store(target, target.decl)
                return
            raise LimeTypeError(
                "cannot assign to this expression", target.position
            )
        raise LimeTypeError("invalid assignment target", target.position)

    def _check_field_store(self, node, field: Optional[FieldInfo]) -> None:
        if field is None:
            raise LimeTypeError("cannot assign here", node.position)
        in_constructor = (
            self._current_method is not None
            and self._current_method.is_constructor
            and self._current_method.owner is field.owner
        )
        if field.is_final and not in_constructor:
            raise IsolationError(
                f"field {field.name!r} is final"
                + (
                    " (fields of value classes are immutable)"
                    if field.owner.is_value
                    else ""
                ),
                node.position,
            )
        if self._in_local_context() and field.is_static:
            raise IsolationError(
                "local methods may not write static fields", node.position
            )

    def _check_cast(self, expr: ast.Cast) -> ty.Type:
        target = self.resolve_type(expr.type_syntax)
        operand = self.check_expr(expr.operand)
        if not ty.castable(target, operand):
            raise LimeTypeError(
                f"cannot cast {operand} to {target}", expr.position
            )
        return target

    # Map / reduce / tasks ---------------------------------------------------

    def _resolve_map_target(self, expr, what: str) -> MethodInfo:
        if expr.receiver is not None:
            info = self.checked.classes.get(expr.receiver)
            if info is None:
                raise LimeTypeError(
                    f"unknown class {expr.receiver!r}", expr.position
                )
        else:
            info = self._current_class
            if info is None:
                raise LimeTypeError(
                    f"{what} outside of a class", expr.position
                )
        target = info.find_method(expr.method)
        if target is None:
            raise LimeTypeError(
                f"{info.name} has no method {expr.method!r}", expr.position
            )
        if not target.is_local or not target.is_static:
            raise IsolationError(
                f"{what} requires a local static method; "
                f"{target.qualified_name} is not",
                expr.position,
            )
        if not target.takes_only_values:
            raise IsolationError(
                f"{what} method {target.qualified_name} must take only "
                "value parameters",
                expr.position,
            )
        if not target.return_type.is_value_type:
            raise IsolationError(
                f"{what} method {target.qualified_name} must return a "
                "value",
                expr.position,
            )
        if self._facts is not None:
            self._facts.calls.add(target.qualified_name)
        expr.target = target
        return target

    def _check_map(self, expr: ast.MapExpr) -> ty.Type:
        """Map with broadcasting: an argument whose type is ``T[[]]``
        against a ``T`` parameter is *mapped* (one element per work
        item); an argument whose type equals the parameter type exactly
        is *broadcast* (the same value for every work item — how
        kernels like matrix multiply receive whole operand arrays).
        At least one argument must be mapped."""
        target = self._resolve_map_target(expr, "map ('@')")
        if len(expr.args) != len(target.param_types):
            raise LimeTypeError(
                f"map over {target.qualified_name} needs "
                f"{len(target.param_types)} arguments",
                expr.position,
            )
        broadcast: list = []
        for arg, param_type in zip(expr.args, target.param_types):
            arg_type = self.check_expr(arg)
            mapped_type = ty.ArrayType(param_type, is_value=True)
            if arg_type == mapped_type:
                broadcast.append(False)
            elif arg_type == param_type:
                broadcast.append(True)
            else:
                raise LimeTypeError(
                    f"map argument must be {mapped_type} (mapped) or "
                    f"{param_type} (broadcast), found {arg_type}",
                    arg.position,
                )
        if all(broadcast):
            raise LimeTypeError(
                "map needs at least one mapped (array) argument",
                expr.position,
            )
        element = target.return_type
        if not (
            isinstance(element, ty.PrimType)
            or (isinstance(element, ty.ClassType) and element.is_enum)
        ):
            raise LimeTypeError(
                f"map methods must return a primitive or enum value, "
                f"found {element}",
                expr.position,
            )
        expr.broadcast = broadcast
        return ty.ArrayType(element, is_value=True)

    def _check_reduce(self, expr: ast.ReduceExpr) -> ty.Type:
        target = self._resolve_map_target(expr, "reduce ('!')")
        if len(target.param_types) != 2 or (
            target.param_types[0] != target.param_types[1]
            or target.return_type != target.param_types[0]
        ):
            raise LimeTypeError(
                f"reduce requires a binary method (T, T) -> T; "
                f"{target.qualified_name} does not qualify",
                expr.position,
            )
        if len(expr.args) != 1:
            raise LimeTypeError(
                "reduce takes exactly one array argument", expr.position
            )
        arg_type = self.check_expr(expr.args[0])
        expected = ty.ArrayType(target.param_types[0], is_value=True)
        if arg_type != expected:
            raise LimeTypeError(
                f"reduce argument must be {expected}, found {arg_type}",
                expr.position,
            )
        return target.return_type

    def _check_task(self, expr: ast.TaskExpr) -> ty.Type:
        self._require_graph_context(expr, "task")
        target = self._resolve_task_target(expr)
        expr.target = target
        if getattr(expr, "is_instance_task", False):
            # Stateful tasks require pipeline parallelism; data
            # parallelism is impossible, so arity stays per the method.
            pass
        if not target.param_types:
            raise TaskGraphError(
                f"task method {target.qualified_name} must consume at "
                "least one input",
                expr.position,
            )
        first = target.param_types[0]
        if any(p != first for p in target.param_types):
            raise TaskGraphError(
                "all parameters of a task method must share one type "
                "(the task consumes that many items per firing)",
                expr.position,
            )
        if target.return_type == ty.VOID:
            raise TaskGraphError(
                f"task method {target.qualified_name} must produce a "
                "value",
                expr.position,
            )
        return ty.TaskType(first, target.return_type)

    def _resolve_task_target(self, expr: ast.TaskExpr) -> MethodInfo:
        expr.is_instance_task = False
        if expr.receiver is not None:
            # The receiver may be a local variable holding an object
            # instance (a *stateful* task, Section 2.1) or a class name
            # (a pure static task).
            local_type = (
                self._scope.lookup(expr.receiver)
                if self._scope is not None
                else None
            )
            if local_type is not None:
                return self._resolve_instance_task(expr, local_type)
            info = self.checked.classes.get(expr.receiver)
            if info is None:
                raise LimeTypeError(
                    f"unknown class or variable {expr.receiver!r}",
                    expr.position,
                )
        else:
            info = self._current_class
            assert info is not None
        target = info.find_method(expr.method)
        if target is None:
            raise LimeTypeError(
                f"{info.name} has no method {expr.method!r}", expr.position
            )
        # Inner tasks (filters) must be strongly isolated: local methods
        # with value arguments (Section 2.2).
        if not target.is_local:
            raise IsolationError(
                f"the task operator requires a local method; "
                f"{target.qualified_name} is global",
                expr.position,
            )
        if not target.is_static:
            raise TaskGraphError(
                f"use an object instance for the stateful task over "
                f"{target.qualified_name} (e.g. 'task obj.{expr.method}')",
                expr.position,
            )
        produces_value = (
            target.return_type == ty.VOID or target.return_type.is_value_type
        )
        if not target.takes_only_values or not produces_value:
            raise IsolationError(
                f"task method {target.qualified_name} must consume and "
                "produce values only",
                expr.position,
            )
        if self._facts is not None:
            self._facts.calls.add(target.qualified_name)
        return target

    def _resolve_instance_task(
        self, expr: ast.TaskExpr, receiver_type: ty.Type
    ) -> MethodInfo:
        """Stateful task (Section 2.1): the instance must come from an
        *isolating constructor* — a local constructor with value
        arguments — and the method must be local with value I/O."""
        if not isinstance(receiver_type, ty.ClassType) or receiver_type.is_enum:
            raise TaskGraphError(
                f"task receiver {expr.receiver!r} must be an object "
                f"instance, found {receiver_type}",
                expr.position,
            )
        info = self.checked.classes.get(receiver_type.name)
        assert info is not None
        ctor = info.constructors[0] if info.constructors else None
        ctor_isolating = info.is_value or (
            ctor is not None
            and ctor.is_local
            and all(p.is_value_type for p in ctor.param_types)
        )
        if not ctor_isolating:
            raise IsolationError(
                f"stateful tasks require an isolating constructor "
                f"(local, value arguments) on {info.name}",
                expr.position,
            )
        target = info.find_method(expr.method)
        if target is None or target.is_static:
            raise LimeTypeError(
                f"{info.name} has no instance method {expr.method!r}",
                expr.position,
            )
        if not target.is_local:
            raise IsolationError(
                f"the task operator requires a local method; "
                f"{target.qualified_name} is global",
                expr.position,
            )
        produces_value = (
            target.return_type == ty.VOID
            or target.return_type.is_value_type
        )
        if not target.takes_only_values or not produces_value:
            raise IsolationError(
                f"task method {target.qualified_name} must consume and "
                "produce values only",
                expr.position,
            )
        if self._facts is not None:
            self._facts.calls.add(target.qualified_name)
        expr.is_instance_task = True
        expr.receiver_type = receiver_type
        return target

    def _check_connect(self, expr: ast.ConnectExpr) -> ty.Type:
        self._require_graph_context(expr, "connect ('=>')")
        left = self.check_expr(expr.left)
        right = self.check_expr(expr.right)
        if not isinstance(left, ty.TaskType) or not isinstance(
            right, ty.TaskType
        ):
            raise TaskGraphError(
                f"'=>' connects tasks, found {left} and {right}",
                expr.position,
            )
        if left.output is None:
            raise TaskGraphError(
                "left side of '=>' has no output (it ends in a sink)",
                expr.position,
            )
        if right.input is None:
            raise TaskGraphError(
                "right side of '=>' has no input (it starts at a source)",
                expr.position,
            )
        if not ty.assignable(right.input, left.output):
            raise TaskGraphError(
                f"type mismatch across '=>': {left.output} flows into "
                f"{right.input}",
                expr.position,
            )
        if not left.output.is_value_type:
            raise IsolationError(
                f"only values may flow between tasks; {left.output} is "
                "not a value type",
                expr.position,
            )
        return ty.TaskType(left.input, right.output)

    def _check_reloc(self, expr: ast.RelocExpr) -> ty.Type:
        inner = self.check_expr(expr.inner)
        if not isinstance(inner, ty.TaskType):
            raise TaskGraphError(
                "relocation brackets '([ ... ])' must wrap a task "
                f"expression, found {inner}",
                expr.position,
            )
        return inner

    # ------------------------------------------------------------------
    # Purity fixpoint
    # ------------------------------------------------------------------

    def _compute_purity(self) -> None:
        """Pure = local static, value params and return, no field access,
        no allocation side channels beyond values, and all callees pure.

        Iterate to a fixpoint because purity is mutually recursive
        through the call graph. Operator methods of value enums are also
        pure (their only state is the immutable ``this``).
        """
        methods = [
            m
            for m in self.checked.all_methods()
            if not m.is_constructor and not m.is_intrinsic
        ]

        def base_eligible(m: MethodInfo) -> bool:
            facts = self.checked.method_facts.get(m.qualified_name)
            if facts is None:
                facts = MethodFacts()
            if facts.does_io or facts.builds_tasks:
                return False
            if facts.accesses_static_mutable:
                return False
            if m.is_operator and m.owner.is_enum:
                return m.is_local
            if facts.accesses_instance_fields:
                # Instance methods of value classes are stateless with
                # respect to mutation, but we reserve 'pure' for static
                # relocatable methods plus value-type instance methods.
                return m.owner.is_value and m.is_local
            if not (m.is_local and m.is_static):
                return False
            if not m.takes_only_values:
                return False
            return m.return_type == ty.VOID or m.return_type.is_value_type

        pure = {m.qualified_name: base_eligible(m) for m in methods}
        changed = True
        while changed:
            changed = False
            for m in methods:
                name = m.qualified_name
                if not pure[name]:
                    continue
                facts = self.checked.method_facts.get(name)
                if facts is None:
                    continue
                for callee in facts.calls:
                    if callee.endswith(".<init>"):
                        continue
                    if callee in pure and not pure[callee]:
                        pure[name] = False
                        changed = True
                        break
        for m in methods:
            m.is_pure = pure[m.qualified_name]
            if m.decl is not None:
                m.decl.is_pure = m.is_pure


def check(program: ast.Program) -> CheckedProgram:
    """Run semantic analysis over a parsed program."""
    return TypeChecker(program).check()


def analyze(source: str, filename: str = "<lime>") -> CheckedProgram:
    """Parse and check Lime source text in one step."""
    return check(parse(source, filename))
