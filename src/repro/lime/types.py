"""Semantic types for Lime.

The key property the type system enforces for heterogeneity is the
*value* distinction: value types are recursively immutable, and only
values may flow between tasks (Section 2.2). ``TaskType`` describes the
streaming interface of task expressions and connected task graphs.
"""

from __future__ import annotations

from typing import Optional

from repro.values.base import (
    KIND_BIT,
    KIND_BOOLEAN,
    KIND_DOUBLE,
    KIND_FLOAT,
    KIND_INT,
    KIND_LONG,
    Kind,
    array_kind,
    enum_kind,
)


class Type:
    """Base class for semantic types."""

    @property
    def is_value_type(self) -> bool:
        return False

    def kind(self) -> Kind:
        """The runtime data-layout kind, where one exists."""
        raise ValueError(f"{self} has no runtime kind")


class PrimType(Type):
    """int/long/float/double/boolean/bit/void. All primitives except
    void are values."""

    _interned: "dict[str, PrimType]" = {}
    _KINDS = {
        "int": KIND_INT,
        "long": KIND_LONG,
        "float": KIND_FLOAT,
        "double": KIND_DOUBLE,
        "boolean": KIND_BOOLEAN,
        "bit": KIND_BIT,
    }

    def __new__(cls, name: str) -> "PrimType":
        cached = cls._interned.get(name)
        if cached is not None:
            return cached
        if name not in ("int", "long", "float", "double", "boolean", "bit", "void"):
            raise ValueError(f"unknown primitive type {name!r}")
        obj = super().__new__(cls)
        obj.name = name
        cls._interned[name] = obj
        return obj

    def __reduce__(self):
        return (PrimType, (self.name,))

    @property
    def is_value_type(self) -> bool:
        return self.name != "void"

    @property
    def is_numeric(self) -> bool:
        return self.name in ("int", "long", "float", "double")

    @property
    def is_integral(self) -> bool:
        return self.name in ("int", "long")

    def kind(self) -> Kind:
        if self.name == "void":
            raise ValueError("void has no runtime kind")
        return self._KINDS[self.name]

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


INT = PrimType("int")
LONG = PrimType("long")
FLOAT = PrimType("float")
DOUBLE = PrimType("double")
BOOLEAN = PrimType("boolean")
BIT = PrimType("bit")
VOID = PrimType("void")


class StringType(Type):
    """Host-only strings: usable in global methods for I/O, never a
    value, never able to cross a task boundary."""

    _instance: "StringType | None" = None

    def __new__(cls) -> "StringType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __reduce__(self):
        return (StringType, ())

    def __repr__(self) -> str:
        return "String"

    __str__ = __repr__


STRING = StringType()


class ArrayType(Type):
    """``T[[]]`` when ``is_value`` else ``T[]``."""

    def __init__(self, element: Type, is_value: bool):
        self.element = element
        self._is_value = is_value

    @property
    def is_value_type(self) -> bool:
        # A value array of values is itself a value.
        return self._is_value and self.element.is_value_type

    @property
    def is_value_array(self) -> bool:
        return self._is_value

    def kind(self) -> Kind:
        return array_kind(self.element.kind())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ArrayType):
            return NotImplemented
        return (
            self.element == other.element
            and self._is_value == other._is_value
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self._is_value))

    def __repr__(self) -> str:
        return f"{self.element}{'[[]]' if self._is_value else '[]'}"

    __str__ = __repr__


class ClassType(Type):
    """A user class or value enum."""

    def __init__(self, name: str, is_value: bool, is_enum: bool, enum_size: int = 0):
        self.name = name
        self._is_value = is_value
        self.is_enum = is_enum
        self.enum_size = enum_size

    @property
    def is_value_type(self) -> bool:
        return self._is_value

    def kind(self) -> Kind:
        if self.is_enum:
            return enum_kind(self.name, self.enum_size)
        raise ValueError(
            f"class {self.name} values have no wire kind (not an enum)"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClassType):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(("class", self.name))

    def __repr__(self) -> str:
        return self.name

    __str__ = __repr__


class TaskType(Type):
    """The streaming interface of a task expression or task graph.

    ``input``/``output`` are the element types flowing in and out;
    ``None`` marks a closed end (a source has no input; a sink no
    output). A fully closed graph (both None) can be started/finished.
    """

    def __init__(self, input: Optional[Type], output: Optional[Type]):
        self.input = input
        self.output = output

    @property
    def is_closed(self) -> bool:
        return self.input is None and self.output is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskType):
            return NotImplemented
        return self.input == other.input and self.output == other.output

    def __hash__(self) -> int:
        return hash(("task", self.input, self.output))

    def __repr__(self) -> str:
        fmt = lambda t: "·" if t is None else str(t)  # noqa: E731
        return f"task({fmt(self.input)} -> {fmt(self.output)})"

    __str__ = __repr__


# ---------------------------------------------------------------------------
# Conversions and promotions (a pragmatic subset of Java's rules)
# ---------------------------------------------------------------------------

_WIDENING = {
    "int": {"long", "float", "double"},
    "long": {"float", "double"},
    "float": {"double"},
}

_NUMERIC_RANK = {"int": 0, "long": 1, "float": 2, "double": 3}


def assignable(target: Type, source: Type) -> bool:
    """Can a value of ``source`` be assigned to a ``target`` slot?"""
    if target == source:
        return True
    if isinstance(target, PrimType) and isinstance(source, PrimType):
        return target.name in _WIDENING.get(source.name, set())
    if isinstance(target, ArrayType) and isinstance(source, ArrayType):
        # Array types are invariant, but element types must match exactly
        # and value-ness must match (no implicit freeze/thaw).
        return target == source
    return False


def binary_numeric_result(left: Type, right: Type) -> Optional[PrimType]:
    """Java-style binary numeric promotion; None if not both numeric."""
    if not (isinstance(left, PrimType) and isinstance(right, PrimType)):
        return None
    if not (left.is_numeric and right.is_numeric):
        return None
    rank = max(_NUMERIC_RANK[left.name], _NUMERIC_RANK[right.name])
    for name, r in _NUMERIC_RANK.items():
        if r == rank:
            return PrimType(name)
    raise AssertionError("unreachable")


def castable(target: Type, source: Type) -> bool:
    """Explicit cast legality: any numeric <-> numeric; identity."""
    if target == source:
        return True
    if isinstance(target, PrimType) and isinstance(source, PrimType):
        if target.is_numeric and source.is_numeric:
            return True
        # bit <-> int casts are allowed for FPGA-style code.
        if {target.name, source.name} == {"bit", "int"}:
            return True
    return False


def type_from_kind_name(name: str) -> Optional[PrimType]:
    """Primitive type for a written primitive name, if any."""
    try:
        return PrimType(name)
    except ValueError:
        return None
