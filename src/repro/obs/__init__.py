"""Observability: structured tracing, metrics, and trace exporters.

The subsystem every layer reports into: the compiler driver and the
three backends open ``compile.*`` spans, the runtime opens ``run.*``
spans (substitution planning, offloads, marshaling crossings, graph
stages), and counters accumulate decision statistics. Export the
result to Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto) or JSON-lines.

Tracing is off by default and costs nothing when off: pass a
:class:`Tracer` via ``CompileOptions(tracer=...)`` and
``RuntimeConfig(tracer=...)`` to turn it on; the default
:data:`NULL_TRACER` swallows every call without allocating.
"""

from repro.obs.export import (
    render_span_tree,
    to_chrome_trace,
    to_json_lines,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
    write_json_lines,
)
from repro.obs.tracer import (
    NULL_TRACER,
    Counters,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)

__all__ = [
    "Counters",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "as_tracer",
    "render_span_tree",
    "to_chrome_trace",
    "to_json_lines",
    "validate_trace_events",
    "validate_trace_file",
    "write_chrome_trace",
    "write_json_lines",
]
