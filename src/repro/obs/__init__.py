"""Observability: structured tracing, metrics, and trace exporters.

The subsystem every layer reports into: the compiler driver and the
three backends open ``compile.*`` spans, the runtime opens ``run.*``
spans (substitution planning, offloads, marshaling crossings, graph
stages), and counters accumulate decision statistics. Export the
result to Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto) or JSON-lines.

Tracing is off by default and costs nothing when off: pass a
:class:`Tracer` via ``CompileOptions(tracer=...)`` and
``RuntimeConfig(tracer=...)`` to turn it on; the default
:data:`NULL_TRACER` swallows every call without allocating.
"""

from repro.obs.export import (
    render_span_tree,
    to_chrome_trace,
    to_json_lines,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
    write_json_lines,
)
from repro.obs.metrics import (
    NULL_METRICS,
    Counters,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetrics,
    as_metrics,
)
from repro.obs.profile import (
    PROFILE_SCHEMA,
    ProfileReport,
    build_profile,
    compare_profiles,
    critical_path,
    render_profile,
    validate_profile,
    validate_profile_file,
)
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    as_tracer,
)
from repro.obs.trajectory import (
    BENCH_SCHEMA,
    TRAJECTORY_SCHEMA,
    bench_envelope,
    bench_metric,
    collect_snapshot,
    diff_snapshots,
    gate_snapshots,
    git_metadata,
    render_diff,
    render_trend,
    save_snapshot,
    snapshot_metrics,
    trend_report,
    validate_bench,
    validate_trajectory,
    validate_trajectory_file,
)

__all__ = [
    "BENCH_SCHEMA",
    "TRAJECTORY_SCHEMA",
    "Counters",
    "bench_envelope",
    "bench_metric",
    "collect_snapshot",
    "diff_snapshots",
    "gate_snapshots",
    "git_metadata",
    "render_diff",
    "render_trend",
    "save_snapshot",
    "snapshot_metrics",
    "trend_report",
    "validate_bench",
    "validate_trajectory",
    "validate_trajectory_file",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullTracer",
    "PROFILE_SCHEMA",
    "ProfileReport",
    "Span",
    "Tracer",
    "as_metrics",
    "as_tracer",
    "build_profile",
    "compare_profiles",
    "critical_path",
    "render_profile",
    "render_span_tree",
    "to_chrome_trace",
    "to_json_lines",
    "validate_profile",
    "validate_profile_file",
    "validate_trace_events",
    "validate_trace_file",
    "write_chrome_trace",
    "write_json_lines",
]
