"""Trace exporters: Chrome ``trace_event`` JSON and JSON-lines.

The Chrome format (one "X" complete event per span) loads directly in
``chrome://tracing`` and in Perfetto (https://ui.perfetto.dev), giving
a flame view of compile phases, substitution planning, offloads, and
marshaling crossings per thread. The JSON-lines format is the
machine-diffable equivalent: one object per span, then one per
counter.

``validate_trace_events`` checks a payload against the subset of the
trace-event schema we emit, so CI can assert exported traces stay
loadable (the ``make trace-smoke`` target).
"""

from __future__ import annotations

import json

from repro.errors import TraceExportError

#: Event phases we emit / accept: complete, metadata, counter,
#: begin/end (accepted for forward compatibility), instant.
_KNOWN_PHASES = {"X", "M", "C", "B", "E", "i"}


def _jsonable(value):
    """Clamp attribute values to what JSON can carry."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def span_to_event(span, pid: int = 1) -> dict:
    """One finished span as a Chrome 'X' (complete) event. Attribute
    args are sorted by name so exported traces are byte-stable across
    runs (insertion order varies with scheduling)."""
    args = {k: _jsonable(v) for k, v in sorted(span.attributes.items())}
    args["span_id"] = span.span_id
    if span.parent_id is not None:
        args["parent_id"] = span.parent_id
    return {
        "name": span.name,
        "cat": span.name.split(".", 1)[0],
        "ph": "X",
        "ts": round(span.start_us, 3),
        "dur": round(span.duration_us, 3),
        "pid": pid,
        "tid": span.thread_id or 0,
        "args": args,
    }


def to_chrome_trace(tracer, process_name: str = "repro") -> dict:
    """The full tracer state as a Chrome trace-event payload."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "ts": 0,
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    thread_names: dict[int, str] = {}
    for span in list(tracer.spans):
        if not span.finished:
            continue
        events.append(span_to_event(span))
        tid = span.thread_id or 0
        thread_names.setdefault(tid, getattr(span, "thread_name", "") or "")
    for tid, name in sorted(thread_names.items()):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "ts": 0,
                "pid": 1,
                "tid": tid,
                "args": {"name": name or f"thread-{tid}"},
            }
        )
    counters = tracer.counters.snapshot()
    other: dict = {"counters": counters}
    metrics = getattr(tracer, "metrics", None)
    if metrics is not None and getattr(metrics, "enabled", False):
        snapshot = metrics.snapshot()
        other["gauges"] = snapshot["gauges"]
        other["histograms"] = snapshot["histograms"]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(tracer, path: str, process_name: str = "repro") -> dict:
    """Export to ``path``; returns the payload that was written."""
    payload = to_chrome_trace(tracer, process_name)
    with open(path, "w") as f:
        json.dump(payload, f, indent=1, sort_keys=True)
        f.write("\n")
    return payload


def to_json_lines(tracer) -> str:
    """One JSON object per line: spans in completion order, then
    counters. Grep/jq-friendly; every span carries its parent id so
    the tree is reconstructible."""
    lines = []
    for span in list(tracer.spans):
        if not span.finished:
            continue
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "name": span.name,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "start_us": round(span.start_us, 3),
                    "duration_us": round(span.duration_us, 3),
                    "thread": span.thread_id or 0,
                    "attributes": {
                        k: _jsonable(v)
                        for k, v in sorted(span.attributes.items())
                    },
                },
                sort_keys=True,
            )
        )
    for name, value in tracer.counters.snapshot().items():
        lines.append(
            json.dumps(
                {"type": "counter", "name": name, "value": value},
                sort_keys=True,
            )
        )
    metrics = getattr(tracer, "metrics", None)
    if metrics is not None and getattr(metrics, "enabled", False):
        snapshot = metrics.snapshot()
        for kind in ("gauge", "histogram"):
            for name, data in snapshot[f"{kind}s"].items():
                lines.append(
                    json.dumps(
                        {"type": kind, "name": name, "data": data},
                        sort_keys=True,
                    )
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_lines(tracer, path: str) -> str:
    text = to_json_lines(tracer)
    with open(path, "w") as f:
        f.write(text)
    return text


# ----------------------------------------------------------------------
# Validation (the trace-smoke CI gate)
# ----------------------------------------------------------------------


def validate_trace_events(payload) -> list:
    """Return a list of problems (empty = valid trace-event payload).

    Checks the envelope plus, per event: required keys, known phase,
    numeric non-negative timestamps, ``dur`` on complete events, and a
    JSON-object ``args``.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload.traceEvents must be a list"]
    if not events:
        problems.append("traceEvents is empty")
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"{where}: missing {key!r}")
        if not isinstance(event.get("name", ""), str):
            problems.append(f"{where}: name must be a string")
        phase = event.get("ph")
        if phase not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
        ts = event.get("ts", 0)
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: ts must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs non-negative dur"
                )
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args must be an object")
    return problems


def validate_trace_file(path: str) -> dict:
    """Load ``path`` and validate it; raises :class:`TraceExportError`
    listing every problem, returns the payload when valid."""
    try:
        with open(path) as f:
            payload = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceExportError(f"cannot load trace {path!r}: {exc}") from exc
    problems = validate_trace_events(payload)
    if problems:
        raise TraceExportError(
            f"{path!r} is not a valid trace-event file:\n  "
            + "\n  ".join(problems)
        )
    return payload


# ----------------------------------------------------------------------
# Human-readable rendering (compile_report / CLI)
# ----------------------------------------------------------------------


def render_span_tree(tracer, indent: str = "  ") -> str:
    """Indented text tree of finished spans with durations and the
    most useful attributes — the ``compile_report(..., trace=...)``
    section and the CLI summary."""
    spans = [s for s in list(tracer.spans) if s.finished]
    if not spans:
        return "(no spans recorded)"
    children: dict = {}
    by_id = {s.span_id: s for s in spans}
    roots = []
    for span in spans:
        if span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    lines: list[str] = []

    def render(span, depth):
        attrs = ", ".join(
            f"{k}={v}"
            for k, v in span.attributes.items()
            if isinstance(v, (str, int, bool))
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{indent * depth}{span.name:<32s} "
            f"{span.duration_us:>10.1f} us{suffix}"
        )
        for child in sorted(
            children.get(span.span_id, []), key=lambda s: s.start_us
        ):
            render(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.start_us):
        render(root, 0)
    return "\n".join(lines)
