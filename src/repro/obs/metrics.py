"""The metrics registry: counters, gauges, and fixed-bucket histograms.

Spans (``repro.obs.tracer``) answer "what happened, when"; the metrics
registry answers "how much, how often, how spread out". One
:class:`MetricsRegistry` lives on every :class:`~repro.obs.Tracer`, so
any instrumented seam — scheduler stage loops, FIFO connections, the
marshaling boundary, device executors, the supervisor — can record
distributions without new plumbing, and the profiler
(:mod:`repro.obs.profile`) turns the aggregate into per-stage
utilization, queue-occupancy, and latency reports.

Concurrency model:

* :class:`Counters` keeps one shard dict per thread (registered under a
  lock once, then mutated lock-free by its owner), merged on
  ``snapshot()``/``get()``. Increments on the ThreadedScheduler's
  worker threads never contend.
* :class:`Gauge` and :class:`Histogram` mutate under a per-instance
  lock; they sit on colder paths (one observation per crossing, batch,
  or retry — never per stream element).

Disabled metrics cost (almost) nothing: :data:`NULL_METRICS` hands out
shared no-op counter/gauge/histogram singletons, so instrumentation
calls them unconditionally, mirroring the ``NULL_TRACER`` contract.
"""

from __future__ import annotations

import bisect
import threading


class Counters:
    """A thread-safe registry of named monotonic counters.

    Mutation is lock-free on the hot path: each thread owns a private
    shard (a plain dict registered once under the lock), and reads
    merge the shards. A shard is only ever written by its owner thread,
    so merging can tolerate concurrent writes — a resize mid-iteration
    is simply retried.
    """

    __slots__ = ("_lock", "_local", "_shards")

    def __init__(self):
        self._lock = threading.Lock()
        self._local = threading.local()
        self._shards: list[dict] = []

    def _shard(self) -> dict:
        shard = getattr(self._local, "shard", None)
        if shard is None:
            shard = self._local.shard = {}
            with self._lock:
                self._shards.append(shard)
        return shard

    def add(self, name: str, amount: float = 1) -> None:
        shard = self._shard()
        shard[name] = shard.get(name, 0) + amount

    def _merged(self) -> dict:
        with self._lock:
            shards = list(self._shards)
        merged: dict[str, float] = {}
        for shard in shards:
            while True:
                try:
                    items = list(shard.items())
                    break
                except RuntimeError:  # owner resized it mid-iteration
                    continue
            for name, value in items:
                merged[name] = merged.get(name, 0) + value
        return merged

    def get(self, name: str) -> float:
        return self._merged().get(name, 0)

    def snapshot(self) -> dict:
        """Point-in-time merged copy, sorted by counter name."""
        return dict(sorted(self._merged().items()))

    def reset(self) -> None:
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            shard.clear()

    def __len__(self) -> int:
        return len(self._merged())

    def __repr__(self) -> str:
        return f"Counters({self.snapshot()!r})"


class _NullCounters:
    """No-op counters for the null registry/tracer."""

    __slots__ = ()

    def add(self, name: str, amount: float = 1) -> None:
        pass

    def get(self, name: str) -> float:
        return 0

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class Gauge:
    """A point-in-time value with min/max/update tracking."""

    __slots__ = ("name", "_lock", "value", "min", "max", "updates")

    enabled = True

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self.value = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self.updates = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value
            self.updates += 1
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def add(self, amount: float = 1) -> None:
        with self._lock:
            value = self.value + amount
        self.set(value)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "value": self.value,
                "min": self.min,
                "max": self.max,
                "updates": self.updates,
            }

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value}>"


class _NullGauge:
    __slots__ = ()

    enabled = False
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float = 1) -> None:
        pass

    def snapshot(self) -> dict:
        return {}


#: Default bucket ladders (upper bounds; an overflow bucket is
#: implicit). Times are microseconds, sizes are counts/bytes.
TIME_US_BUCKETS = (
    1, 2, 5, 10, 25, 50, 100, 250, 500,
    1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
    100_000, 250_000, 500_000, 1_000_000,
)
SIZE_BUCKETS = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512,
    1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576,
)
DEPTH_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024)


def default_buckets_for(name: str) -> tuple:
    """Pick a bucket ladder from a metric-name convention: ``*_us`` is
    a latency, ``*depth*`` a queue depth, everything else a size."""
    if name.endswith("_us") or "_us[" in name:
        return TIME_US_BUCKETS
    if "depth" in name:
        return DEPTH_BUCKETS
    return SIZE_BUCKETS


class Histogram:
    """A fixed-bucket histogram with count/sum/min/max and estimated
    quantiles (linear interpolation inside the winning bucket)."""

    __slots__ = (
        "name", "buckets", "_lock", "counts", "overflow",
        "count", "sum", "min", "max",
    )

    enabled = True

    def __init__(self, name: str, buckets=None):
        self.name = name
        self.buckets = tuple(buckets or default_buckets_for(name))
        if list(self.buckets) != sorted(self.buckets):
            raise ValueError(
                f"histogram {name!r} buckets must be sorted: "
                f"{self.buckets}"
            )
        self._lock = threading.Lock()
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self.counts):
                self.counts[index] += 1
            else:
                self.overflow += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile (0 <= q <= 1) from the bucket counts.

        Linear interpolation within the containing bucket, clamped to
        the observed [min, max] so a wide bucket can never report an
        estimate outside the range of real samples."""
        with self._lock:
            if not self.count:
                return 0.0
            observed_max = self.max if self.max is not None else 0.0
            target = q * self.count
            seen = 0
            lo = self.min if self.min is not None else 0.0
            for index, bucket_count in enumerate(self.counts):
                if not bucket_count:
                    continue
                hi = self.buckets[index]
                if seen + bucket_count >= target:
                    frac = (target - seen) / bucket_count
                    lo_clamped = min(lo, hi)
                    estimate = lo_clamped + frac * (hi - lo_clamped)
                    return min(estimate, observed_max)
                seen += bucket_count
                lo = hi
            return observed_max

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self.counts)
            overflow = self.overflow
            count = self.count
            total = self.sum
            lo, hi = self.min, self.max
        mean = total / count if count else 0.0
        return {
            "buckets": list(self.buckets),
            "counts": counts,
            "overflow": overflow,
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": mean,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def reset(self) -> None:
        with self._lock:
            self.counts = [0] * len(self.buckets)
            self.overflow = 0
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean:.3g}>"


class _NullHistogram:
    __slots__ = ()

    enabled = False
    name = ""
    buckets: tuple = ()
    count = 0
    sum = 0.0
    min = None
    max = None
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> dict:
        return {}

    def reset(self) -> None:
        pass


_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named counters + gauges + histograms behind one handle.

    ``counter`` semantics live on the embedded :class:`Counters`
    registry (``metrics.counters.add(name)``); ``gauge(name)`` and
    ``histogram(name)`` create-or-return named instruments. A
    histogram's buckets are fixed by its first creation; later callers
    get the existing instrument regardless of the ``buckets`` they
    pass.
    """

    enabled = True

    def __init__(self):
        self._lock = threading.Lock()
        self.counters = Counters()
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name))
        return gauge

    def histogram(self, name: str, buckets=None) -> Histogram:
        hist = self._histograms.get(name)
        if hist is None:
            with self._lock:
                hist = self._histograms.get(name)
                if hist is None:
                    hist = Histogram(name, buckets)
                    self._histograms[name] = hist
        return hist

    def snapshot(self) -> dict:
        """Point-in-time copy of everything, sorted by name."""
        with self._lock:
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": self.counters.snapshot(),
            "gauges": {
                name: gauges[name].snapshot() for name in sorted(gauges)
            },
            "histograms": {
                name: histograms[name].snapshot()
                for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        self.counters.reset()
        with self._lock:
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        for hist in histograms:
            hist.reset()
        for gauge in gauges:
            gauge.value = 0.0
            gauge.min = None
            gauge.max = None
            gauge.updates = 0

    def __len__(self) -> int:
        return len(self.counters) + len(self._gauges) + len(self._histograms)

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self.counters)} counters, "
            f"{len(self._gauges)} gauges, "
            f"{len(self._histograms)} histograms>"
        )


class NullMetrics:
    """Zero-overhead stand-in used whenever metrics are disabled."""

    enabled = False
    counters = _NullCounters()

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, buckets=None) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullMetrics>"


NULL_METRICS = NullMetrics()


def as_metrics(metrics) -> "MetricsRegistry | NullMetrics":
    """Normalize ``None``/missing to the null registry."""
    return NULL_METRICS if metrics is None else metrics
