"""The runtime profiler: spans + metrics -> a structured ProfileReport.

The tracer records *what happened*; this module answers *why the run
was slow*. :func:`build_profile` consumes a finished run's spans and
metrics registry and produces a :class:`ProfileReport` with:

* a per-task / per-device time breakdown (compute vs marshal vs
  queue-wait vs planning vs host),
* per-stage utilization (share of a stage's window spent working
  rather than blocked on its FIFOs) and queue-occupancy statistics
  sampled from ``Connection`` put/get instrumentation,
* latency histograms from the metrics registry (marshaling crossings,
  offload batches, per-item stage latency, retry backoff),
* a critical-path analysis over the span tree: the chain of segments
  that covers the run's wall clock exactly, so segment durations sum
  to the measured wall clock by construction and the dominant segment
  names the bottleneck.

Reports carry ``schema: repro.profile/1`` and are emitted by
``python -m repro profile <app>`` as text or ``--json``;
:func:`compare_profiles` implements the ``--baseline`` regression
check over the *simulated* (deterministic) times, so CI can gate on
it without wall-clock noise.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Schema identifier stamped into every report (bump on breaking
#: changes to the JSON layout; validators match it exactly).
PROFILE_SCHEMA = "repro.profile/1"

#: Default regression threshold for baseline comparison: a simulated
#: time (or crossing count) more than this fraction above the baseline
#: is flagged.
DEFAULT_REGRESSION_THRESHOLD = 0.10


@dataclass
class PathSegment:
    """One stretch of the critical path: ``[start_us, start_us +
    duration_us)`` attributed to the innermost span active there."""

    name: str
    start_us: float
    duration_us: float
    task: "str | None" = None

    def to_json(self) -> dict:
        payload = {
            "name": self.name,
            "start_us": round(self.start_us, 3),
            "duration_us": round(self.duration_us, 3),
        }
        if self.task is not None:
            payload["task"] = self.task
        return payload


@dataclass
class ProfileReport:
    """A structured profile of one traced run. ``data`` is the
    schema-stamped JSON payload; the helpers render and serialize."""

    data: dict = field(default_factory=dict)

    @property
    def wall_us(self) -> float:
        return self.data.get("wall_us", 0.0)

    @property
    def stages(self) -> list:
        return self.data.get("stages", [])

    @property
    def critical_path(self) -> dict:
        return self.data.get("critical_path", {})

    def to_json(self) -> dict:
        return self.data

    def dumps(self, indent: int = 2) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=False)

    def render(self) -> str:
        return render_profile(self.data)


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------


def _task_label(span) -> "str | None":
    attrs = span.attributes
    return attrs.get("task_id") or attrs.get("target") or attrs.get("task")


def find_run_root(tracer):
    """The root span covering runtime execution: the first finished
    ``run`` span, falling back to the longest finished root span."""
    finished = [s for s in list(tracer.spans) if s.finished]
    runs = [s for s in finished if s.name == "run"]
    if runs:
        return runs[0]
    roots = [s for s in finished if s.parent_id is None]
    if not roots:
        return None
    return max(roots, key=lambda s: s.duration_us)


def critical_path(tracer, root=None) -> "tuple[list, object]":
    """The segment chain covering ``root``'s interval exactly.

    Walks the span tree attributing every instant of the root's window
    to the innermost span active then. Overlapping children (threaded
    stage spans) are clipped against the running cursor, so a stage
    contributes only the stretch *after* the previous stage finished —
    exactly the pipeline-bottleneck attribution — and the segment
    durations sum to the root duration by construction.

    Returns ``(segments, root)``; ``([], None)`` without a usable root.
    """
    if root is None:
        root = find_run_root(tracer)
    if root is None:
        return [], None
    children: dict = {}
    for span in list(tracer.spans):
        if span.finished and span.parent_id is not None:
            children.setdefault(span.parent_id, []).append(span)
    segments: list[PathSegment] = []

    def visit(span, lo: float, hi: float) -> None:
        kids = sorted(
            (
                k
                for k in children.get(span.span_id, [])
                if k.end_us > lo and k.start_us < hi
            ),
            key=lambda s: (s.start_us, s.end_us),
        )
        cursor = lo
        label = _task_label(span)
        for kid in kids:
            if kid.end_us <= cursor:
                continue
            start = max(kid.start_us, cursor)
            if start > cursor:
                segments.append(
                    PathSegment(span.name, cursor, start - cursor, label)
                )
                cursor = start
            end = min(kid.end_us, hi)
            if end > cursor:
                visit(kid, cursor, end)
                cursor = end
        if cursor < hi:
            segments.append(PathSegment(span.name, cursor, hi - cursor, label))

    visit(root, root.start_us, root.end_us)
    merged: list[PathSegment] = []
    for seg in segments:
        prev = merged[-1] if merged else None
        if (
            prev is not None
            and prev.name == seg.name
            and prev.task == seg.task
            and abs(prev.start_us + prev.duration_us - seg.start_us) < 1e-6
        ):
            prev.duration_us += seg.duration_us
        else:
            merged.append(seg)
    return merged, root


# ----------------------------------------------------------------------
# Report assembly
# ----------------------------------------------------------------------


def _segment_category(name: str) -> str:
    if name.startswith("run.marshal"):
        return "marshal"
    if name == "run.offload":
        return "compute"
    if name == "run.graph.stage":
        return "stage"
    if name == "run.substitution":
        return "planning"
    if name in (
        "retry.attempt",
        "retry.recovered",
        "demotion.taken",
        "breaker.transition",
        "probe.shadow",
    ):
        return "recovery"
    if name in ("run", "run.graph"):
        return "host"
    return "other"


def _stage_profiles(spans, ledger, wall_us: float) -> list:
    """Per-task rows: task-graph stages plus offload targets."""
    stages: dict = {}
    order: list = []

    def row(key, name, kind, device):
        if key not in stages:
            stages[key] = {
                "name": name,
                "kind": kind,
                "device": device,
                "span_us": 0.0,
                "items": 0,
                "calls": 0,
                "queue_wait_in_us": 0.0,
                "queue_wait_out_us": 0.0,
                "queue_wait_us": 0.0,
                "busy_sim_s": 0.0,
            }
            order.append(key)
        return stages[key]

    for span in spans:
        attrs = span.attributes
        if span.name == "run.graph.stage":
            task_id = attrs.get("task_id", "?")
            entry = row(
                ("stage", task_id), task_id, "stage",
                attrs.get("device", "?"),
            )
            entry["span_us"] += span.duration_us
            entry["calls"] += 1
            entry["items"] = max(
                entry["items"],
                int(attrs.get("items") or attrs.get("out_items") or 0),
            )
            entry["queue_wait_in_us"] += attrs.get("queue_wait_in_us", 0.0)
            entry["queue_wait_out_us"] += attrs.get("queue_wait_out_us", 0.0)
            entry["queue_wait_us"] += attrs.get("queue_wait_us", 0.0)
        elif span.name == "run.offload":
            target = attrs.get("target", "?")
            entry = row(
                ("offload", target), target, "offload",
                attrs.get("device", "?"),
            )
            entry["span_us"] += span.duration_us
            entry["calls"] += 1
            entry["items"] += int(attrs.get("items") or 0)

    if ledger is not None:
        for run in getattr(ledger, "graph_runs", []):
            for stage in run.stages.values():
                key = ("stage", stage.task_id)
                if key in stages:
                    stages[key]["busy_sim_s"] += stage.busy_s
                    stages[key]["items"] = max(
                        stages[key]["items"], stage.items
                    )
        for record in getattr(ledger, "offloads", []):
            key = ("offload", record.target)
            if key in stages:
                stages[key]["busy_sim_s"] += record.total_s

    rows = []
    for key in order:
        entry = stages[key]
        span_us = entry["span_us"]
        wait_us = min(entry["queue_wait_us"], span_us)
        entry["utilization"] = round(
            (span_us - wait_us) / span_us if span_us > 0 else 0.0, 4
        )
        entry["share_of_wall"] = round(
            min(span_us / wall_us, 1.0) if wall_us > 0 else 0.0, 4
        )
        for field_name in (
            "span_us", "queue_wait_in_us", "queue_wait_out_us",
            "queue_wait_us",
        ):
            entry[field_name] = round(entry[field_name], 3)
        entry["busy_sim_s"] = round(entry["busy_sim_s"], 12)
        rows.append(entry)
    rows.sort(key=lambda r: r["span_us"], reverse=True)
    return rows


def _queue_stats(metrics_snapshot: dict) -> list:
    """Queue-occupancy rows recovered from the per-edge ``queue.*``
    instruments recorded by :class:`repro.runtime.queues.Connection`."""
    histograms = metrics_snapshot.get("histograms", {})
    counters = metrics_snapshot.get("counters", {})
    rows = []
    prefix = "queue.depth["
    for name in sorted(histograms):
        if not (name.startswith(prefix) and name.endswith("]")):
            continue
        edge = name[len(prefix):-1]
        hist = histograms[name]
        rows.append(
            {
                "edge": edge,
                "samples": hist.get("count", 0),
                "mean_depth": round(hist.get("mean", 0.0), 3),
                "max_depth": hist.get("max", 0),
                "p50_depth": round(hist.get("p50", 0.0), 3),
                "p90_depth": round(hist.get("p90", 0.0), 3),
                "producer_wait_us": round(
                    counters.get(f"queue.producer_wait_us[{edge}]", 0.0), 3
                ),
                "consumer_wait_us": round(
                    counters.get(f"queue.consumer_wait_us[{edge}]", 0.0), 3
                ),
            }
        )
    return rows


def build_profile(
    tracer,
    ledger=None,
    app: str = "",
    entry: str = "",
    scheduler: str = "",
) -> ProfileReport:
    """Aggregate a finished traced run into a :class:`ProfileReport`."""
    spans = [s for s in list(tracer.spans) if s.finished]
    segments, root = critical_path(tracer)
    wall_us = root.duration_us if root is not None else 0.0

    breakdown = {
        "compute": 0.0,
        "stage": 0.0,
        "marshal": 0.0,
        "queue_wait": 0.0,
        "planning": 0.0,
        "recovery": 0.0,
        "host": 0.0,
        "other": 0.0,
    }
    stage_rows = _stage_profiles(spans, ledger, wall_us)
    wait_fraction = {
        row["name"]: (
            row["queue_wait_us"] / row["span_us"] if row["span_us"] else 0.0
        )
        for row in stage_rows
        if row["kind"] == "stage"
    }
    for seg in segments:
        category = _segment_category(seg.name)
        if category == "stage":
            # Split a stage segment into genuine work vs FIFO blocking
            # using the stage's measured wait fraction (satellite:
            # queue-wait is an explicit attribute, not folded into the
            # span duration).
            frac = wait_fraction.get(seg.task or "", 0.0)
            breakdown["queue_wait"] += seg.duration_us * frac
            breakdown["stage"] += seg.duration_us * (1.0 - frac)
        else:
            breakdown[category] += seg.duration_us
    breakdown = {k: round(v, 3) for k, v in breakdown.items()}

    metrics = getattr(tracer, "metrics", None)
    metrics_snapshot = (
        metrics.snapshot()
        if metrics is not None and getattr(metrics, "enabled", False)
        else {"counters": {}, "gauges": {}, "histograms": {}}
    )
    counters = metrics_snapshot["counters"] or tracer.counters.snapshot()

    path_total = sum(seg.duration_us for seg in segments)
    bottleneck = max(segments, key=lambda s: s.duration_us, default=None)
    critical = {
        "wall_us": round(wall_us, 3),
        "sum_us": round(path_total, 3),
        "coverage": round(path_total / wall_us, 4) if wall_us > 0 else 0.0,
        "segments": [
            dict(
                seg.to_json(),
                percent=round(
                    100.0 * seg.duration_us / wall_us if wall_us else 0.0, 2
                ),
            )
            for seg in segments
        ],
        "bottleneck": (
            dict(
                bottleneck.to_json(),
                percent=round(
                    100.0 * bottleneck.duration_us / wall_us
                    if wall_us
                    else 0.0,
                    2,
                ),
            )
            if bottleneck is not None
            else None
        ),
    }

    simulated = (
        {k: v for k, v in ledger.summary().items()}
        if ledger is not None
        else {}
    )

    data = {
        "schema": PROFILE_SCHEMA,
        "app": app,
        "entry": entry,
        "scheduler": scheduler,
        "wall_us": round(wall_us, 3),
        "simulated": simulated,
        "stages": stage_rows,
        "breakdown_us": breakdown,
        "queues": _queue_stats(metrics_snapshot),
        "critical_path": critical,
        "histograms": metrics_snapshot["histograms"],
        "gauges": metrics_snapshot["gauges"],
        "counters": counters,
    }
    return ProfileReport(data)


# ----------------------------------------------------------------------
# Validation (the profile-smoke CI gate)
# ----------------------------------------------------------------------


def validate_profile(payload) -> list:
    """Return a list of problems (empty = valid profile payload)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != PROFILE_SCHEMA:
        problems.append(
            f"schema must be {PROFILE_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    wall_us = payload.get("wall_us")
    if not isinstance(wall_us, (int, float)) or wall_us < 0:
        problems.append("wall_us must be a non-negative number")
    for key, kind in (
        ("stages", list),
        ("queues", list),
        ("breakdown_us", dict),
        ("histograms", dict),
        ("counters", dict),
        ("critical_path", dict),
    ):
        if not isinstance(payload.get(key), kind):
            problems.append(f"{key} must be a {kind.__name__}")
    if problems:
        return problems
    for i, row in enumerate(payload["stages"]):
        for key in ("name", "device", "span_us", "utilization"):
            if key not in row:
                problems.append(f"stages[{i}]: missing {key!r}")
    critical = payload["critical_path"]
    segments = critical.get("segments")
    if not isinstance(segments, list):
        problems.append("critical_path.segments must be a list")
        return problems
    total = 0.0
    for i, seg in enumerate(segments):
        dur = seg.get("duration_us")
        if not isinstance(dur, (int, float)) or dur < 0:
            problems.append(
                f"critical_path.segments[{i}]: non-negative duration_us "
                "required"
            )
            continue
        total += dur
    if isinstance(wall_us, (int, float)) and wall_us > 0:
        if abs(total - wall_us) > 0.05 * wall_us:
            problems.append(
                f"critical path sums to {total:.1f}us but wall clock is "
                f"{wall_us:.1f}us (>5% apart)"
            )
    return problems


def validate_profile_file(path: str) -> dict:
    """Load and validate a profile JSON file; raises ``ValueError``
    listing every problem, returns the payload when valid."""
    with open(path) as f:
        payload = json.load(f)
    problems = validate_profile(payload)
    if problems:
        raise ValueError(
            f"{path!r} is not a valid profile report:\n  "
            + "\n  ".join(problems)
        )
    return payload


# ----------------------------------------------------------------------
# Baseline comparison (the --baseline regression gate)
# ----------------------------------------------------------------------


def compare_profiles(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_REGRESSION_THRESHOLD,
) -> list:
    """Regressions of ``current`` against ``baseline``.

    Compares only the *deterministic* quantities — simulated times and
    marshaling crossing counts — never the measured wall clock, so the
    gate is reproducible in CI. Returns human-readable regression
    messages (empty = no regression beyond ``threshold``).
    """
    regressions: list[str] = []

    def check(label, cur, base):
        if (
            isinstance(cur, (int, float))
            and isinstance(base, (int, float))
            and base > 0
            and cur > base * (1.0 + threshold)
        ):
            regressions.append(
                f"{label}: {base:.6g} -> {cur:.6g} "
                f"(+{100.0 * (cur - base) / base:.1f}%, "
                f"threshold {100.0 * threshold:.0f}%)"
            )

    cur_sim = current.get("simulated", {})
    base_sim = baseline.get("simulated", {})
    for key in ("total_s", "host_s", "offload_s", "graph_s"):
        check(f"simulated.{key}", cur_sim.get(key), base_sim.get(key))

    base_stages = {
        row.get("name"): row for row in baseline.get("stages", [])
    }
    for row in current.get("stages", []):
        base_row = base_stages.get(row.get("name"))
        if base_row is None:
            continue
        check(
            f"stage[{row['name']}].busy_sim_s",
            row.get("busy_sim_s"),
            base_row.get("busy_sim_s"),
        )

    check(
        "counters[marshal.batch.crossings]",
        current.get("counters", {}).get("marshal.batch.crossings"),
        baseline.get("counters", {}).get("marshal.batch.crossings"),
    )
    return regressions


# ----------------------------------------------------------------------
# Human-readable rendering
# ----------------------------------------------------------------------


def _fmt_us(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.2f}s"
    if value >= 1e3:
        return f"{value / 1e3:.1f}ms"
    return f"{value:.1f}us"


def render_profile(payload: dict) -> str:
    """The text form of a profile report (the CLI default output)."""
    lines: list[str] = []
    wall_us = payload.get("wall_us", 0.0)
    lines.append(
        f"profile: {payload.get('app') or '?'} "
        f"(entry {payload.get('entry') or '?'}"
        + (
            f", {payload['scheduler']} scheduler"
            if payload.get("scheduler")
            else ""
        )
        + ")"
    )
    simulated = payload.get("simulated", {})
    sim_text = (
        f"; simulated {simulated['total_s'] * 1e6:.2f} us"
        if "total_s" in simulated
        else ""
    )
    lines.append(f"wall clock (traced): {_fmt_us(wall_us)}{sim_text}")

    stages = payload.get("stages", [])
    if stages:
        lines.append("")
        lines.append("per-task breakdown (traced):")
        lines.append(
            f"  {'task':<34s} {'device':<9s} {'kind':<8s} "
            f"{'time':>10s} {'wall%':>6s} {'util%':>6s} "
            f"{'q-wait':>10s} {'items':>8s}"
        )
        for row in stages:
            lines.append(
                f"  {row['name']:<34s} {row['device']:<9s} "
                f"{row['kind']:<8s} {_fmt_us(row['span_us']):>10s} "
                f"{100 * row.get('share_of_wall', 0):>5.1f}% "
                f"{100 * row.get('utilization', 0):>5.1f}% "
                f"{_fmt_us(row.get('queue_wait_us', 0.0)):>10s} "
                f"{row.get('items', 0):>8d}"
            )

    breakdown = payload.get("breakdown_us", {})
    if breakdown and wall_us > 0:
        parts = [
            f"{name} {100.0 * value / wall_us:.1f}%"
            for name, value in sorted(
                breakdown.items(), key=lambda kv: kv[1], reverse=True
            )
            if value > 0
        ]
        lines.append("")
        lines.append("where the wall clock went: " + " | ".join(parts))

    critical = payload.get("critical_path", {})
    segments = critical.get("segments", [])
    if segments:
        lines.append("")
        lines.append(
            f"critical path ({critical.get('coverage', 0) * 100:.1f}% of "
            f"wall clock, {len(segments)} segments):"
        )
        top = sorted(
            segments, key=lambda s: s["duration_us"], reverse=True
        )[:10]
        for seg in top:
            task = f" [{seg['task']}]" if seg.get("task") else ""
            lines.append(
                f"  {seg.get('percent', 0):>5.1f}%  "
                f"{_fmt_us(seg['duration_us']):>10s}  "
                f"{seg['name']}{task}"
            )
        bottleneck = critical.get("bottleneck")
        if bottleneck:
            task = (
                f" [{bottleneck['task']}]" if bottleneck.get("task") else ""
            )
            lines.append(
                f"  bottleneck: {bottleneck['name']}{task} at "
                f"{bottleneck.get('percent', 0):.1f}% of wall clock"
            )

    queues = payload.get("queues", [])
    lines.append("")
    if queues:
        lines.append("queue occupancy:")
        for row in queues:
            lines.append(
                f"  {row['edge']:<44s} samples={row['samples']:<6d} "
                f"mean={row['mean_depth']:<7.2f} p90={row['p90_depth']:<7.2f} "
                f"max={row['max_depth']} "
                f"wait(prod/cons)={_fmt_us(row['producer_wait_us'])}"
                f"/{_fmt_us(row['consumer_wait_us'])}"
            )
    else:
        lines.append("queue occupancy: (no FIFO connections in this run)")

    histograms = payload.get("histograms", {})
    interesting = {
        name: hist
        for name, hist in histograms.items()
        if hist.get("count") and not name.startswith("queue.depth[")
    }
    if interesting:
        lines.append("")
        lines.append("latency / size histograms:")
        for name in sorted(interesting):
            hist = interesting[name]
            lines.append(
                f"  {name:<38s} n={hist['count']:<6d} "
                f"mean={hist['mean']:<12.3g} p50={hist['p50']:<12.3g} "
                f"p99={hist['p99']:<12.3g} max={hist['max']:<12.3g}"
            )

    counters = payload.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {value:>14g}  {name}")
    return "\n".join(lines)
