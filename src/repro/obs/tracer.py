"""Structured tracing: nested spans plus a counters registry.

The runtime makes opaque decisions — task substitution, device
selection, marshaling across the host/device boundary (Sections 3–4 of
the paper) — and every later performance PR needs to see where time
goes. A :class:`Tracer` records nested, attributed spans
(``compile.frontend``, ``run.offload``, ``run.marshal.to_device``, …)
and owns a :class:`Counters` registry (offloads attempted/taken,
exclusions by reason, bytes crossed per link, substitution decisions
by rule).

Disabled tracing is the default everywhere and must cost nothing: the
module-level :data:`NULL_TRACER` singleton returns one shared
:class:`_NullSpan` from every ``span()`` call and never allocates or
stores anything. Instrumented code therefore calls the tracer
unconditionally instead of branching on a flag.

Spans are thread-aware: each thread keeps its own open-span stack, so
the thread-per-task scheduler (Section 4.1) produces correctly nested
spans per worker thread; cross-thread nesting is expressed by passing
``parent=`` explicitly.
"""

from __future__ import annotations

import itertools
import threading
import time

# Counters moved into the metrics registry (repro.obs.metrics) so one
# module owns every instrument kind; re-exported here because the
# original public path was repro.obs.tracer.Counters.
from repro.obs.metrics import (  # noqa: F401  (re-export)
    NULL_METRICS,
    Counters,
    MetricsRegistry,
    _NullCounters,
)


class Span:
    """One timed, attributed interval. Use as a context manager."""

    __slots__ = (
        "tracer",
        "span_id",
        "parent_id",
        "name",
        "start_us",
        "end_us",
        "attributes",
        "thread_id",
        "thread_name",
    )

    def __init__(self, tracer, span_id, parent_id, name, start_us, attributes):
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_us = start_us
        self.end_us = None
        self.attributes = attributes
        thread = threading.current_thread()
        self.thread_id = thread.ident
        self.thread_name = thread.name

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes on the open span."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_us(self) -> float:
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    @property
    def finished(self) -> bool:
        return self.end_us is not None

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.tracer._finish(self)
        return False

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} #{self.span_id} "
            f"parent={self.parent_id} {self.duration_us:.1f}us>"
        )


class _NullSpan:
    """The shared do-nothing span returned by the null tracer."""

    __slots__ = ()

    name = ""
    span_id = 0
    parent_id = None
    start_us = 0.0
    end_us = 0.0
    duration_us = 0.0
    attributes: dict = {}

    def set(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def __repr__(self) -> str:
        return "<NullSpan>"


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished :class:`Span` objects and owns the counters.

    ``clock`` is any zero-argument callable returning seconds (defaults
    to :func:`time.perf_counter`); timestamps are stored as
    microseconds since the tracer's creation, which is exactly the
    ``ts`` unit of the Chrome ``trace_event`` format.
    """

    enabled = True

    def __init__(self, clock=None):
        self._clock = clock or time.perf_counter
        self._epoch = self._clock()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._local = threading.local()
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self.counters = self.metrics.counters

    # -- recording -------------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, parent: "Span | None" = None, **attributes) -> Span:
        """Open a span; close it via the context-manager protocol.

        The parent defaults to the innermost open span *on the calling
        thread*; pass ``parent=`` to nest under a span opened on
        another thread (e.g. the graph span owning per-stage worker
        threads).
        """
        stack = self._stack()
        if parent is None and stack:
            parent = stack[-1]
        span = Span(
            self,
            next(self._ids),
            parent.span_id if parent is not None else None,
            name,
            self._now_us(),
            attributes,
        )
        stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.end_us = self._now_us()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # exited out of order; drop it from wherever it sits
            try:
                stack.remove(span)
            except ValueError:
                pass
        with self._lock:
            self.spans.append(span)

    def current(self) -> "Span | None":
        """The innermost open span on the calling thread."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- inspection ------------------------------------------------------

    def find(self, name: str) -> list:
        """Finished spans with exactly this name."""
        with self._lock:
            return [s for s in self.spans if s.name == name]

    def find_prefix(self, prefix: str) -> list:
        """Finished spans whose name starts with ``prefix``."""
        with self._lock:
            return [s for s in self.spans if s.name.startswith(prefix)]

    def children_of(self, span) -> list:
        with self._lock:
            return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self) -> list:
        """Finished spans with no recorded parent."""
        with self._lock:
            return [s for s in self.spans if s.parent_id is None]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return f"<Tracer {len(self.spans)} spans, {len(self.counters)} counters>"


class NullTracer:
    """Zero-overhead stand-in used whenever tracing is disabled.

    Never allocates spans: every ``span()`` call returns the one shared
    :class:`_NullSpan`, and the counters registry is a no-op. All
    instrumentation points accept this object so hot paths need no
    ``if tracing:`` branches.
    """

    enabled = False
    spans: tuple = ()
    metrics = NULL_METRICS
    counters = NULL_METRICS.counters

    def span(self, name: str, parent=None, **attributes) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def find(self, name: str) -> list:
        return []

    def find_prefix(self, prefix: str) -> list:
        return []

    def children_of(self, span) -> list:
        return []

    def roots(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullTracer>"


NULL_TRACER = NullTracer()


def as_tracer(tracer) -> "Tracer | NullTracer":
    """Normalize ``None``/missing to the null tracer."""
    return NULL_TRACER if tracer is None else tracer
