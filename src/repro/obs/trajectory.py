"""The performance trajectory tracker: per-PR bench changelogs.

Every optimization PR so far emits one-off numbers — ``BENCH_*.json``
files from the benchmark suite, ``repro.profile/1`` reports from the
profiler — but nothing remembers them. This module turns those
artifacts into a gated time series (docs/TRAJECTORY.md):

* :func:`collect_snapshot` aggregates every ``benchmarks/out/BENCH_*``
  report (``repro.bench/1`` envelopes and legacy shapes alike), runs a
  deterministic profile pass over canonical apps to capture the
  critical-path breakdown and the key runtime counters
  (``marshal.crossings``, ``cache.*``, ``fusion``/``specialize``,
  ``health.*``), and stamps the result with git SHA/date and the
  active feature-flag configuration into one ``repro.trajectory/1``
  snapshot.
* Snapshots live under ``benchmarks/changelogs/`` — one JSON per PR,
  named ``NNNN-<shortsha>.json`` so the series sorts lexically.
* :func:`diff_snapshots` compares any two snapshots per metric with
  direction-aware better/worse classification (a latency rising is a
  regression; a speedup rising is an improvement) and explicit
  added/removed handling.
* :func:`trend_report` renders the whole series — per-metric history
  with sparklines — as text or JSON.
* :func:`gate_snapshots` is the CI regression gate: nonzero findings
  when any deterministic (modeled) metric along the critical path
  regresses beyond the threshold, unless the current snapshot carries
  an annotated waiver (``bench gate --bless``).

Only *modeled* quantities gate — simulated seconds, crossing counts,
modeled speedups — mirroring the :func:`repro.obs.compare_profiles`
convention, so the gate is reproducible in CI. Wall-clock fields ride
along in snapshots marked ``kind: wall`` and are never gated.
"""

from __future__ import annotations

import json
import os
import subprocess

#: Schema identifier stamped into every snapshot.
TRAJECTORY_SCHEMA = "repro.trajectory/1"

#: Schema identifier of the shared benchmark-report envelope
#: (``benchmarks/harness.py`` stamps it on every ``BENCH_*.json``).
BENCH_SCHEMA = "repro.bench/1"

#: Default regression threshold, in percent (10 = 10%).
DEFAULT_GATE_THRESHOLD_PCT = 10.0

#: Apps the collector profiles for the critical-path section: one GPU
#: map app and one streaming graph app (the ``profile-smoke`` pair).
DEFAULT_PROFILE_APPS = ("mandelbrot", "bitflip")

#: Counter prefixes worth carrying in a snapshot (decision statistics
#: that attribute a perf delta to a subsystem).
COUNTER_PREFIXES = (
    "marshal.",
    "cache.",
    "fusion.",
    "specialize.",
    "health.",
    "substitution.",
    "offload.",
    "retry.",
    "breaker.",
)

_SPARK_CHARS = "▁▂▃▄▅▆▇█"


# ----------------------------------------------------------------------
# The repro.bench/1 envelope
# ----------------------------------------------------------------------


def git_metadata(repo_dir: "str | None" = None) -> dict:
    """Best-effort git identity of the working tree: commit SHA, branch,
    author date of HEAD, and a dirty flag. Every field degrades to a
    placeholder outside a git checkout so benchmarks stay runnable from
    a tarball."""

    def _git(*argv):
        try:
            out = subprocess.run(
                ("git",) + argv,
                cwd=repo_dir or os.getcwd(),
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if out.returncode != 0:
            return None
        return out.stdout.strip()

    sha = _git("rev-parse", "HEAD") or "unknown"
    status = _git("status", "--porcelain")
    return {
        "sha": sha,
        "short_sha": sha[:7] if sha != "unknown" else "unknown",
        "branch": _git("rev-parse", "--abbrev-ref", "HEAD") or "unknown",
        "commit_date": _git("log", "-1", "--format=%cI") or "unknown",
        "dirty": bool(status) if status is not None else False,
    }


def bench_metric(
    value: float,
    unit: str = "ratio",
    direction: str = "higher",
    kind: str = "modeled",
) -> dict:
    """One envelope metric: the measured value plus how to judge its
    movement. ``direction`` is ``higher`` (throughput/speedup: bigger
    is better) or ``lower`` (latency/seconds/crossings: smaller is
    better); ``kind`` is ``modeled`` (deterministic, gated) or ``wall``
    (noisy, informational only)."""
    if direction not in ("higher", "lower"):
        raise ValueError(f"direction must be higher|lower, got {direction!r}")
    if kind not in ("modeled", "wall"):
        raise ValueError(f"kind must be modeled|wall, got {kind!r}")
    return {
        "value": float(value),
        "unit": unit,
        "direction": direction,
        "kind": kind,
    }


def bench_envelope(
    bench: str, metrics: dict, legacy: "dict | None" = None
) -> dict:
    """The full ``repro.bench/1`` payload for one benchmark report:
    schema + git metadata + judged metrics, with any ``legacy``
    top-level keys merged in unchanged so pre-envelope consumers keep
    working."""
    payload = dict(legacy or {})
    payload["schema"] = BENCH_SCHEMA
    payload["bench"] = bench
    payload["git"] = git_metadata()
    payload["metrics"] = {
        name: dict(metric) for name, metric in sorted(metrics.items())
    }
    return payload


def validate_bench(payload) -> list:
    """Return a list of problems (empty = valid bench envelope)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        problems.append("bench must be a non-empty string")
    metrics = payload.get("metrics")
    if not isinstance(metrics, dict):
        return problems + ["metrics must be an object"]
    for name, metric in metrics.items():
        where = f"metrics[{name}]"
        if not isinstance(metric, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(metric.get("value"), (int, float)):
            problems.append(f"{where}: value must be a number")
        if metric.get("direction") not in ("higher", "lower"):
            problems.append(f"{where}: direction must be higher|lower")
        if metric.get("kind") not in ("modeled", "wall"):
            problems.append(f"{where}: kind must be modeled|wall")
    return problems


# ----------------------------------------------------------------------
# Legacy BENCH_*.json flattening
# ----------------------------------------------------------------------

#: Name fragments that imply smaller-is-better for legacy reports
#: (seconds, latencies, boundary crossings, payload sizes).
_LOWER_HINTS = ("_s", "_us", "_ns", "seconds", "crossings", "bytes", "cycles")
#: Name fragments that imply bigger-is-better.
_HIGHER_HINTS = ("speedup", "improvement", "throughput", "ratio", "fmax")
_WALL_HINTS = ("wall",)


def _infer_direction(name: str) -> "str | None":
    leaf = name.rsplit(".", 1)[-1].lower()
    for hint in _HIGHER_HINTS:
        if hint in leaf:
            return "higher"
    for hint in _LOWER_HINTS:
        if leaf.endswith(hint) or f"{hint}." in leaf:
            return "lower"
    return None


def flatten_legacy_metrics(payload: dict, prefix: str = "") -> dict:
    """Numeric leaves of a pre-envelope ``BENCH_*.json`` as envelope
    metrics, dotted-path named, with direction inferred from the leaf
    name. Leaves whose direction cannot be inferred are skipped — a
    metric nobody can classify cannot gate."""
    metrics: dict = {}
    for key, value in payload.items():
        name = f"{prefix}{key}"
        if isinstance(value, dict):
            metrics.update(flatten_legacy_metrics(value, prefix=f"{name}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            direction = _infer_direction(name)
            if direction is None:
                continue
            kind = (
                "wall"
                if any(h in name.lower() for h in _WALL_HINTS)
                else "modeled"
            )
            metrics[name] = bench_metric(
                value, unit="", direction=direction, kind=kind
            )
    return metrics


# ----------------------------------------------------------------------
# Snapshot collection
# ----------------------------------------------------------------------


def _profile_app(app: str, scheduler: str = "sequential") -> dict:
    """One deterministic profiled run of a suite app: simulated times,
    filtered counters, and the critical-path shape. Local imports keep
    ``repro.obs`` importable without the full compiler stack."""
    from repro.apps import SUITE, compile_app
    from repro.obs.profile import build_profile
    from repro.obs.tracer import Tracer
    from repro.runtime import Runtime, RuntimeConfig

    tracer = Tracer()
    compiled = compile_app(app)
    entry, values = SUITE[app].default_args()
    config = RuntimeConfig(scheduler=scheduler, tracer=tracer)
    outcome = Runtime(compiled, config).run(entry, values)
    report = build_profile(
        tracer,
        ledger=outcome.ledger,
        app=app,
        entry=entry,
        scheduler=scheduler,
    ).to_json()

    counters = {
        name: value
        for name, value in sorted(report.get("counters", {}).items())
        if name.startswith(COUNTER_PREFIXES)
    }
    critical = report.get("critical_path", {})
    bottleneck = critical.get("bottleneck") or {}
    return {
        "app": app,
        "entry": entry,
        "scheduler": scheduler,
        "store_provenance": compiled.store.provenance or "cold",
        "fusion_mode": config.fusion,
        "specialize_enabled": bool(config.specialize.enabled),
        "simulated": {
            key: value
            for key, value in sorted(report.get("simulated", {}).items())
            if isinstance(value, (int, float))
        },
        "counters": counters,
        "critical_path": {
            "bottleneck": bottleneck.get("name"),
            "bottleneck_percent": bottleneck.get("percent"),
            "segment_names": sorted(
                {
                    seg.get("name")
                    for seg in critical.get("segments", [])
                    if seg.get("name")
                }
            ),
        },
    }


def collect_snapshot(
    bench_dir: str,
    label: str = "",
    profile_apps: "tuple | list" = DEFAULT_PROFILE_APPS,
    run_profiles: bool = True,
    seq: "int | None" = None,
) -> dict:
    """Aggregate one ``repro.trajectory/1`` snapshot from the bench
    reports in ``bench_dir`` plus (optionally) fresh deterministic
    profile runs. Raises ``FileNotFoundError`` when ``bench_dir`` holds
    no ``BENCH_*.json`` at all — an empty snapshot gates nothing and is
    always a collection mistake."""
    benches: dict = {}
    names = sorted(
        fn
        for fn in (os.listdir(bench_dir) if os.path.isdir(bench_dir) else [])
        if fn.startswith("BENCH_") and fn.endswith(".json")
    )
    for fn in names:
        path = os.path.join(bench_dir, fn)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        bench_name = fn[len("BENCH_"):-len(".json")]
        if payload.get("schema") == BENCH_SCHEMA:
            metrics = {
                name: metric
                for name, metric in sorted(
                    payload.get("metrics", {}).items()
                )
                if isinstance(metric, dict)
                and isinstance(metric.get("value"), (int, float))
            }
            envelope = True
        else:
            metrics = flatten_legacy_metrics(payload)
            envelope = False
        benches[bench_name] = {
            "source": fn,
            "envelope": envelope,
            "metrics": metrics,
        }
    if not benches:
        raise FileNotFoundError(
            f"no BENCH_*.json reports under {bench_dir!r}; run "
            "`make bench-smoke` (or the benchmark suite) first"
        )

    profiles: dict = {}
    if run_profiles:
        for app in profile_apps:
            profiles[app] = _profile_app(app)

    provenances = sorted(
        {p["store_provenance"] for p in profiles.values()}
    ) or ["cold"]
    snapshot = {
        "schema": TRAJECTORY_SCHEMA,
        "label": label,
        "seq": seq if seq is not None else 0,
        "git": git_metadata(),
        "config": {
            "store_provenance": (
                provenances[0] if len(provenances) == 1 else "mixed"
            ),
            "fusion": (
                sorted({p["fusion_mode"] for p in profiles.values()})
                if profiles
                else ["auto"]
            )[0],
            "specialize": (
                "on"
                if any(p["specialize_enabled"] for p in profiles.values())
                else "off"
            ),
            "scheduler": "sequential",
            "seed_state": {
                "pythonhashseed": os.environ.get("PYTHONHASHSEED", "unset"),
                "fault_plan_seed": None,
            },
        },
        "benches": benches,
        "profiles": profiles,
        "waivers": [],
    }
    return snapshot


# ----------------------------------------------------------------------
# Changelog storage
# ----------------------------------------------------------------------


def changelog_entries(changelog_dir: str) -> list:
    """``(path, payload)`` pairs for every snapshot in the changelog,
    sorted by filename (the ``NNNN-`` prefix makes that the series
    order). Unreadable files are skipped."""
    entries = []
    if not os.path.isdir(changelog_dir):
        return entries
    for fn in sorted(os.listdir(changelog_dir)):
        if not fn.endswith(".json"):
            continue
        path = os.path.join(changelog_dir, fn)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            continue
        if (
            isinstance(payload, dict)
            and payload.get("schema") == TRAJECTORY_SCHEMA
        ):
            entries.append((path, payload))
    return entries


def save_snapshot(snapshot: dict, changelog_dir: str) -> str:
    """Write ``snapshot`` into the changelog as the next ``NNNN-<sha>``
    entry and return the path. The sequence number is (entries + 1), so
    interleaved collections never overwrite history."""
    os.makedirs(changelog_dir, exist_ok=True)
    seq = len(changelog_entries(changelog_dir)) + 1
    snapshot = dict(snapshot, seq=seq)
    short = snapshot.get("git", {}).get("short_sha", "unknown")
    path = os.path.join(changelog_dir, f"{seq:04d}-{short}.json")
    with open(path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def validate_trajectory(payload) -> list:
    """Return a list of problems (empty = valid trajectory snapshot);
    the style (and CI role) of :func:`repro.obs.validate_profile`."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"payload must be a JSON object, got {type(payload).__name__}"]
    if payload.get("schema") != TRAJECTORY_SCHEMA:
        problems.append(
            f"schema must be {TRAJECTORY_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    git = payload.get("git")
    if not isinstance(git, dict) or not git.get("sha"):
        problems.append("git.sha is required")
    if not isinstance(payload.get("seq"), int) or payload.get("seq", 0) < 0:
        problems.append("seq must be a non-negative integer")
    config = payload.get("config")
    if not isinstance(config, dict):
        problems.append("config must be an object")
    else:
        for key in ("store_provenance", "fusion", "specialize"):
            if key not in config:
                problems.append(f"config: missing {key!r}")
    benches = payload.get("benches")
    if not isinstance(benches, dict):
        problems.append("benches must be an object")
    else:
        for bench, record in benches.items():
            if not isinstance(record, dict) or not isinstance(
                record.get("metrics"), dict
            ):
                problems.append(f"benches[{bench}]: metrics must be an object")
                continue
            for name, metric in record["metrics"].items():
                if not isinstance(metric, dict) or not isinstance(
                    metric.get("value"), (int, float)
                ):
                    problems.append(
                        f"benches[{bench}].metrics[{name}]: "
                        "value must be a number"
                    )
    if not isinstance(payload.get("profiles"), dict):
        problems.append("profiles must be an object")
    if not isinstance(payload.get("waivers"), list):
        problems.append("waivers must be a list")
    else:
        for i, waiver in enumerate(payload["waivers"]):
            if not isinstance(waiver, dict) or not waiver.get("metric"):
                problems.append(f"waivers[{i}]: metric is required")
            elif not waiver.get("reason"):
                problems.append(f"waivers[{i}]: reason is required")
    return problems


def validate_trajectory_file(path: str) -> dict:
    """Load and validate a snapshot; raises ``ValueError`` listing
    every problem, returns the payload when valid."""
    with open(path) as fh:
        payload = json.load(fh)
    problems = validate_trajectory(payload)
    if problems:
        raise ValueError(
            f"{path!r} is not a valid trajectory snapshot:\n  "
            + "\n  ".join(problems)
        )
    return payload


# ----------------------------------------------------------------------
# The flat metric view (diff / trend / gate all consume this)
# ----------------------------------------------------------------------


def snapshot_metrics(snapshot: dict) -> dict:
    """Every judged metric in a snapshot as one flat dict:

    * ``bench.<name>.<metric>`` from the aggregated bench reports,
    * ``profile.<app>.simulated.<key>`` (lower is better, modeled) —
      the deterministic critical-path times,
    * ``profile.<app>.counters.<name>`` (lower is better, modeled) —
      crossing/decision counts.
    """
    flat: dict = {}
    for bench, record in sorted(snapshot.get("benches", {}).items()):
        for name, metric in sorted(record.get("metrics", {}).items()):
            flat[f"bench.{bench}.{name}"] = {
                "value": metric["value"],
                "direction": metric.get("direction", "higher"),
                "kind": metric.get("kind", "modeled"),
                "unit": metric.get("unit", ""),
            }
    for app, profile in sorted(snapshot.get("profiles", {}).items()):
        for key, value in sorted(profile.get("simulated", {}).items()):
            flat[f"profile.{app}.simulated.{key}"] = {
                "value": value,
                "direction": "lower",
                "kind": "modeled",
                "unit": "s",
            }
        for name, value in sorted(profile.get("counters", {}).items()):
            flat[f"profile.{app}.counters.{name}"] = {
                "value": value,
                "direction": "lower",
                "kind": "modeled",
                "unit": "count",
            }
    return flat


def _classify(
    base: float, cur: float, direction: str, threshold_pct: float
) -> str:
    """Direction-aware movement: ``improved`` / ``regressed`` /
    ``within`` (inside the threshold band)."""
    if base == 0:
        return "within" if cur == base else (
            "improved" if (cur > base) == (direction == "higher")
            else "regressed"
        )
    delta_pct = 100.0 * (cur - base) / abs(base)
    worse = delta_pct < -threshold_pct if direction == "higher" \
        else delta_pct > threshold_pct
    better = delta_pct > threshold_pct if direction == "higher" \
        else delta_pct < -threshold_pct
    if worse:
        return "regressed"
    if better:
        return "improved"
    return "within"


def diff_snapshots(
    baseline: dict,
    current: dict,
    threshold_pct: float = DEFAULT_GATE_THRESHOLD_PCT,
) -> dict:
    """Per-metric delta of ``current`` against ``baseline``.

    Every metric present in either snapshot appears exactly once:
    shared metrics are classified direction-aware against the
    threshold; metrics only in ``current`` are ``added``; metrics only
    in ``baseline`` are ``removed`` (a disappearing bench bar is worth
    seeing, not silently dropping).
    """
    base_metrics = snapshot_metrics(baseline)
    cur_metrics = snapshot_metrics(current)
    entries = []
    for name in sorted(set(base_metrics) | set(cur_metrics)):
        base = base_metrics.get(name)
        cur = cur_metrics.get(name)
        if base is None:
            entries.append(
                {
                    "metric": name,
                    "classification": "added",
                    "current": cur["value"],
                    "direction": cur["direction"],
                    "kind": cur["kind"],
                }
            )
            continue
        if cur is None:
            entries.append(
                {
                    "metric": name,
                    "classification": "removed",
                    "baseline": base["value"],
                    "direction": base["direction"],
                    "kind": base["kind"],
                }
            )
            continue
        delta_pct = (
            100.0 * (cur["value"] - base["value"]) / abs(base["value"])
            if base["value"]
            else (0.0 if cur["value"] == base["value"] else float("inf"))
        )
        entries.append(
            {
                "metric": name,
                "classification": _classify(
                    base["value"], cur["value"],
                    cur["direction"], threshold_pct,
                ),
                "baseline": base["value"],
                "current": cur["value"],
                "delta_pct": round(delta_pct, 3)
                if delta_pct != float("inf")
                else None,
                "direction": cur["direction"],
                "kind": cur["kind"],
            }
        )
    counts: dict = {}
    for entry in entries:
        counts[entry["classification"]] = (
            counts.get(entry["classification"], 0) + 1
        )
    return {
        "schema": "repro.trajectory.diff/1",
        "baseline": _snapshot_id(baseline),
        "current": _snapshot_id(current),
        "threshold_pct": threshold_pct,
        "counts": counts,
        "entries": entries,
    }


def _snapshot_id(snapshot: dict) -> str:
    git = snapshot.get("git", {})
    label = snapshot.get("label") or ""
    seq = snapshot.get("seq", 0)
    short = git.get("short_sha", "unknown")
    return f"#{seq:04d} {short}" + (f" ({label})" if label else "")


def render_diff(diff: dict, show_within: bool = False) -> str:
    """Human-readable diff: regressions first, then improvements, then
    added/removed; ``within``-band metrics summarized unless asked."""
    lines = [
        f"trajectory diff: {diff['baseline']} -> {diff['current']} "
        f"(threshold {diff['threshold_pct']:g}%)"
    ]
    order = {"regressed": 0, "improved": 1, "added": 2, "removed": 3,
             "within": 4}
    entries = sorted(
        diff["entries"],
        key=lambda e: (order[e["classification"]], e["metric"]),
    )
    marks = {
        "regressed": "✗", "improved": "✓", "added": "+",
        "removed": "-", "within": "=",
    }
    shown = 0
    for entry in entries:
        cls = entry["classification"]
        if cls == "within" and not show_within:
            continue
        shown += 1
        if cls == "added":
            detail = f"(new) {entry['current']:.6g}"
        elif cls == "removed":
            detail = f"{entry['baseline']:.6g} (gone)"
        else:
            delta = entry.get("delta_pct")
            detail = (
                f"{entry['baseline']:.6g} -> {entry['current']:.6g}"
                + (f" ({delta:+.1f}%)" if delta is not None else "")
            )
        wall = "  [wall]" if entry.get("kind") == "wall" else ""
        lines.append(
            f"  {marks[cls]} {cls:<9s} {entry['metric']}: {detail}{wall}"
        )
    counts = diff["counts"]
    summary = ", ".join(
        f"{counts[k]} {k}" for k in order if counts.get(k)
    ) or "no metrics"
    lines.append(f"  ({summary}; {shown} shown)")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Trend rendering
# ----------------------------------------------------------------------


def _sparkline(values: list) -> str:
    finite = [v for v in values if isinstance(v, (int, float))]
    if not finite:
        return ""
    lo, hi = min(finite), max(finite)
    span = hi - lo
    chars = []
    for v in values:
        if not isinstance(v, (int, float)):
            chars.append(" ")
            continue
        frac = 0.5 if span == 0 else (v - lo) / span
        chars.append(_SPARK_CHARS[min(int(frac * 7.999), 7)])
    return "".join(chars)


def trend_report(snapshots: list) -> dict:
    """The whole-changelog series, per metric: every value in sequence
    order plus a first->last direction-aware classification (threshold
    0: any net movement counts)."""
    ids = [_snapshot_id(s) for s in snapshots]
    per_metric: dict = {}
    for i, snapshot in enumerate(snapshots):
        for name, metric in snapshot_metrics(snapshot).items():
            row = per_metric.setdefault(
                name,
                {
                    "values": [None] * len(snapshots),
                    "direction": metric["direction"],
                    "kind": metric["kind"],
                    "unit": metric["unit"],
                },
            )
            row["values"][i] = metric["value"]
    for name, row in per_metric.items():
        present = [v for v in row["values"] if v is not None]
        row["first"] = present[0] if present else None
        row["last"] = present[-1] if present else None
        if len(present) >= 2 and present[0]:
            row["net_pct"] = round(
                100.0 * (present[-1] - present[0]) / abs(present[0]), 3
            )
            row["net"] = _classify(
                present[0], present[-1], row["direction"], 0.0
            )
        else:
            row["net_pct"] = None
            row["net"] = "flat"
        row["sparkline"] = _sparkline(row["values"])
    return {
        "schema": "repro.trajectory.trend/1",
        "snapshots": ids,
        "points": len(snapshots),
        "metrics": dict(sorted(per_metric.items())),
    }


def render_trend(report: dict, metric_filter: str = "") -> str:
    """Text trend over the changelog: one sparkline row per metric,
    grouped by top-level prefix (``bench.<name>`` / ``profile.<app>``)."""
    lines = [
        f"performance trajectory: {report['points']} snapshot(s)"
    ]
    for snap_id in report["snapshots"]:
        lines.append(f"  {snap_id}")
    if not report["metrics"]:
        lines.append("(no metrics recorded)")
        return "\n".join(lines)
    marks = {"improved": "✓", "regressed": "✗", "within": "=", "flat": "·"}
    group = None
    for name, row in report["metrics"].items():
        if metric_filter and metric_filter not in name:
            continue
        prefix = ".".join(name.split(".")[:2])
        if prefix != group:
            group = prefix
            lines.append("")
            lines.append(f"{group}:")
        short = name[len(prefix) + 1:]
        net = (
            f"{row['net_pct']:+.1f}%"
            if row.get("net_pct") is not None
            else "  --  "
        )
        first = row["first"]
        last = row["last"]
        series = (
            f"{first:.4g} -> {last:.4g}"
            if first is not None and last is not None
            else "(absent)"
        )
        wall = " [wall]" if row.get("kind") == "wall" else ""
        lines.append(
            f"  {marks.get(row['net'], '·')} {short:<46s} "
            f"{row['sparkline']:<8s} {series:>24s} {net:>8s}{wall}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The regression gate
# ----------------------------------------------------------------------


def gate_snapshots(
    current: dict,
    baseline: dict,
    threshold_pct: float = DEFAULT_GATE_THRESHOLD_PCT,
) -> dict:
    """The CI gate: every *modeled* metric of ``baseline`` that
    regressed beyond ``threshold_pct`` in ``current``.

    Returns ``{"regressions": [...], "waived": [...], "checked": N}``;
    the caller exits nonzero when ``regressions`` is non-empty. Wall
    metrics and added/removed metrics never gate (a removed bar is a
    review concern, not a CI failure). Waivers recorded in the current
    snapshot (``bench gate --bless``) move a regression into
    ``waived`` with its annotation."""
    diff = diff_snapshots(baseline, current, threshold_pct)
    waivers = {
        w.get("metric"): w
        for w in current.get("waivers", [])
        if isinstance(w, dict)
    }
    regressions = []
    waived = []
    checked = 0
    for entry in diff["entries"]:
        if entry["classification"] in ("added", "removed"):
            continue
        if entry.get("kind") != "modeled":
            continue
        checked += 1
        if entry["classification"] != "regressed":
            continue
        arrow = (
            f"{entry['baseline']:.6g} -> {entry['current']:.6g}"
            + (
                f" ({entry['delta_pct']:+.1f}%)"
                if entry.get("delta_pct") is not None
                else ""
            )
        )
        message = (
            f"{entry['metric']}: {arrow}, {entry['direction']} is better "
            f"(threshold {threshold_pct:g}%)"
        )
        waiver = waivers.get(entry["metric"])
        if waiver is not None:
            waived.append(f"{message} — waived: {waiver.get('reason', '')}")
        else:
            regressions.append(message)
    return {
        "schema": "repro.trajectory.gate/1",
        "baseline": diff["baseline"],
        "current": diff["current"],
        "threshold_pct": threshold_pct,
        "checked": checked,
        "regressions": regressions,
        "waived": waived,
    }


def add_waivers(
    snapshot_path: str, metrics: list, reason: str
) -> dict:
    """Record an annotated waiver for each metric into the snapshot at
    ``snapshot_path`` (the ``bench gate --bless`` path: an intentional
    regression is blessed *in the record*, never by silently editing a
    baseline). Returns the updated snapshot."""
    if not reason:
        raise ValueError("a waiver requires a non-empty --reason")
    snapshot = validate_trajectory_file(snapshot_path)
    existing = {
        w.get("metric") for w in snapshot["waivers"] if isinstance(w, dict)
    }
    blessed_by = git_metadata()
    for metric in metrics:
        if metric in existing:
            continue
        snapshot["waivers"].append(
            {
                "metric": metric,
                "reason": reason,
                "blessed_at": blessed_by.get("sha", "unknown"),
            }
        )
    with open(snapshot_path, "w") as fh:
        json.dump(snapshot, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return snapshot
