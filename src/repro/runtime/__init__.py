"""The Liquid Metal runtime: task graphs, scheduling, substitution,
marshaling, and the co-execution engine."""

from repro.runtime.adaptive import AdaptationRecord, AdaptiveTask
from repro.runtime.engine import Runtime, RuntimeConfig, RunOutcome
from repro.runtime.graph import Pipeline
from repro.runtime.marshaling import BoundaryCosts, MarshalingBoundary
from repro.runtime.queues import END_OF_STREAM, Connection
from repro.runtime.scheduler import SequentialScheduler, ThreadedScheduler
from repro.runtime.substitution import (
    SubstitutionPolicy,
    apply_substitutions,
    plan_substitutions,
)
from repro.runtime.tasks import (
    DeviceTask,
    FilterTask,
    SinkTask,
    SourceTask,
)
from repro.runtime.timing import TimingLedger

__all__ = [
    "AdaptationRecord",
    "AdaptiveTask",
    "BoundaryCosts",
    "Connection",
    "DeviceTask",
    "END_OF_STREAM",
    "FilterTask",
    "MarshalingBoundary",
    "Pipeline",
    "RunOutcome",
    "Runtime",
    "RuntimeConfig",
    "SequentialScheduler",
    "SinkTask",
    "SourceTask",
    "SubstitutionPolicy",
    "ThreadedScheduler",
    "TimingLedger",
    "apply_substitutions",
    "plan_substitutions",
]
