"""The Liquid Metal runtime: task graphs, scheduling, substitution,
marshaling, fault injection/supervision, and the co-execution engine."""

from repro.runtime.adaptive import AdaptationRecord, AdaptiveTask
from repro.runtime.cancel import CancelToken
from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointRecorder,
    load_frames,
    load_last_frame,
)
from repro.runtime.engine import Runtime, RuntimeConfig, RunOutcome
from repro.runtime.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    NULL_INJECTOR,
    fault_log_payload,
    kill_all_devices_plan,
    load_fault_plan,
)
from repro.runtime.graph import Pipeline
from repro.runtime.health import (
    DeviceHealth,
    HealthPolicy,
    HealthRegistry,
    TransitionRecord,
    render_health_report,
    validate_health_file,
    validate_health_report,
)
from repro.runtime.marshaling import BoundaryCosts, MarshalingBoundary
from repro.runtime.queues import END_OF_STREAM, Connection
from repro.runtime.scheduler import SequentialScheduler, ThreadedScheduler
from repro.runtime.specialize import (
    KernelSpecializer,
    SpecializationPolicy,
)
from repro.runtime.substitution import (
    SubstitutionPolicy,
    apply_substitutions,
    plan_substitutions,
)
from repro.runtime.supervisor import (
    DemotionRecord,
    RetryPolicy,
    Supervisor,
)
from repro.runtime.tasks import (
    DeviceTask,
    FilterTask,
    SinkTask,
    SourceTask,
)
from repro.runtime.timing import TimingLedger

__all__ = [
    "AdaptationRecord",
    "AdaptiveTask",
    "BoundaryCosts",
    "CHECKPOINT_SCHEMA",
    "CancelToken",
    "CheckpointRecorder",
    "fault_log_payload",
    "load_frames",
    "load_last_frame",
    "Connection",
    "DemotionRecord",
    "DeviceHealth",
    "DeviceTask",
    "END_OF_STREAM",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FilterTask",
    "HealthPolicy",
    "HealthRegistry",
    "InjectedFault",
    "KernelSpecializer",
    "MarshalingBoundary",
    "NULL_INJECTOR",
    "Pipeline",
    "RetryPolicy",
    "TransitionRecord",
    "RunOutcome",
    "Runtime",
    "RuntimeConfig",
    "SequentialScheduler",
    "SinkTask",
    "SourceTask",
    "SpecializationPolicy",
    "SubstitutionPolicy",
    "Supervisor",
    "ThreadedScheduler",
    "TimingLedger",
    "apply_substitutions",
    "kill_all_devices_plan",
    "load_fault_plan",
    "plan_substitutions",
    "render_health_report",
    "validate_health_file",
    "validate_health_report",
]
