"""Runtime adaptation (Section 4.2's future work, implemented).

"A more sophisticated algorithm that accounts for communication costs,
performs dynamic migration, or runtime adaptation is left to future
work." The communication-aware policy covers the first; this module
covers the rest: an :class:`AdaptiveTask` holds *both* implementations
of a substituted span — the bytecode filters and the device artifact —
probes each on an initial mini-batch, then migrates the remainder of
the stream to whichever ran faster per item. Because every artifact is
semantically equivalent (same task identifiers, Section 3), migration
is invisible to the rest of the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.tasks import ExecutionContext, Task, _QUEUE_CYCLES


@dataclass
class AdaptationRecord:
    """What the adaptive task measured and decided.

    The device is probed twice (different batch sizes) so its fixed
    launch/transfer overhead can be separated from the marginal
    per-item cost; the decision compares the CPU's per-item cost with
    the device's *amortized* per-item cost at full batch size."""

    artifact_id: str
    device: str
    cpu_s_per_item: float
    device_fixed_s: float
    device_marginal_s_per_item: float
    device_s_per_item: float    # amortized at batch_size
    chosen: str                 # 'bytecode' or the device kind
    probe_items: int


class AdaptiveTask(Task):
    """A substituted span that decides its own placement online."""

    kind = "adaptive"
    device = "adaptive"

    def __init__(
        self,
        artifact_id: str,
        device_kind: str,
        covered_task_ids: list,
        device_executor,
        cpu_methods: list,
        probe_size: int = 32,
        batch_size: int = 4096,
    ):
        super().__init__(f"adaptive:{artifact_id}")
        self.artifact_id = artifact_id
        self.device_kind = device_kind
        self.covered_task_ids = list(covered_task_ids)
        self.device_executor = device_executor
        self.cpu_methods = list(cpu_methods)
        self.probe_size = max(probe_size, 1)
        self.batch_size = batch_size
        self.chosen: str | None = None
        self._cpu_per_item: float | None = None
        self._device_probes: list = []  # [(items, seconds), ...]

    # -- execution paths ---------------------------------------------------

    def _run_cpu(self, items: list, ctx: ExecutionContext):
        cycles = 0
        outputs = []
        for item in items:
            value = item
            for method in self.cpu_methods:
                value, used = ctx.invoke(method, [value])
                cycles += used + _QUEUE_CYCLES
            outputs.append(value)
        return outputs, ctx.seconds_for_cycles(cycles)

    def _run_device(self, items: list):
        return self.device_executor(items)

    def _decide(self, ctx: ExecutionContext) -> None:
        assert self._cpu_per_item is not None
        (n1, s1), (n2, s2) = self._device_probes
        if n2 == n1:
            marginal = s2 / max(n2, 1)
            fixed = 0.0
        else:
            marginal = max((s2 - s1) / (n2 - n1), 0.0)
            fixed = max(s1 - marginal * n1, 0.0)
        amortized = marginal + fixed / self.batch_size
        self.chosen = (
            "bytecode"
            if self._cpu_per_item <= amortized
            else self.device_kind
        )
        ctx.engine.adaptation_log.append(
            AdaptationRecord(
                artifact_id=self.artifact_id,
                device=self.device_kind,
                cpu_s_per_item=self._cpu_per_item,
                device_fixed_s=fixed,
                device_marginal_s_per_item=marginal,
                device_s_per_item=amortized,
                chosen=self.chosen,
                probe_items=n1 + n2,
            )
        )

    def _process(self, items: list, ctx: ExecutionContext):
        """Route one batch according to the adaptation state machine:
        CPU probe -> small device probe -> larger device probe ->
        decide -> steady state."""
        if self.chosen is not None:
            if self.chosen == "bytecode":
                return self._run_cpu(items, ctx)
            return self._run_device(items)
        if self._cpu_per_item is None:
            outputs, seconds = self._run_cpu(items, ctx)
            self._cpu_per_item = seconds / max(len(items), 1)
            return outputs, seconds
        outputs, seconds = self._run_device(items)
        self._device_probes.append((len(items), seconds))
        if len(self._device_probes) == 2:
            self._decide(ctx)
        return outputs, seconds

    # -- task interface --------------------------------------------------

    def _next_probe_size(self) -> int:
        # CPU probe, then device probes at 1x and 4x the probe size:
        # two points separate fixed from marginal device cost.
        if self._cpu_per_item is None or not self._device_probes:
            return self.probe_size
        return self.probe_size * 4

    def process_batch(self, items, ctx):
        stage = self._stage(ctx)
        outputs: list = []
        index = 0
        while index < len(items):
            if self.chosen is None:
                take = min(self._next_probe_size(), len(items) - index)
            else:
                take = min(self.batch_size, len(items) - index)
            chunk = items[index : index + take]
            out, seconds = self._process(chunk, ctx)
            outputs.extend(out)
            stage.busy_s += seconds
            index += take
        stage.items += len(outputs)
        return outputs

    def run(self, ctx):
        stage = self._stage(ctx)
        done = False
        while not done:
            limit = (
                self._next_probe_size()
                if self.chosen is None
                else self.batch_size
            )
            batch, done = self.input_conn.get_up_to(limit)
            if batch:
                outputs, seconds = self._process(batch, ctx)
                stage.busy_s += seconds
                stage.items += len(outputs)
                for value in outputs:
                    self.output_conn.put(value)
        self.output_conn.close()
