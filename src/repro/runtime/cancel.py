"""Cooperative cancellation for service jobs.

A :class:`CancelToken` is created per job by the co-execution service
and threaded into the runtime via ``RuntimeConfig``/``Runtime``. The
runtime never preempts a task: worker loops poll ``token.check()`` at
firing/batch boundaries, so a trip surfaces as a typed
:class:`~repro.errors.JobCancelledError` at the next safe point and
the schedulers can drain queues and join threads deterministically.

Deadlines ride on the same token. The deadline is stored as an
*absolute* instant on an injectable clock (``time.monotonic`` by
default; tests inject a fake clock), and ``check()`` trips the token
with reason ``"deadline"`` the first time it observes the deadline in
the past. This keeps deadline expiry and explicit cancellation on one
code path — a single flag, a single error type.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import JobCancelledError

__all__ = ["CancelToken"]


class CancelToken:
    """A one-way trip wire shared between a service job and its run.

    Thread-safe: ``cancel`` may be called from any thread while worker
    threads poll ``check``. Once tripped, a token stays tripped; the
    first reason wins.
    """

    def __init__(
        self,
        job_id: str | None = None,
        tenant: str | None = None,
        deadline_s: float | None = None,
        clock: Callable[[], float] | None = None,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self._clock = clock if clock is not None else time.monotonic
        self._deadline = (
            None if deadline_s is None else self._clock() + deadline_s
        )
        self._lock = threading.Lock()
        self._cancelled = threading.Event()
        self._reason: str | None = None

    @property
    def deadline(self) -> float | None:
        """Absolute deadline on this token's clock, or ``None``."""
        return self._deadline

    @property
    def reason(self) -> str | None:
        """Why the token tripped (``None`` while still live)."""
        return self._reason

    def cancel(self, reason: str = "cancelled") -> bool:
        """Trip the token. Returns True if this call did the tripping
        (False if it was already tripped — the first reason sticks)."""
        with self._lock:
            if self._cancelled.is_set():
                return False
            self._reason = reason
            self._cancelled.set()
            return True

    def cancelled(self) -> bool:
        """True once the token has tripped (including by deadline —
        this polls the deadline, so a quiescent expired token still
        reads as cancelled)."""
        if self._cancelled.is_set():
            return True
        if self._deadline is not None and self._clock() >= self._deadline:
            self.cancel("deadline")
            return True
        return False

    def check(self) -> None:
        """Raise :class:`JobCancelledError` if the token has tripped.

        Worker loops call this at firing/batch boundaries; it is the
        only place cancellation becomes an exception.
        """
        if self.cancelled():
            verb = (
                "deadline exceeded"
                if self._reason == "deadline"
                else "cancelled"
            )
            label = self.job_id if self.job_id is not None else "<job>"
            raise JobCancelledError(
                f"job {label} {verb}",
                job_id=self.job_id,
                tenant=self.tenant,
                reason=self._reason or "cancelled",
            )

    def remaining_s(self) -> float | None:
        """Seconds until the deadline (``None`` if no deadline;
        clamped at 0.0 once expired)."""
        if self._deadline is None:
            return None
        return max(0.0, self._deadline - self._clock())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"tripped:{self._reason}" if self._cancelled.is_set() else "live"
        return f"CancelToken(job_id={self.job_id!r}, {state})"
