"""Stage-boundary checkpoints for crash-consistent co-execution.

A :class:`CheckpointRecorder` memoizes the results of the runtime's
*device decision points* — every supervised filter-batch executor call
and every whole ``execute_map`` / ``execute_reduce`` invocation — and
periodically persists them, together with wholesale snapshots of the
fault injector, the retry supervisor, and the device-health registry,
as torn-write-tolerant frames (``repro.checkpoint/1``) appended to a
per-job checkpoint file. Frames are *deltas*: each carries only the
entries captured since the previous frame (state snapshots are always
wholesale), so a frame costs O(interval) however long the run is, and
resume consumes the concatenated entry slices of the whole valid
chain.

On restart the service resumes an interrupted job by re-running it
from its entry point with a recorder in *replay* mode: host/bytecode
work re-executes live (it is deterministic), while each memoized
decision point is served from the frame — outputs decoded from the
wire format, offload records re-charged to the ledger, stdout segments
and interpreter cycles replayed — so the resumed run is bit-identical
to the uninterrupted one. A decision point whose memo does not match
the live call signature raises
:class:`~repro.errors.CheckpointReplayError`; the service then
discards the checkpoint and re-runs the job from scratch (still
bit-identical, just slower).

Frames are only written at *quiescent* points: the sequential
scheduler persists inline at stage boundaries, the threaded scheduler
only between graphs and after top-level map/reduce commits — a frame
must never capture a half-finished concurrent stage.

Persistence cost is **modeled**, not charged to the job's ledger
(charging it would perturb the bit-identity the checkpoints exist to
protect): the recorder accumulates ``modeled_persist_s`` for the
benchmark harness (``BENCH_recovery.json``) to report against the
<10% overhead bar.
"""

from __future__ import annotations

import json
import os
import threading

from repro.errors import CheckpointReplayError, ConfigurationError
from repro.obs.tracer import NULL_TRACER
from repro.runtime.health import OPEN
from repro.runtime.timing import OffloadRecord
from repro.values import (
    frame_record,
    pack_values,
    unframe_records,
    unpack_values,
)

#: Schema tag stamped into every checkpoint frame.
CHECKPOINT_SCHEMA = "repro.checkpoint/1"

#: File magic for checkpoint files (frames follow).
CHECKPOINT_MAGIC = b"RC1\n"

#: Modeled cost of persisting one frame: a fixed submit latency plus
#: the frame bytes over a local-SSD-class write stream. Kept out of
#: the job ledger (see module docstring); reported by the recovery
#: benchmark.
PERSIST_FIXED_S = 50e-6
PERSIST_BYTES_PER_S = 2.0e9

#: Default decision points between frames. Chosen so the modeled
#: persist cost (fixed submit latency dominates; frames are
#: O(interval) deltas) stays under the documented 10% overhead bar
#: even on launch-dominated streams: one frame (~50us) amortizes over
#: 32 batch decision points (docs/RECOVERY.md).
DEFAULT_INTERVAL = 32

#: Decision-point kinds a frame entry may carry.
ENTRY_KINDS = ("filter-batch", "map", "reduce")


class CheckpointRecorder:
    """Memoizing capture/replay of one job's device decision points.

    Construct directly for a fresh capture (truncates ``path``), or
    via :meth:`resume` to replay the last valid frame of an existing
    file. Either way, :meth:`attach` binds the recorder to the job's
    :class:`~repro.runtime.engine.Runtime` before the run starts.
    """

    def __init__(self, path: str, interval: int = DEFAULT_INTERVAL,
                 job_id: str = "", tracer=NULL_TRACER):
        if interval < 1:
            raise ConfigurationError(
                f"checkpoint interval must be >= 1, got {interval}"
            )
        self.path = path
        self.interval = interval
        self.job_id = job_id
        self.tracer = tracer
        self._runtime = None
        self._scheduler = ""
        # Replay state (resume mode): per-(kind, key) FIFO queues of
        # frame entries, plus the last frame's state snapshots.
        self._queues: dict = {}
        self._frame: "dict | None" = None
        self._restored_breakers: list = []
        # Capture state: entries recorded since the last persisted
        # frame. Frames are *deltas* — each carries only this slice,
        # so persist cost stays O(interval) however long the run is;
        # resume concatenates the entry slices of every valid frame.
        self._entries: list = []
        self._next_seq = 0
        self._unpersisted = 0
        self._disabled = False
        self._depth = 0
        self._lock = threading.RLock()
        # Accounting (surfaced by the recovery benchmark and tests).
        self.frames_persisted = 0
        self.bytes_persisted = 0
        self.resume_hits = 0
        self.modeled_persist_s = 0.0
        if self._frame is None:
            directory = os.path.dirname(path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(path, "wb") as f:
                f.write(CHECKPOINT_MAGIC)

    # -- construction --------------------------------------------------

    @classmethod
    def resume(cls, path: str, interval: int = DEFAULT_INTERVAL,
               job_id: str = "",
               tracer=NULL_TRACER) -> "CheckpointRecorder | None":
        """A recorder replaying ``path``'s valid frame chain, or
        ``None`` when the file is missing, empty, or wholly torn.

        Frames are deltas: the replay queue is the concatenation of
        every valid frame's entry slice (in frame order), while the
        injector/supervisor/health snapshots come from the *last*
        valid frame — the state the crashed run had at its most recent
        quiescent persist."""
        frames = load_frames(path)
        if not frames:
            return None
        frame = frames[-1]
        recorder = cls.__new__(cls)
        recorder.path = path
        recorder.interval = max(1, int(interval))
        recorder.job_id = job_id or frame.get("job_id", "")
        recorder.tracer = tracer
        recorder._runtime = None
        recorder._scheduler = ""
        recorder._frame = frame
        recorder._restored_breakers = []
        recorder._entries = []
        recorder._next_seq = len(frames)
        recorder._queues = {}
        for chunk in frames:
            for entry in chunk["entries"]:
                handle = (entry["kind"], entry["key"])
                recorder._queues.setdefault(handle, []).append(entry)
        recorder._unpersisted = 0
        recorder._disabled = False
        recorder._depth = 0
        recorder._lock = threading.RLock()
        recorder.frames_persisted = 0
        recorder.bytes_persisted = 0
        recorder.resume_hits = 0
        recorder.modeled_persist_s = 0.0
        return recorder

    @property
    def resuming(self) -> bool:
        return self._frame is not None

    @property
    def entries(self) -> int:
        """Entries captured since the last persisted frame."""
        return len(self._entries)

    # -- runtime binding -----------------------------------------------

    def attach(self, runtime) -> None:
        """Bind to a runtime before its run starts.

        Fresh capture refuses configurations whose decision points are
        not replayable (kernel specialization mutates artifacts across
        calls; adaptive policies re-decide per firing). Resume restores
        the frame's injector/supervisor/health snapshots wholesale and
        re-pins OPEN breakers into the runtime's substitution policy —
        exactly the state the crashed run had at its last frame.
        """
        if runtime.config.specialize.enabled:
            raise ConfigurationError(
                "checkpointing cannot capture specialized kernels; "
                "disable SpecializationPolicy or checkpointing"
            )
        if runtime.policy.adaptive:
            raise ConfigurationError(
                "checkpointing cannot capture adaptive substitution; "
                "disable policy.adaptive or checkpointing"
            )
        self._runtime = runtime
        self._scheduler = runtime.config.scheduler
        frame = self._frame
        if frame is None:
            return
        if frame.get("scheduler") != runtime.config.scheduler:
            raise CheckpointReplayError(
                f"checkpoint was captured under the "
                f"{frame.get('scheduler')!r} scheduler but the job is "
                f"resuming under {runtime.config.scheduler!r}",
                job_id=self.job_id,
            )
        injector_state = frame.get("injector")
        if (injector_state is None) != (not runtime.faults.enabled):
            raise CheckpointReplayError(
                "checkpoint and resumed job disagree about fault "
                "injection; cannot replay",
                job_id=self.job_id,
            )
        if injector_state is not None:
            runtime.faults.restore_state(injector_state)
        runtime.supervisor.restore_state(frame["supervisor"])
        restored = runtime.health.restore_state(frame["health"])
        self._restored_breakers = [(r.device, r.key) for r in restored]
        for record in restored:
            if record.state == OPEN:
                runtime.policy.demote(record.covered_task_ids, health=True)
        self.tracer.counters.add("checkpoint.resume.attached")

    def invalidate(self, registry) -> None:
        """Abandon this resume attempt: scrub the breakers the frame
        restored from the (possibly service-shared) health registry so
        the from-scratch re-run starts clean."""
        self.tracer.counters.add("checkpoint.invalid")
        for device, key in self._restored_breakers:
            registry.discard(device, key)
        self._restored_breakers = []

    # -- decision points -----------------------------------------------

    def wrap_stage(self, key: str, execute):
        """Wrap a supervised filter-batch executor (``execute(items)
        -> (outputs, seconds)``) as one memoized decision point per
        batch."""

        def wrapped(items: list):
            return self._around(
                "filter-batch", key, len(items), lambda: execute(items)
            )

        return wrapped

    def around_map(self, key: str, items: int, thunk):
        """Memoize one whole ``execute_map`` call (eligibility check,
        breaker decision, offload or CPU path — everything)."""
        outputs, _ = self._around(
            "map", key, items, lambda: (list(thunk()), 0.0)
        )
        return outputs

    def around_reduce(self, key: str, items: int, thunk):
        """Memoize one whole ``execute_reduce`` call."""
        outputs, _ = self._around(
            "reduce", key, items, lambda: ([thunk()], 0.0)
        )
        return outputs[0]

    def _around(self, kind: str, key: str, items: int, live_fn):
        """Serve one decision point: replay the memo when the frame
        has one, otherwise run live and record. The lock serializes
        decision points across stage threads, which makes the
        cycles/stdout/offload deltas exact; simulated time is
        unaffected by the lost wall-clock overlap."""
        with self._lock:
            if self._depth:
                # Nested decision point (a map inside a mapped method):
                # the outer memo already covers it; never record or
                # consume at depth > 0.
                return live_fn()
            entry = self._pop(kind, key)
            if entry is not None:
                return self._replay(entry, items)
            result = self._capture(kind, key, items, live_fn)
            if self._scheduler == "sequential":
                # Single-threaded execution is quiescent between any
                # two top-level decision points, so the interval can
                # fire mid-stage — a fused pipeline with one device
                # stage still checkpoints per batch. Threaded runs
                # must wait for a graph/stage boundary.
                self.quiesce()
            return result

    def _pop(self, kind: str, key: str):
        queue = self._queues.get((kind, key))
        if not queue:
            return None
        return queue.pop(0)

    def _replay(self, entry: dict, items: int):
        if entry["items"] != items:
            raise CheckpointReplayError(
                f"checkpoint entry for {entry['kind']}:{entry['key']} "
                f"memoizes {entry['items']} item(s) but the resumed "
                f"run presented {items}",
                job_id=self.job_id,
            )
        runtime = self._runtime
        outputs = unpack_values(bytes.fromhex(entry["outputs"]))
        runtime.interp.stdout.extend(entry["stdout"])
        runtime.interp.cycles += entry["cycles"]
        for row in entry["offloads"]:
            record = OffloadRecord.from_dict(row)
            runtime.ledger.add_offload(record)
            runtime._observe_offload(record)
        self.resume_hits += 1
        self.tracer.counters.add("checkpoint.resume.hit")
        return outputs, entry["seconds"]

    def _capture(self, kind: str, key: str, items: int, live_fn):
        runtime = self._runtime
        interp = runtime.interp
        cycles_before = interp.cycles
        out_before = len(interp.stdout)
        offloads_before = len(runtime.ledger.offloads)
        self._depth += 1
        try:
            outputs, seconds = live_fn()
        finally:
            self._depth -= 1
        if self._disabled:
            return outputs, seconds
        try:
            packed = pack_values(list(outputs))
        except Exception:
            # Outputs outside the wire format cannot be memoized; a
            # partial memo is worse than none, so stop capturing (the
            # job stays journal-recoverable from scratch).
            self._disable()
            return outputs, seconds
        self._entries.append({
            "kind": kind,
            "key": key,
            "items": items,
            "outputs": packed.hex(),
            "seconds": seconds,
            "cycles": interp.cycles - cycles_before,
            "stdout": list(interp.stdout[out_before:]),
            "offloads": [
                record.to_dict()
                for record in runtime.ledger.offloads[offloads_before:]
            ],
        })
        self._unpersisted += 1
        return outputs, seconds

    def _disable(self) -> None:
        self._disabled = True
        self.tracer.counters.add("checkpoint.disabled")

    def kill(self) -> None:
        """Stop this recorder persisting any further frames. The
        service calls this on every live recorder when a simulated
        process crash fires: a zombie runtime thread unwinding after
        the crash must not race the restarted service with stale
        frames (lost-writes semantics, like the journal's
        ``mark_dead``)."""
        self._disabled = True
        self.tracer.counters.add("checkpoint.killed")

    # -- persistence ---------------------------------------------------

    def quiesce(self) -> None:
        """Persist a frame if enough decision points accumulated since
        the last one. Only call at quiescent points; a call that races
        a live capture (nested quiesce) is ignored."""
        with self._lock:
            if (
                self._disabled
                or self._runtime is None
                or self._depth
                or self._unpersisted < self.interval
            ):
                return
            self._persist()

    def flush(self) -> None:
        """Persist a final frame regardless of the interval (anything
        captured since the last frame would otherwise be lost)."""
        with self._lock:
            if self._disabled or self._runtime is None or self._depth:
                return
            if self._unpersisted:
                self._persist()

    def _persist(self) -> None:
        runtime = self._runtime
        payload = json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "job_id": self.job_id,
                "scheduler": self._scheduler,
                "seq": self._next_seq,
                "entries": self._entries,
                "injector": runtime.faults.export_state(),
                "supervisor": runtime.supervisor.export_state(),
                "health": runtime.health.export_state(),
            },
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        frame = frame_record(payload)
        with open(self.path, "ab") as f:
            f.write(frame)
        self._entries = []
        self._next_seq += 1
        self.frames_persisted += 1
        self.bytes_persisted += len(frame)
        self.modeled_persist_s += (
            PERSIST_FIXED_S + len(frame) / PERSIST_BYTES_PER_S
        )
        self._unpersisted = 0
        counters = self.tracer.counters
        counters.add("checkpoint.frame.persisted")
        counters.add("checkpoint.frame.bytes", len(frame))
        with self.tracer.span(
            "checkpoint.persist",
            job_id=self.job_id,
            entries=len(self._entries),
            bytes=len(frame),
        ):
            pass

    def __repr__(self) -> str:
        mode = "replay" if self.resuming else "capture"
        return (
            f"<CheckpointRecorder {mode} {len(self._entries)} entries, "
            f"{self.frames_persisted} frame(s)>"
        )


def load_frames(path: str) -> list:
    """The valid ``repro.checkpoint/1`` frame chain in ``path``.

    Frames are deltas, so only an unbroken prefix is usable: decoding
    stops at the first torn, non-JSON, wrong-schema, or out-of-order
    (``seq`` != position) frame — everything after it is discarded.
    Returns ``[]`` when the file is missing, empty, or wholly torn."""
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return []
    if not data.startswith(CHECKPOINT_MAGIC):
        return []
    payloads, _torn = unframe_records(data[len(CHECKPOINT_MAGIC):])
    frames: list = []
    for payload in payloads:
        try:
            frame = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if (
            not isinstance(frame, dict)
            or frame.get("schema") != CHECKPOINT_SCHEMA
            or not isinstance(frame.get("entries"), list)
            or frame.get("seq") != len(frames)
        ):
            break
        frames.append(frame)
    return frames


def load_last_frame(path: str) -> "dict | None":
    """The last frame of ``path``'s valid chain (its state snapshots
    are the most recent quiescent ones), or ``None`` when no valid
    frame exists. Note frames are deltas: ``entries`` here is only the
    final slice — use :func:`load_frames` for the full replay chain."""
    frames = load_frames(path)
    return frames[-1] if frames else None
