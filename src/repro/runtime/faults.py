"""Deterministic fault injection for the runtime.

The paper's artifact model keeps bytecode as the universally available
implementation of every task (Section 4.1), which means a device
failure should never be fatal — the runtime can always re-substitute
the affected span back onto the host. This module provides the harness
that *proves* that property: a :class:`FaultPlan` describes faults to
inject into device executors and marshaling boundaries — by task or
artifact id, by call count, or probabilistically with a seeded RNG —
and a :class:`FaultInjector` fires them deterministically, recording
every injection through the tracer's counters so a traced run shows
exactly which faults fired and how the supervisor recovered.

Determinism is a hard requirement (the fault harness is itself under
test): there is no wall-clock randomness anywhere. Each spec owns its
own xorshift RNG seeded from ``(plan.seed, spec_index)``, so the
sequence of probabilistic decisions depends only on how many times that
spec's site was hit, never on thread interleaving between specs.
"""

from __future__ import annotations

import fnmatch
import json
import threading
import time
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceTimeoutError,
    MarshalingError,
    ProcessCrash,
)
from repro.obs.tracer import NULL_TRACER

#: Injection sites the runtime consults.
SITES = (
    "device",               # inside a GPU/FPGA executor, before the kernel
    "marshal.to_device",    # host -> device serialization boundary
    "marshal.from_device",  # device -> host deserialization boundary
)

#: Fault kinds a spec can inject.
ERRORS = (
    "device",      # raises DeviceError (retryable by default)
    "marshaling",  # raises MarshalingError (retryable by default)
    "timeout",     # raises DeviceTimeoutError (demotes immediately)
    "stall",       # sleeps stall_s without raising (trips the watchdog)
    "corrupt",     # silently perturbs device outputs (wrong answers);
                   # only shadow probes (docs/RESILIENCE.md) catch it
    "crash",       # raises ProcessCrash (a BaseException): simulates
                   # the host process dying mid-dispatch; only the
                   # journal/recovery path survives it (docs/RECOVERY.md)
)


class _XorShift:
    """Tiny deterministic PRNG (xorshift32) — no wall-clock entropy."""

    def __init__(self, seed: int):
        self.state = seed & 0xFFFFFFFF or 1

    def next_u32(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def random(self) -> float:
        """A unit float in [0, 1)."""
        return self.next_u32() / 2**32


@dataclass(frozen=True)
class FaultSpec:
    """One fault to inject.

    A spec matches a site and a target pattern; among matching calls it
    fires on the listed 1-based ``on_calls`` indices (every call when
    empty), within the burst window ``[from_call, until_call]`` (both
    1-based and inclusive; unbounded when ``None``), with
    ``probability`` (decided by the plan's seeded RNG), at most
    ``times`` times (unlimited when ``None``).

    Burst windows are how a *transient* outage is expressed: the call
    stream is the runtime's deterministic proxy for time, so
    ``until_call=3`` means "this device is broken for its first three
    calls and healthy afterwards" — which makes demotion, shadow
    probing, and re-promotion (docs/RESILIENCE.md) reachable in tests.
    """

    site: str = "device"
    error: str = "device"
    target: str = "*"          # fnmatch over task/artifact ids (device
                               # site) or boundary name (marshal sites)
    on_calls: tuple = ()       # 1-based matching-call indices
    from_call: "int | None" = None   # burst window start (inclusive)
    until_call: "int | None" = None  # burst window end (inclusive)
    probability: float = 1.0
    times: "int | None" = None
    stall_s: float = 0.0       # wall-clock stall for error == 'stall'
    message: str = ""

    def __post_init__(self):
        if self.site not in SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; "
                f"expected one of {', '.join(SITES)}"
            )
        if self.error not in ERRORS:
            raise ConfigurationError(
                f"unknown fault error {self.error!r}; "
                f"expected one of {', '.join(ERRORS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"fault probability must be in [0, 1], "
                f"got {self.probability}"
            )
        if self.times is not None and self.times < 1:
            raise ConfigurationError(
                f"fault times must be >= 1 (or null), got {self.times}"
            )
        if self.stall_s < 0:
            raise ConfigurationError(
                f"fault stall_s must be >= 0, got {self.stall_s}"
            )
        object.__setattr__(
            self, "on_calls", tuple(int(c) for c in self.on_calls)
        )
        if any(c < 1 for c in self.on_calls):
            raise ConfigurationError(
                f"fault on_calls are 1-based, got {self.on_calls}"
            )
        for name in ("from_call", "until_call"):
            bound = getattr(self, name)
            if bound is not None and bound < 1:
                raise ConfigurationError(
                    f"fault {name} is 1-based, got {bound}"
                )
        if (
            self.from_call is not None
            and self.until_call is not None
            and self.until_call < self.from_call
        ):
            raise ConfigurationError(
                f"fault window is empty: from_call={self.from_call} > "
                f"until_call={self.until_call}"
            )
        if self.error == "crash" and self.times is None:
            # A crash that refires forever can never converge across
            # restarts; one firing per spec is the sane default (an
            # explicit times=N still works for chaos schedules).
            object.__setattr__(self, "times", 1)

    def matches(self, site: str, targets: list) -> bool:
        if site != self.site:
            return False
        return any(fnmatch.fnmatch(t, self.target) for t in targets)

    def in_window(self, call: int) -> bool:
        """Whether the 1-based matching-call index falls inside the
        spec's burst window."""
        if self.from_call is not None and call < self.from_call:
            return False
        if self.until_call is not None and call > self.until_call:
            return False
        return True

    def to_dict(self) -> dict:
        payload = {"site": self.site, "error": self.error,
                   "target": self.target}
        if self.on_calls:
            payload["on_calls"] = list(self.on_calls)
        if self.from_call is not None:
            payload["from_call"] = self.from_call
        if self.until_call is not None:
            payload["until_call"] = self.until_call
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.times is not None:
            payload["times"] = self.times
        if self.stall_s:
            payload["stall_s"] = self.stall_s
        if self.message:
            payload["message"] = self.message
        return payload


@dataclass(frozen=True)
class InjectedFault:
    """One fired fault, as recorded in :attr:`FaultInjector.log`."""

    spec_index: int
    site: str
    error: str
    target: str      # the concrete target that matched, not the pattern
    call_index: int  # 1-based index among the spec's matching calls

    def to_dict(self) -> dict:
        return {
            "spec_index": self.spec_index,
            "site": self.site,
            "error": self.error,
            "target": self.target,
            "call_index": self.call_index,
        }


def fault_log_payload(log) -> list:
    """A fault log as plain dicts — the canonical form journal records,
    checkpoint frames, and result digests use."""
    return [record.to_dict() for record in log]


class FaultPlan:
    """An ordered list of :class:`FaultSpec` plus the RNG seed."""

    def __init__(self, specs: list, seed: int = 0):
        self.specs = list(specs)
        self.seed = int(seed)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"fault plan entries must be FaultSpec, got {spec!r}"
                )

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"fault plan must be a JSON object, got {type(payload).__name__}"
            )
        known = {"site", "error", "target", "on_calls", "from_call",
                 "until_call", "probability", "times", "stall_s",
                 "message"}
        specs = []
        for entry in payload.get("faults", []):
            fields = {k: v for k, v in entry.items() if k in known}
            unknown = set(entry) - known - {"comment"}
            if unknown:
                raise ConfigurationError(
                    f"unknown fault spec keys: {', '.join(sorted(unknown))}"
                )
            if "on_calls" in fields:
                fields["on_calls"] = tuple(fields["on_calls"])
            specs.append(FaultSpec(**fields))
        return cls(specs, seed=payload.get("seed", 0))

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.specs],
        }

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan({len(self.specs)} specs, seed={self.seed})"


def load_fault_plan(path: str) -> FaultPlan:
    """Load a :class:`FaultPlan` from a JSON file."""
    with open(path) as f:
        try:
            payload = json.load(f)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan {path} is not valid JSON: {exc}"
            ) from exc
    return FaultPlan.from_dict(payload)


def kill_all_devices_plan(seed: int = 0) -> FaultPlan:
    """The canonical degradation plan: every accelerator call fails."""
    return FaultPlan(
        [FaultSpec(site="device", error="device", target="*")], seed=seed
    )


def _corrupt_value(value):
    """A deterministic wrong-but-plausible perturbation of one value."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        return value + 1.0
    try:
        return ~value  # Bit values invert
    except TypeError:
        return value


def _corrupt_outputs(outputs: list) -> list:
    """Perturb a device result batch: flip the first element, and drop
    the last element if nothing was perturbable (a short read is still
    a wrong answer)."""
    corrupted = list(outputs)
    if not corrupted:
        return corrupted
    perturbed = _corrupt_value(corrupted[0])
    if perturbed is not corrupted[0] and perturbed != corrupted[0]:
        corrupted[0] = perturbed
        return corrupted
    return corrupted[:-1]


class FaultInjector:
    """Fires a :class:`FaultPlan` against one runtime's call stream.

    The runtime consults :meth:`check` at each injection site. Call
    counting is per spec (a call increments a spec's counter only when
    the spec matches it), so two specs never perturb each other's
    call indices or RNG draws.
    """

    enabled = True

    def __init__(self, plan: FaultPlan, tracer=NULL_TRACER):
        self.plan = plan
        self.tracer = tracer
        self._lock = threading.Lock()
        self._calls: dict[int, int] = {}
        self._fires: dict[int, int] = {}
        self._rngs = [
            _XorShift((plan.seed << 4) ^ (0x9E3779B9 * (index + 1)))
            for index in range(len(plan.specs))
        ]
        self.log: list[InjectedFault] = []
        # Crash suppression (docs/RECOVERY.md): (spec_index, call_index)
        # pairs the journal already witnessed firing. A suppressed crash
        # still consumes its fire budget and RNG draw — so every other
        # counter stays aligned with the uninterrupted run — but does
        # not log or raise, which is what makes restart loops converge.
        self.suppressed: set = set()
        self.suppress_all_crashes = False

    def check(self, site: str, targets: list, device=None, task_id=None,
              count: int = 1):
        """Raise (or stall) if any spec decides to fire here.

        ``targets`` are the concrete names this call is known by (e.g.
        an artifact id plus the task ids it covers); a spec matches if
        its pattern matches any of them.

        ``count`` is the number of *logical* transfers this one call
        stands for: a batched boundary crossing of N values passes
        ``count=N`` so call indices (and the RNG draw sequence) stay
        element-accurate — a plan written against the per-element path
        fires at the same logical points under any batch size. When a
        fault fires at logical index i, indices after i are left
        unconsumed, exactly as if the per-element path had raised on
        its i-th call; the retry then replays from the batch start and
        the counters keep advancing past i.
        """
        for _ in range(count):
            self._check_one(site, targets, device=device, task_id=task_id)

    def _consult(self, index: int, spec: FaultSpec, site: str,
                 targets: list) -> "InjectedFault | None":
        """Advance one spec's call counter and decide whether it fires
        (appending to the log when it does). Caller holds no lock."""
        with self._lock:
            call = self._calls.get(index, 0) + 1
            self._calls[index] = call
            if spec.on_calls and call not in spec.on_calls:
                return None
            if not spec.in_window(call):
                return None
            fires = self._fires.get(index, 0)
            if spec.times is not None and fires >= spec.times:
                return None
            if spec.probability < 1.0:
                if self._rngs[index].random() >= spec.probability:
                    return None
            if spec.error == "crash" and (
                self.suppress_all_crashes
                or (index, call) in self.suppressed
            ):
                # Witnessed (or baseline-suppressed) crash: burn the
                # fire budget silently so later calls see identical
                # counters, but don't unwind again.
                self._fires[index] = fires + 1
                return None
            self._fires[index] = fires + 1
            record = InjectedFault(
                spec_index=index,
                site=site,
                error=spec.error,
                target=targets[0] if targets else spec.target,
                call_index=call,
            )
            self.log.append(record)
            return record

    def _check_one(self, site: str, targets: list, device=None,
                   task_id=None) -> None:
        """One logical call: consult every spec in plan order.

        ``corrupt`` specs are excluded — they do not raise; they fire
        through :meth:`transform_outputs`, so their call counters count
        *completed* device executions, not attempts.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.error == "corrupt" or not spec.matches(site, targets):
                continue
            record = self._consult(index, spec, site, targets)
            if record is not None:
                self._fire(spec, record, device=device, task_id=task_id)

    def transform_outputs(self, site: str, targets: list, outputs: list,
                          device=None, task_id=None) -> list:
        """Apply any firing ``corrupt`` specs to a device's outputs.

        Called by the device executors *after* the kernel produced its
        results: a wrong-answer device completes normally but returns
        perturbed values. Nothing raises here — during normal (CLOSED)
        operation the corruption flows downstream undetected, exactly
        like a real silent-data-corruption fault; only a shadow probe's
        element-wise comparison (docs/RESILIENCE.md) catches it.
        """
        for index, spec in enumerate(self.plan.specs):
            if spec.error != "corrupt" or not spec.matches(site, targets):
                continue
            record = self._consult(index, spec, site, targets)
            if record is None:
                continue
            counters = self.tracer.counters
            counters.add("fault.injected[corrupt]")
            with self.tracer.span(
                "fault.injected",
                site=record.site,
                error="corrupt",
                target=record.target,
                call=record.call_index,
                device=device,
            ):
                pass
            outputs = _corrupt_outputs(outputs)
        return outputs

    def _fire(self, spec: FaultSpec, record: InjectedFault,
              device=None, task_id=None) -> None:
        counters = self.tracer.counters
        counters.add(f"fault.injected[{spec.error}]")
        with self.tracer.span(
            "fault.injected",
            site=record.site,
            error=spec.error,
            target=record.target,
            call=record.call_index,
            device=device,
        ):
            pass
        message = spec.message or (
            f"injected {spec.error} fault at {record.site} "
            f"on {record.target!r} (call #{record.call_index})"
        )
        if spec.error == "crash":
            raise ProcessCrash(
                message,
                site=record.site,
                target=record.target,
                spec_index=record.spec_index,
                call_index=record.call_index,
            )
        if spec.error == "device":
            raise DeviceError(message)
        if spec.error == "marshaling":
            raise MarshalingError(message)
        if spec.error == "timeout":
            raise DeviceTimeoutError(
                message, task_id=task_id or record.target, device=device
            )
        # 'stall': burn wall-clock time without raising, so the stage
        # watchdog (not the exception path) has to catch it.
        if spec.stall_s:
            time.sleep(spec.stall_s)

    def fired(self) -> int:
        """Total number of faults injected so far."""
        return len(self.log)

    # -- crash suppression and checkpoint state (docs/RECOVERY.md) -----

    def suppress(self, pairs) -> None:
        """Mark ``(spec_index, call_index)`` crash firings as already
        witnessed by the journal: they consume their budget silently
        instead of unwinding the process again."""
        self.suppressed.update((int(s), int(c)) for s, c in pairs)

    def export_state(self) -> dict:
        """Snapshot the injector for a checkpoint frame: per-spec call
        and fire counters, RNG stream positions, and the fault log."""
        with self._lock:
            return {
                "calls": {str(k): v for k, v in self._calls.items()},
                "fires": {str(k): v for k, v in self._fires.items()},
                "rngs": [rng.state for rng in self._rngs],
                "log": fault_log_payload(self.log),
            }

    def restore_state(self, payload: dict) -> None:
        """Restore a snapshot taken by :meth:`export_state` (resume
        from a checkpoint: memoized calls never re-consult the
        injector, so the restored counters line up with the first live
        call)."""
        with self._lock:
            self._calls = {
                int(k): int(v) for k, v in payload["calls"].items()
            }
            self._fires = {
                int(k): int(v) for k, v in payload["fires"].items()
            }
            for rng, state in zip(self._rngs, payload["rngs"]):
                rng.state = int(state)
            self.log = [InjectedFault(**row) for row in payload["log"]]

    def __repr__(self) -> str:
        return f"<FaultInjector {self.fired()} fired of {self.plan!r}>"


class _NullInjector:
    """No-op injector used when no fault plan is configured."""

    enabled = False
    log: tuple = ()
    suppress_all_crashes = False

    def suppress(self, pairs) -> None:
        pass

    def export_state(self) -> None:
        return None

    def restore_state(self, payload) -> None:
        pass

    def check(self, site, targets, device=None, task_id=None,
              count: int = 1) -> None:
        pass

    def transform_outputs(self, site, targets, outputs, device=None,
                          task_id=None):
        return outputs

    def fired(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "<NullInjector>"


NULL_INJECTOR = _NullInjector()


def as_injector(plan_or_injector, tracer=NULL_TRACER):
    """Normalize a FaultPlan/None/injector to an injector."""
    if plan_or_injector is None:
        return NULL_INJECTOR
    if isinstance(plan_or_injector, FaultPlan):
        return FaultInjector(plan_or_injector, tracer=tracer)
    return plan_or_injector
