"""Runtime task graphs (linear pipelines).

"When the program executes, the task creation and connection operators
are reflected in an actual graph of runtime objects" (Section 4.1). The
connect operator conceptually creates a FIFO between tasks; in this
implementation the pipeline is assembled first and the schedulers
create the FIFOs when execution starts (after task substitution has
replaced spans of tasks with device tasks).
"""

from __future__ import annotations

from repro.errors import RuntimeGraphError
from repro.runtime.queues import Connection
from repro.runtime.tasks import FilterTask, SinkTask, SourceTask, Task


class Pipeline:
    """An ordered chain of runtime tasks."""

    def __init__(self, tasks: list):
        self.tasks: list[Task] = list(tasks)
        self.started = False
        self.failed = False
        self.failure: "BaseException | None" = None
        self.threads: list = []
        self.graph_run = None
        self._errors: list = []

    @staticmethod
    def of(task_or_pipeline) -> "Pipeline":
        if isinstance(task_or_pipeline, Pipeline):
            return task_or_pipeline
        if isinstance(task_or_pipeline, Task):
            return Pipeline([task_or_pipeline])
        raise RuntimeGraphError(
            f"'=>' operand is not a task: {task_or_pipeline!r}"
        )

    @staticmethod
    def connect(left, right) -> "Pipeline":
        lp = Pipeline.of(left)
        rp = Pipeline.of(right)
        if lp.tasks and isinstance(lp.tasks[-1], SinkTask):
            raise RuntimeGraphError("cannot connect after a sink")
        if rp.tasks and isinstance(rp.tasks[0], SourceTask):
            raise RuntimeGraphError("cannot connect into a source")
        return Pipeline(lp.tasks + rp.tasks)

    @property
    def is_closed(self) -> bool:
        return (
            len(self.tasks) >= 2
            and isinstance(self.tasks[0], SourceTask)
            and isinstance(self.tasks[-1], SinkTask)
        )

    def validate(self) -> None:
        if not self.is_closed:
            raise RuntimeGraphError(
                "task graph must start with a source and end with a sink"
            )
        for task in self.tasks[1:-1]:
            if isinstance(task, (SourceTask, SinkTask)):
                raise RuntimeGraphError(
                    "source/sink in the middle of a pipeline"
                )

    def wire(self, capacity: int = 64, metrics=None) -> None:
        """Create the FIFO connections between consecutive tasks.

        ``metrics`` (a :class:`repro.obs.MetricsRegistry`) attaches
        per-edge depth/wait instrumentation to every connection; the
        default ``None`` keeps the hot path untouched."""
        for upstream, downstream in zip(self.tasks, self.tasks[1:]):
            conn = Connection(
                capacity,
                metrics=metrics,
                name=f"{upstream.task_id}->{downstream.task_id}",
            )
            conn.producer = upstream
            conn.consumer = downstream
            upstream.output_conn = conn
            downstream.input_conn = conn

    def task_ids(self) -> list:
        return [t.task_id for t in self.tasks]

    def connections(self) -> list:
        """Every wired FIFO, in pipeline order (empty before
        :meth:`wire`). The schedulers' shutdown path iterates these to
        drain a cancelled run."""
        return [
            t.output_conn
            for t in self.tasks
            if getattr(t, "output_conn", None) is not None
        ]

    def describe(self) -> str:
        parts = []
        for task in self.tasks:
            if isinstance(task, SourceTask):
                parts.append(f"source({task.rate})")
            elif isinstance(task, SinkTask):
                parts.append("sink")
            elif isinstance(task, FilterTask):
                parts.append(task.method.split(".")[-1])
            elif hasattr(task, "covered_task_ids"):
                parts.append(f"[{task.device}:{len(task.covered_task_ids)}]")
            else:
                parts.append(task.task_id)
        return " => ".join(parts)

    def __repr__(self) -> str:
        return f"Pipeline({self.describe()})"
