"""Device health: circuit breakers, shadow probes, re-promotion.

PR 2 made device failure survivable — retry, then *permanent* demotion
to the always-available bytecode artifact (Section 4.1). This module
makes the fallback reversible: every offload is mediated by a
per-(device, span) :class:`DeviceHealth` circuit breaker,

    CLOSED ──failures──► OPEN ──cool-down──► HALF_OPEN ──clean probes──► CLOSED
                           ▲                      │
                           └─────failed probe─────┘

so a span demoted during a transient device outage is *probed* once
the breaker has cooled down — a bounded number of batches run on both
bytecode and the device, outputs compared element-wise (a wrong-answer
device counts as a failure, not just a crashing one) — and re-promoted
to the accelerator when enough probes come back clean. A flapping
device is quarantined exponentially longer on each trip (hysteresis).

Time here is *simulated*, like everything else in the runtime: each
breaker keeps a span-local clock advanced by the simulated seconds of
the outcomes reported against it (device batches, bytecode fallbacks,
retry backoff). Cool-downs therefore expire deterministically — the
same seeds produce the same transitions at the same simulated times,
on either scheduler — and an idle span does not cool down, because its
clock only advances while it processes batches.

The registry renders a machine-readable report stamped
``repro.health/1`` (``python -m repro health``), and every transition
and probe is visible to the tracer as ``breaker.transition`` /
``probe.shadow`` spans plus ``health.*`` counters and a per-breaker
state gauge, feeding the profiler's recovery breakdown.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Gauge encoding of breaker states (CLOSED=0 so a healthy fleet reads
#: as all-zero).
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}

#: Actions :meth:`DeviceHealth.decide` can return.
RUN_DEVICE = "device"      # CLOSED: offload normally
RUN_BYTECODE = "bytecode"  # OPEN: span runs on the bytecode artifact
RUN_PROBE = "probe"        # HALF_OPEN: shadow-probe this batch

#: Schema stamp for health reports.
HEALTH_SCHEMA = "repro.health/1"


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for the per-span circuit breakers.

    ``cooldown_s=None`` (the default) disables re-promotion entirely: a
    tripped breaker stays OPEN for the life of the process, which is
    exactly the permanent demotion of PR 2. Setting a finite cool-down
    (in *simulated* seconds) turns demotion into a quarantine.
    """

    #: Sliding outcome window length (most recent device outcomes).
    window: int = 8
    #: Optional simulated-time horizon: outcomes older than this fall
    #: out of the window even if fewer than ``window`` arrived.
    window_s: "float | None" = None
    #: Failures within the window that trip the breaker OPEN.
    failure_threshold: int = 1
    #: Simulated seconds OPEN before the first HALF_OPEN probe window
    #: (None = never; permanent demotion).
    cooldown_s: "float | None" = None
    #: Consecutive clean shadow probes required to close the breaker.
    probe_batches: int = 2
    #: Hysteresis: each successive trip multiplies the cool-down.
    quarantine_multiplier: float = 2.0
    #: Cap on the escalated cool-down.
    max_cooldown_s: float = 1.0

    def __post_init__(self):
        if self.window < 1:
            raise ConfigurationError(
                f"health window must be >= 1, got {self.window}"
            )
        if self.window_s is not None and self.window_s <= 0:
            raise ConfigurationError(
                f"health window_s must be positive (or None), "
                f"got {self.window_s}"
            )
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}"
            )
        if self.cooldown_s is not None and self.cooldown_s < 0:
            raise ConfigurationError(
                f"cooldown_s must be >= 0 (or None), got {self.cooldown_s}"
            )
        if self.probe_batches < 1:
            raise ConfigurationError(
                f"probe_batches must be >= 1, got {self.probe_batches}"
            )
        if self.quarantine_multiplier < 1.0:
            raise ConfigurationError(
                f"quarantine_multiplier must be >= 1, "
                f"got {self.quarantine_multiplier}"
            )
        if self.max_cooldown_s <= 0:
            raise ConfigurationError(
                f"max_cooldown_s must be positive, "
                f"got {self.max_cooldown_s}"
            )

    @property
    def recovery_enabled(self) -> bool:
        return self.cooldown_s is not None

    def cooldown_for_trip(self, trips: int) -> "float | None":
        """Escalated cool-down before probe window #``trips`` (1-based)."""
        if self.cooldown_s is None:
            return None
        return min(
            self.cooldown_s * self.quarantine_multiplier ** (trips - 1),
            self.max_cooldown_s,
        )


@dataclass(frozen=True)
class TransitionRecord:
    """One breaker state change, stamped with span-local sim time."""

    key: str                 # artifact/span id
    device: str
    from_state: str
    to_state: str
    at_s: float              # breaker-local simulated clock
    reason: str
    trips: int               # total trips so far (after this record)
    cooldown_s: "float | None" = None  # quarantine entered (OPEN only)

    def to_dict(self) -> dict:
        payload = {
            "key": self.key,
            "device": self.device,
            "from": self.from_state,
            "to": self.to_state,
            "at_s": self.at_s,
            "reason": self.reason,
            "trips": self.trips,
        }
        if self.cooldown_s is not None:
            payload["cooldown_s"] = self.cooldown_s
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TransitionRecord":
        return cls(
            key=payload["key"],
            device=payload["device"],
            from_state=payload["from"],
            to_state=payload["to"],
            at_s=payload["at_s"],
            reason=payload["reason"],
            trips=payload["trips"],
            cooldown_s=payload.get("cooldown_s"),
        )


class DeviceHealth:
    """Health record and circuit breaker for one (device, span).

    Not thread-safe on its own — the owning :class:`HealthRegistry`
    serializes access. One span's outcomes always arrive in order (a
    device stage executes its batches sequentially), so per-breaker
    state is deterministic even under the threaded scheduler.
    """

    def __init__(self, device: str, key: str, policy: HealthPolicy,
                 covered_task_ids=()):
        self.device = device
        self.key = key
        self.policy = policy
        self.covered_task_ids = list(covered_task_ids)
        self.state = CLOSED
        self.now_s = 0.0           # span-local simulated clock
        self.trips = 0
        self.opened_at_s: "float | None" = None
        self.clean_probes = 0      # consecutive clean probes this window
        self.transitions: list[TransitionRecord] = []
        self._window: deque = deque()   # (at_s, ok)
        # Lifetime tallies for the health report.
        self.successes = 0
        self.failures = 0
        self.fallbacks = 0
        self.probes = 0
        self.probe_failures = 0
        self.repromotions = 0

    # -- clock and window --------------------------------------------------

    def advance(self, sim_s: float) -> None:
        self.now_s += max(sim_s, 0.0)

    def _prune_window(self) -> None:
        while len(self._window) > self.policy.window:
            self._window.popleft()
        horizon = self.policy.window_s
        if horizon is not None:
            while self._window and self._window[0][0] < self.now_s - horizon:
                self._window.popleft()

    def _window_failures(self) -> int:
        self._prune_window()
        return sum(1 for _, ok in self._window if not ok)

    @property
    def cooldown_s(self) -> "float | None":
        """The quarantine currently in force (None when recovery is
        disabled or the breaker has never tripped)."""
        if not self.trips:
            return self.policy.cooldown_s
        return self.policy.cooldown_for_trip(self.trips)

    # -- state machine -----------------------------------------------------

    def _transition(self, to_state: str, reason: str,
                    cooldown: "float | None" = None) -> TransitionRecord:
        record = TransitionRecord(
            key=self.key,
            device=self.device,
            from_state=self.state,
            to_state=to_state,
            at_s=self.now_s,
            reason=reason,
            trips=self.trips,
            cooldown_s=cooldown,
        )
        self.state = to_state
        self.transitions.append(record)
        return record

    def _open(self, reason: str) -> TransitionRecord:
        self.trips += 1
        cooldown = self.policy.cooldown_for_trip(self.trips)
        self.opened_at_s = self.now_s
        self.clean_probes = 0
        self._window.clear()
        return self._transition(OPEN, reason, cooldown=cooldown)

    def decide(self):
        """The breaker's verdict for the next batch: ``RUN_DEVICE``,
        ``RUN_BYTECODE``, or ``RUN_PROBE``. Returns ``(action,
        transition-or-None)`` — OPEN flips to HALF_OPEN here once the
        quarantine has expired on the span-local clock."""
        if self.state == CLOSED:
            return RUN_DEVICE, None
        if self.state == HALF_OPEN:
            return RUN_PROBE, None
        cooldown = self.policy.cooldown_for_trip(self.trips or 1)
        if cooldown is None:
            return RUN_BYTECODE, None  # permanent demotion
        if self.now_s - (self.opened_at_s or 0.0) >= cooldown:
            record = self._transition(HALF_OPEN, "cooldown-expired")
            return RUN_PROBE, record
        return RUN_BYTECODE, None

    def record_success(self, sim_s: float):
        self.advance(sim_s)
        self.successes += 1
        self._window.append((self.now_s, True))
        self._prune_window()
        return None

    def record_failure(self, sim_s: float, error: str = ""):
        """A device failure that exhausted its retries. Returns the
        OPEN transition when the failure trips the breaker."""
        self.advance(sim_s)
        self.failures += 1
        self._window.append((self.now_s, False))
        if (
            self.state == CLOSED
            and self._window_failures() >= self.policy.failure_threshold
        ):
            return self._open(f"failures >= {self.policy.failure_threshold}"
                              + (f" ({error})" if error else ""))
        return None

    def record_fallback(self, sim_s: float) -> None:
        """A batch served by bytecode while OPEN; advances the clock so
        the quarantine can expire."""
        self.advance(sim_s)
        self.fallbacks += 1

    def record_probe(self, ok: bool, sim_s: float, reason: str = ""):
        """One shadow probe verdict. Returns the resulting transition
        (CLOSED on enough clean probes, OPEN on any failed probe) or
        None while the probe window is still filling."""
        self.advance(sim_s)
        self.probes += 1
        if not ok:
            self.probe_failures += 1
            return self._open(reason or "probe-failed")
        self.clean_probes += 1
        if self.clean_probes >= self.policy.probe_batches:
            self.repromotions += 1
            self._window.clear()
            self.clean_probes = 0
            return self._transition(CLOSED, "probes-clean")
        return None

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "device": self.device,
            "state": self.state,
            "trips": self.trips,
            "now_s": self.now_s,
            "successes": self.successes,
            "failures": self.failures,
            "fallbacks": self.fallbacks,
            "probes": self.probes,
            "probe_failures": self.probe_failures,
            "repromotions": self.repromotions,
            "covered_task_ids": list(self.covered_task_ids),
            "transitions": [t.to_dict() for t in self.transitions],
        }

    # -- checkpoint state (docs/RECOVERY.md) ---------------------------

    def export_state(self) -> dict:
        """Full breaker snapshot for a checkpoint frame — everything
        :meth:`to_dict` reports plus the private machinery (sliding
        window, quarantine anchor, probe streak)."""
        payload = self.to_dict()
        payload["opened_at_s"] = self.opened_at_s
        payload["clean_probes"] = self.clean_probes
        payload["window"] = [[at_s, ok] for at_s, ok in self._window]
        return payload

    def restore_state(self, payload: dict) -> None:
        """Restore a snapshot taken by :meth:`export_state`."""
        self.state = payload["state"]
        self.now_s = float(payload["now_s"])
        self.trips = int(payload["trips"])
        self.opened_at_s = payload.get("opened_at_s")
        self.clean_probes = int(payload.get("clean_probes", 0))
        self.successes = int(payload["successes"])
        self.failures = int(payload["failures"])
        self.fallbacks = int(payload["fallbacks"])
        self.probes = int(payload["probes"])
        self.probe_failures = int(payload["probe_failures"])
        self.repromotions = int(payload["repromotions"])
        self.covered_task_ids = list(payload.get("covered_task_ids", ()))
        self.transitions = [
            TransitionRecord.from_dict(t) for t in payload["transitions"]
        ]
        self._window = deque(
            (float(at_s), bool(ok)) for at_s, ok in payload["window"]
        )

    def __repr__(self) -> str:
        return (
            f"<DeviceHealth {self.device}:{self.key} {self.state} "
            f"trips={self.trips} t={self.now_s:.3g}s>"
        )


class HealthRegistry:
    """All breakers for one runtime, plus their observability.

    The engine reports every offload outcome here; the registry owns
    the breakers, emits ``breaker.transition`` spans, ``health.*``
    counters, and the per-breaker state gauge, and invokes the
    ``listener`` (the engine's policy-sync hook: install a revocable
    bytecode directive on OPEN, lift it on HALF_OPEN/CLOSED) for every
    transition.
    """

    def __init__(self, policy: "HealthPolicy | None" = None,
                 tracer=NULL_TRACER, listener=None):
        self.policy = policy or HealthPolicy()
        self.tracer = tracer
        self.metrics = getattr(tracer, "metrics", NULL_METRICS)
        # A service-scoped registry is shared by many concurrent
        # runtimes, each syncing its own substitution policy — so
        # transitions fan out to a *list* of listeners. The ``listener``
        # ctor argument is kept for the single-runtime case.
        self._listeners: list = []
        if listener is not None:
            self._listeners.append(listener)
        self._lock = threading.Lock()
        self._breakers: dict = {}   # (device, key) -> DeviceHealth

    # -- listeners ---------------------------------------------------------

    @property
    def listener(self):
        """The first registered listener (legacy single-runtime view)."""
        return self._listeners[0] if self._listeners else None

    @listener.setter
    def listener(self, fn) -> None:
        self._listeners = [] if fn is None else [fn]

    def add_listener(self, fn) -> None:
        """Subscribe ``fn(record, transition)`` to breaker transitions
        (idempotent). Runtimes sharing a service-scoped registry each
        register their policy-sync hook here."""
        with self._lock:
            if fn not in self._listeners:
                self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        """Unsubscribe a listener (no-op if absent) — called when a
        runtime sharing this registry is closed."""
        with self._lock:
            try:
                self._listeners.remove(fn)
            except ValueError:
                pass

    # -- breaker access ----------------------------------------------------

    def breaker(self, device: str, key: str,
                covered_task_ids=()) -> DeviceHealth:
        handle = (device, key)
        with self._lock:
            record = self._breakers.get(handle)
            if record is None:
                record = DeviceHealth(
                    device, key, self.policy,
                    covered_task_ids=covered_task_ids,
                )
                self._breakers[handle] = record
                self._gauge(record)
            elif covered_task_ids and not record.covered_task_ids:
                record.covered_task_ids = list(covered_task_ids)
            return record

    def state_of(self, device: str, key: str) -> "str | None":
        with self._lock:
            record = self._breakers.get((device, key))
            return record.state if record is not None else None

    def breakers(self) -> list:
        with self._lock:
            return list(self._breakers.values())

    def family_open(self, device: str) -> bool:
        """True when any breaker for ``device`` is currently OPEN —
        the service's degradation signal: don't lease slots of a
        family the fleet has quarantined; let the job run its spans
        through the shared breakers (bytecode fallback) instead."""
        with self._lock:
            return any(
                record.state == OPEN
                for (dev, _key), record in self._breakers.items()
                if dev == device
            )

    # -- outcome reports ---------------------------------------------------

    def decide(self, device: str, key: str, covered_task_ids=()):
        """Mediate one offload: returns ``RUN_DEVICE``,
        ``RUN_BYTECODE``, or ``RUN_PROBE``."""
        record = self.breaker(device, key, covered_task_ids)
        with self._lock:
            action, transition = record.decide()
        self._observe(record, transition)
        return action

    def on_success(self, device: str, key: str, sim_s: float) -> None:
        record = self.breaker(device, key)
        with self._lock:
            transition = record.record_success(sim_s)
        self.metrics.counters.add("health.success")
        self._observe(record, transition)

    def on_failure(self, device: str, key: str, sim_s: float,
                   error: str = "", covered_task_ids=()) -> None:
        record = self.breaker(device, key, covered_task_ids)
        with self._lock:
            transition = record.record_failure(sim_s, error)
        self.metrics.counters.add("health.failure")
        self.metrics.counters.add(f"health.failure[{device}]")
        self._observe(record, transition)

    def on_fallback(self, device: str, key: str, sim_s: float) -> None:
        record = self.breaker(device, key)
        with self._lock:
            record.record_fallback(sim_s)
        self.metrics.counters.add("health.fallback")
        self.metrics.counters.add(f"health.fallback[{device}]")

    def on_probe(self, device: str, key: str, ok: bool, sim_s: float,
                 reason: str = "") -> None:
        record = self.breaker(device, key)
        with self._lock:
            transition = record.record_probe(ok, sim_s, reason)
        counters = self.metrics.counters
        counters.add("health.probe")
        counters.add(
            "health.probe.clean" if ok else "health.probe.failed"
        )
        self._observe(record, transition)

    # -- observability -----------------------------------------------------

    def _gauge(self, record: DeviceHealth) -> None:
        self.metrics.gauge(
            f"breaker.state[{record.device}:{record.key}]"
        ).set(STATE_CODES[record.state])

    def _observe(self, record: DeviceHealth, transition) -> None:
        if transition is None:
            return
        self._gauge(record)
        counters = self.metrics.counters
        counters.add(f"health.transition[{transition.to_state}]")
        if transition.to_state == CLOSED:
            counters.add("health.repromotion")
            counters.add(f"health.repromotion[{record.device}]")
        with self.tracer.span(
            "breaker.transition",
            key=transition.key,
            device=transition.device,
            from_state=transition.from_state,
            to_state=transition.to_state,
            at_s=transition.at_s,
            reason=transition.reason,
            trips=transition.trips,
            cooldown_s=transition.cooldown_s,
        ):
            pass
        for listener in list(self._listeners):
            listener(record, transition)

    # -- checkpoint state (docs/RECOVERY.md) -------------------------------

    def export_state(self) -> list:
        """Snapshot every breaker for a checkpoint frame, in sorted
        (device, key) order so the frame bytes are deterministic."""
        with self._lock:
            records = sorted(
                self._breakers.values(),
                key=lambda r: (r.device, r.key),
            )
            return [record.export_state() for record in records]

    def restore_state(self, rows: list) -> list:
        """Restore breakers snapshotted by :meth:`export_state`,
        creating them as needed; returns the restored records so the
        caller can re-pin OPEN spans into its substitution policy."""
        restored = []
        for row in rows:
            record = self.breaker(
                row["device"], row["key"],
                covered_task_ids=row.get("covered_task_ids", ()),
            )
            with self._lock:
                record.restore_state(row)
                self._gauge(record)
            restored.append(record)
        return restored

    def discard(self, device: str, key: str) -> None:
        """Drop one breaker (no-op if absent) — used when a checkpoint
        resume is abandoned and its restored state must not leak into
        the from-scratch re-run."""
        with self._lock:
            self._breakers.pop((device, key), None)

    # -- report ------------------------------------------------------------

    @property
    def transitions(self) -> list:
        """All transitions across breakers, in per-breaker order."""
        return [
            t for record in self.breakers() for t in record.transitions
        ]

    def to_report(self, app: str = "", entry: str = "",
                  scheduler: str = "") -> dict:
        """The machine-readable health report (``repro.health/1``)."""
        rows = sorted(
            (record.to_dict() for record in self.breakers()),
            key=lambda r: (r["device"], r["key"]),
        )
        policy = self.policy
        totals = {
            "breakers": len(rows),
            "open": sum(1 for r in rows if r["state"] == OPEN),
            "half_open": sum(1 for r in rows if r["state"] == HALF_OPEN),
            "closed": sum(1 for r in rows if r["state"] == CLOSED),
            "transitions": sum(len(r["transitions"]) for r in rows),
            "trips": sum(r["trips"] for r in rows),
            "probes": sum(r["probes"] for r in rows),
            "repromotions": sum(r["repromotions"] for r in rows),
        }
        return {
            "schema": HEALTH_SCHEMA,
            "app": app,
            "entry": entry,
            "scheduler": scheduler,
            "policy": {
                "window": policy.window,
                "window_s": policy.window_s,
                "failure_threshold": policy.failure_threshold,
                "cooldown_s": policy.cooldown_s,
                "probe_batches": policy.probe_batches,
                "quarantine_multiplier": policy.quarantine_multiplier,
                "max_cooldown_s": policy.max_cooldown_s,
            },
            "breakers": rows,
            "totals": totals,
        }

    def __repr__(self) -> str:
        return f"<HealthRegistry {len(self._breakers)} breakers>"


#: Keys every repro.health/1 report must carry.
_REPORT_KEYS = ("schema", "policy", "breakers", "totals")
_BREAKER_KEYS = (
    "key", "device", "state", "trips", "now_s", "successes", "failures",
    "fallbacks", "probes", "probe_failures", "repromotions",
    "covered_task_ids", "transitions",
)
_TRANSITION_KEYS = ("key", "device", "from", "to", "at_s", "reason", "trips")
_STATES = (CLOSED, OPEN, HALF_OPEN)


def validate_health_report(payload) -> list:
    """Schema check for a ``repro.health/1`` report; returns problem
    strings (empty = valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != HEALTH_SCHEMA:
        problems.append(
            f"schema must be {HEALTH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    for key in _REPORT_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    breakers = payload.get("breakers", [])
    if not isinstance(breakers, list):
        problems.append("breakers must be a list")
        breakers = []
    for index, row in enumerate(breakers):
        where = f"breakers[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _BREAKER_KEYS:
            if key not in row:
                problems.append(f"{where} missing key {key!r}")
        if row.get("state") not in _STATES:
            problems.append(
                f"{where} has unknown state {row.get('state')!r}"
            )
        previous_at = None
        for t_index, transition in enumerate(row.get("transitions", [])):
            t_where = f"{where}.transitions[{t_index}]"
            if not isinstance(transition, dict):
                problems.append(f"{t_where} must be an object")
                continue
            for key in _TRANSITION_KEYS:
                if key not in transition:
                    problems.append(f"{t_where} missing key {key!r}")
            for end in ("from", "to"):
                if transition.get(end) not in _STATES:
                    problems.append(
                        f"{t_where} has unknown state "
                        f"{transition.get(end)!r}"
                    )
            at_s = transition.get("at_s")
            if isinstance(at_s, (int, float)):
                if previous_at is not None and at_s < previous_at:
                    problems.append(
                        f"{t_where} goes backwards in simulated time"
                    )
                previous_at = at_s
    totals = payload.get("totals")
    if isinstance(totals, dict):
        if totals.get("breakers") != len(breakers):
            problems.append(
                "totals.breakers disagrees with the breakers list"
            )
    elif "totals" in payload:
        problems.append("totals must be an object")
    return problems


def validate_health_file(path: str) -> dict:
    """Load and validate a health report; raises on problems."""
    import json

    with open(path) as f:
        payload = json.load(f)
    problems = validate_health_report(payload)
    if problems:
        raise ConfigurationError(
            f"health report {path} is invalid: " + "; ".join(problems)
        )
    return payload


def render_health_report(report: dict) -> str:
    """The human-readable form of a health report (CLI default)."""
    lines = []
    header = f"device health — {report.get('app') or '?'}"
    if report.get("entry"):
        header += f" ({report['entry']}"
        if report.get("scheduler"):
            header += f", {report['scheduler']} scheduler"
        header += ")"
    lines.append(header)
    policy = report.get("policy", {})
    cooldown = policy.get("cooldown_s")
    lines.append(
        "policy: window={w} failure_threshold={f} cooldown={c} "
        "probe_batches={p} quarantine x{q} (cap {m})".format(
            w=policy.get("window"),
            f=policy.get("failure_threshold"),
            c="off" if cooldown is None else f"{cooldown * 1e6:.6g}us",
            p=policy.get("probe_batches"),
            q=policy.get("quarantine_multiplier"),
            m=f"{policy.get('max_cooldown_s', 0) * 1e6:.6g}us",
        )
    )
    lines.append("")
    breakers = report.get("breakers", [])
    if not breakers:
        lines.append("(no device spans executed)")
    for row in breakers:
        lines.append(
            f"{row['device']}:{row['key']}  [{row['state'].upper()}]  "
            f"trips={row['trips']} ok={row['successes']} "
            f"fail={row['failures']} fallback={row['fallbacks']} "
            f"probes={row['probes']} "
            f"repromotions={row['repromotions']}"
        )
        for transition in row.get("transitions", []):
            extra = ""
            if transition.get("cooldown_s") is not None:
                extra = f" quarantine {transition['cooldown_s'] * 1e6:.6g}us"
            lines.append(
                f"    {transition['at_s'] * 1e6:>12.3f}us  "
                f"{transition['from']} -> {transition['to']}  "
                f"({transition['reason']}){extra}"
            )
    totals = report.get("totals", {})
    if totals:
        lines.append("")
        lines.append(
            "totals: {b} breaker(s), {t} transition(s), {tr} trip(s), "
            "{p} probe(s), {r} re-promotion(s)".format(
                b=totals.get("breakers", 0),
                t=totals.get("transitions", 0),
                tr=totals.get("trips", 0),
                p=totals.get("probes", 0),
                r=totals.get("repromotions", 0),
            )
        )
    return "\n".join(lines)
