"""The host/device marshaling boundary (Figure 3).

"The communication steps between the host JVM and the native device
entail (1) serializing a Lime value to a byte array, (2) crossing the
JNI boundary, and (3) converting this byte array into a C-style value.
The return path is a mirror image." (Section 4.3)

The boundary performs the real serialization through the wire format of
:mod:`repro.values.marshal` (so every offloaded value genuinely round
trips through bytes) and models the cost of each step; the physical
link (PCIe/UART) is charged separately via
:mod:`repro.devices.interconnect`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.interconnect import PCIE_GEN2_X16, Link
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.faults import NULL_INJECTOR
from repro.runtime.timing import TransferRecord
from repro.values import (
    batch_count,
    deserialize,
    deserialize_batch,
    kind_of,
    serialize,
    serialize_batch,
    serializer_for,
)


@dataclass(frozen=True)
class BoundaryCosts:
    """Per-step cost parameters.

    Serialization walks the heap value (slow, object-at-a-time on the
    JVM side); the JNI crossing is a fixed call overhead plus a bulk
    copy; the native conversion is a dense unpack (fast)."""

    serialize_fixed_s: float = 0.5e-6
    serialize_per_byte_s: float = 0.25e-9    # ~4 GB/s dense array walk
    crossing_fixed_s: float = 2.0e-6         # JNI call overhead
    crossing_per_byte_s: float = 0.15e-9     # GetPrimitiveArrayCritical copy
    convert_fixed_s: float = 0.2e-6
    convert_per_byte_s: float = 0.10e-9      # dense native unpack


class MarshalingBoundary:
    """One host<->device boundary over a given physical link."""

    def __init__(
        self,
        link: Link = PCIE_GEN2_X16,
        costs: BoundaryCosts | None = None,
        tracer=NULL_TRACER,
        injector=NULL_INJECTOR,
        name: str = "",
    ):
        self.link = link
        self.costs = costs or BoundaryCosts()
        self.tracer = tracer
        self.metrics = getattr(tracer, "metrics", NULL_METRICS)
        # Fault-injection hook (docs/RESILIENCE.md): marshaling fault
        # specs target the boundary by name ('gpu'/'fpga') or link.
        self.injector = injector or NULL_INJECTOR
        self.name = name or link.name
        self.log: list[TransferRecord] = []

    # ------------------------------------------------------------------

    def _record(self, direction: str, num_bytes: int) -> TransferRecord:
        c = self.costs
        record = TransferRecord(
            direction=direction,
            num_bytes=num_bytes,
            serialize_s=c.serialize_fixed_s + num_bytes * c.serialize_per_byte_s,
            crossing_s=c.crossing_fixed_s + num_bytes * c.crossing_per_byte_s,
            convert_s=c.convert_fixed_s + num_bytes * c.convert_per_byte_s,
            link_s=self.link.transfer_time(num_bytes),
            link_name=self.link.name,
        )
        self.log.append(record)
        # Latency/size distributions come for free at this seam: one
        # observation per crossing, in deterministic simulated time.
        # The uniform crossing counter (every path funnels through
        # here) is what the fusion suites assert shrinks on fused runs.
        self.tracer.counters.add("marshal.crossings")
        self.tracer.counters.add(f"marshal.crossings[{self.name}]")
        self.metrics.histogram("marshal.crossing_us").observe(
            record.total_s * 1e6
        )
        self.metrics.histogram("marshal.bytes_per_crossing").observe(
            num_bytes
        )
        return record

    def to_device(self, value) -> "tuple[bytes, TransferRecord]":
        """Serialize a Lime value for the device; returns the wire
        bytes and the timing record. The runtime finds the custom
        serializer based on the value's data type (Section 4.3)."""
        self.injector.check(
            "marshal.to_device", [self.name, self.link.name]
        )
        with self.tracer.span(
            "run.marshal.to_device", link=self.link.name
        ) as span:
            serializer = serializer_for(kind_of(value))
            data = serializer.serialize(value)
            record = self._record("to-device", len(data))
            span.set(
                bytes=record.num_bytes,
                serialize_s=record.serialize_s,
                link_s=record.link_s,
            )
        self.tracer.counters.add(
            f"marshal.bytes[{self.link.name}]", record.num_bytes
        )
        return data, record

    def from_device(self, data: bytes) -> "tuple[object, TransferRecord]":
        """Deserialize device results back into a heap value."""
        self.injector.check(
            "marshal.from_device", [self.name, self.link.name]
        )
        with self.tracer.span(
            "run.marshal.from_device", link=self.link.name
        ) as span:
            value = deserialize(data)
            record = self._record("from-device", len(data))
            span.set(
                bytes=record.num_bytes,
                serialize_s=record.serialize_s,
                link_s=record.link_s,
            )
        self.tracer.counters.add(
            f"marshal.bytes[{self.link.name}]", record.num_bytes
        )
        return value, record

    def round_trip(self, value) -> "tuple[object, list]":
        """Serialize out and back (identity at the device): used by
        tests and by the Figure 3 benchmark."""
        data, out_record = self.to_device(value)
        result, back_record = self.from_device(data)
        return result, [out_record, back_record]

    # ------------------------------------------------------------------
    # Batched fast path: one crossing per batch, not per value
    # ------------------------------------------------------------------

    def to_device_batch(self, values, kind=None) -> "tuple[bytes, TransferRecord]":
        """Serialize N homogeneous values into one 0x09 frame and
        charge a single crossing for the whole batch — the amortized
        fast path of docs/PERFORMANCE.md. Fault-injection call indices
        stay element-accurate (``count=N``), so plans written against
        the per-element path fire at the same logical points."""
        values = list(values)
        self.injector.check(
            "marshal.to_device", [self.name, self.link.name],
            count=len(values),
        )
        with self.tracer.span(
            "run.marshal.batch.to_device",
            link=self.link.name,
            batch=len(values),
        ) as span:
            data = serialize_batch(values, kind=kind)
            record = self._record("to-device", len(data))
            span.set(
                bytes=record.num_bytes,
                serialize_s=record.serialize_s,
                link_s=record.link_s,
            )
        self._count_batch(len(values), record.num_bytes)
        return data, record

    def from_device_batch(self, data: bytes) -> "tuple[list, TransferRecord]":
        """Deserialize a device-side 0x09 frame back into its values,
        charging one crossing for the whole batch."""
        self.injector.check(
            "marshal.from_device", [self.name, self.link.name],
            count=batch_count(data),
        )
        with self.tracer.span(
            "run.marshal.batch.from_device", link=self.link.name
        ) as span:
            values = deserialize_batch(data)
            record = self._record("from-device", len(data))
            span.set(
                batch=len(values),
                bytes=record.num_bytes,
                serialize_s=record.serialize_s,
                link_s=record.link_s,
            )
        self._count_batch(len(values), record.num_bytes)
        return values, record

    def transfer_batch(self, values, kind=None) -> "tuple[list, list]":
        """Round-trip a batch out and back under batched charging:
        one fixed crossing each way regardless of N. Returns the
        values as reconstituted on the host plus both records."""
        data, out_record = self.to_device_batch(values, kind=kind)
        result, back_record = self.from_device_batch(data)
        return result, [out_record, back_record]

    def _count_batch(self, n_values: int, num_bytes: int) -> None:
        counters = self.tracer.counters
        counters.add(f"marshal.bytes[{self.link.name}]", num_bytes)
        counters.add("marshal.batch.crossings")
        counters.add("marshal.batch.values", n_values)
        self.metrics.histogram("marshal.batch.size").observe(n_values)

    @property
    def total_seconds(self) -> float:
        return sum(r.total_s for r in self.log)

    @property
    def total_bytes(self) -> int:
        return sum(r.num_bytes for r in self.log)
