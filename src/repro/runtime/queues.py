"""FIFO connections between runtime tasks.

"A connect operation '=>' creates a FIFO queue between tasks"
(Section 4.1). The queue is bounded so upstream tasks block when a
downstream stage is slow, and carries an end-of-stream sentinel so
graph termination propagates: "the graph execution terminates when the
last bit produced by the source is consumed by the sink."

When a metrics registry is attached (profiling runs), every ``put``
samples the queue depth into a per-edge histogram and both sides
accumulate their blocking time (``producer_wait_s`` /
``consumer_wait_s``), which the schedulers surface as explicit
``queue_wait_*`` span attributes and the profiler turns into
utilization and queue-occupancy statistics. Without a registry the
hot path is untouched.
"""

from __future__ import annotations

import queue as _queue
import time
from typing import Optional

from repro.errors import RuntimeGraphError
from repro.obs.metrics import DEPTH_BUCKETS


class EndOfStream:
    """Sentinel flowing after the last value."""

    _instance: "Optional[EndOfStream]" = None

    def __new__(cls) -> "EndOfStream":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<end-of-stream>"


END_OF_STREAM = EndOfStream()


class Connection:
    """A bounded FIFO between a producer task and a consumer task."""

    def __init__(self, capacity: int = 64, metrics=None, name: str = ""):
        if capacity < 1:
            raise RuntimeGraphError("connection capacity must be >= 1")
        self._queue: _queue.Queue = _queue.Queue(maxsize=capacity)
        self.capacity = capacity
        self.name = name
        self.producer = None
        self.consumer = None
        self.items_transferred = 0
        # Each wait accumulator is written only by its owning side
        # (producer thread / consumer thread), so no lock is needed.
        self.producer_wait_s = 0.0
        self.consumer_wait_s = 0.0
        if metrics is not None and getattr(metrics, "enabled", False):
            self._metrics = metrics
            label = name or "anonymous"
            self._depth_hist = metrics.histogram(
                f"queue.depth[{label}]", buckets=DEPTH_BUCKETS
            )
            self._counters = metrics.counters
            self._label = label
        else:
            self._metrics = None

    def put(self, item) -> None:
        if self._metrics is None:
            self._queue.put(item)
        else:
            self._depth_hist.observe(self._queue.qsize())
            start = time.perf_counter()
            self._queue.put(item)
            self.producer_wait_s += time.perf_counter() - start
        if item is not END_OF_STREAM:
            self.items_transferred += 1
        elif self._metrics is not None:
            # End of stream: the producer is done — flush its total
            # blocking time so reports can read it from counters even
            # when no stage span captured it.
            self._counters.add(
                f"queue.producer_wait_us[{self._label}]",
                self.producer_wait_s * 1e6,
            )

    def get(self):
        if self._metrics is None:
            return self._queue.get()
        start = time.perf_counter()
        item = self._queue.get()
        self.consumer_wait_s += time.perf_counter() - start
        if item is END_OF_STREAM:
            self._counters.add(
                f"queue.consumer_wait_us[{self._label}]",
                self.consumer_wait_s * 1e6,
            )
        return item

    def get_batch(self, count: int) -> "list":
        """Blockingly read ``count`` items; a premature end-of-stream
        with a partially filled batch is an error (the upstream closed
        mid-firing)."""
        batch = []
        for _ in range(count):
            item = self.get()
            if item is END_OF_STREAM:
                if batch:
                    raise RuntimeGraphError(
                        "stream ended mid-firing: upstream produced "
                        f"{len(batch)} of {count} required items"
                    )
                return [END_OF_STREAM]
            batch.append(item)
        return batch

    def get_up_to(self, count: int) -> "tuple[list, bool]":
        """Blockingly drain up to ``count`` items for one batched
        dispatch; returns ``(items, eos)``. Unlike :meth:`get_batch`,
        a premature end-of-stream is not an error — the partial batch
        is returned with ``eos=True`` so a device stage can marshal
        the tail of the stream as one final (smaller) batch."""
        if count < 1:
            raise RuntimeGraphError("batch draining requires count >= 1")
        batch: list = []
        while len(batch) < count:
            item = self.get()
            if item is END_OF_STREAM:
                return batch, True
            batch.append(item)
        return batch, False

    def close(self) -> None:
        self.put(END_OF_STREAM)

    def drain(self) -> list:
        """Non-blocking read of everything currently queued (test aid)."""
        out = []
        while True:
            try:
                out.append(self._queue.get_nowait())
            except _queue.Empty:
                return out

    def drain_bounded(self, timeout_s: float = 0.0) -> list:
        """Bounded-wait shutdown drain: empty the queue and wake both
        sides so a cancelled pipeline can unwind without deadlocking.

        A producer blocked in :meth:`put` (full queue) is unblocked by
        the drain itself; a consumer blocked in :meth:`get` (empty
        queue) is woken by the ``END_OF_STREAM`` this pushes back in.
        The sentinel is pushed with ``put_nowait`` so the drain itself
        can never block — if the queue refilled to capacity in the
        race, the producer that filled it is about to observe the
        cancellation anyway, and the next drain pass clears it.

        Returns the abandoned (non-sentinel) items so callers can
        count discarded work. ``timeout_s`` bounds an optional settle
        wait for a last straggler ``put`` to land before the final
        sweep.
        """
        abandoned: list = []
        deadline = time.perf_counter() + max(0.0, timeout_s)
        while True:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                if time.perf_counter() >= deadline:
                    break
                time.sleep(0.001)
                continue
            if item is not END_OF_STREAM:
                abandoned.append(item)
        try:
            self._queue.put_nowait(END_OF_STREAM)
        except _queue.Full:
            pass
        return abandoned

    @property
    def approximate_depth(self) -> int:
        return self._queue.qsize()
