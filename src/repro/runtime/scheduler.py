"""Task-graph schedulers.

The paper's runtime "creates a thread for each task. These threads will
block on the incoming connections until enough data is available"
(Section 4.1) — that is :class:`ThreadedScheduler`. The deterministic
:class:`SequentialScheduler` runs the pipeline stage-by-stage over the
whole batch; for linear pipelines the two are observationally
equivalent, and the sequential one is reproducible to the cycle, which
the benchmark harness prefers.

Both schedulers participate in the resilience story (see
``docs/RESILIENCE.md``): a stage failure is surfaced from ``join()``
with the failing task/device attached, and the threaded scheduler
optionally runs a per-stage watchdog that turns a stalled device stage
into a :class:`~repro.errors.DeviceTimeoutError` instead of a hang.
"""

from __future__ import annotations

import threading
import time

from repro.errors import DeviceTimeoutError, RuntimeGraphError
from repro.runtime.graph import Pipeline
from repro.runtime.tasks import ExecutionContext


def _attach_stage_context(exc: BaseException, task, scheduler: str) -> None:
    """Annotate a stage failure with the task/device it came from,
    preserving the original exception type for callers that match on
    it. Idempotent across repeated ``join()`` calls."""
    note = (
        f"in stage {task.task_id!r} on device {task.device!r} "
        f"({scheduler} scheduler)"
    )
    notes = getattr(exc, "__notes__", [])
    if note not in notes:
        exc.add_note(note)


class SequentialScheduler:
    """Runs each stage to completion over the whole stream."""

    name = "sequential"

    def start(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        # Sequential execution cannot be detached; run to completion.
        self.run_to_completion(pipeline, ctx)

    def run_to_completion(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        pipeline.validate()
        tracer = ctx.tracer
        items: list = []
        for task in pipeline.tasks:
            try:
                with tracer.span(
                    "run.graph.stage",
                    task_id=task.task_id,
                    device=task.device,
                    task_kind=task.kind,
                    scheduler=self.name,
                    in_items=len(items),
                ) as span:
                    batch_size = getattr(task, "batch_size", None)
                    if batch_size is not None:
                        # Device stages dispatch in marshaling batches
                        # (RuntimeConfig.batch_size); surface the knob
                        # so a trace explains the crossing count.
                        span.set(batch_size=batch_size)
                    covered = getattr(task, "covered_task_ids", None)
                    if covered is not None:
                        # A multi-stage device task is a fused span:
                        # one crossing per batch for the whole run
                        # (docs/FUSION.md).
                        span.set(
                            fused=len(covered) > 1,
                            fused_span=len(covered),
                        )
                    items = task.process_batch(items, ctx)
                    # No FIFOs in sequential mode: the explicit zero
                    # keeps profile reports uniform across schedulers.
                    span.set(out_items=len(items), queue_wait_us=0.0)
                    source = ctx.artifact_source
                    if source is not None:
                        # Warm runs execute cache-loaded artifacts; the
                        # stamp lets a trace prove no codegen ran.
                        span.set(artifact_source=source)
                    breaker = ctx.health_state(task)
                    if breaker is not None:
                        # The breaker's state after the stage drained:
                        # traces show whether a span finished demoted,
                        # on probation, or re-promoted.
                        span.set(breaker_state=breaker)
            except BaseException as exc:
                # A mid-stage failure must not leave the pipeline
                # looking "never started": record it so join() surfaces
                # the original error instead of a misleading one.
                pipeline.failed = True
                pipeline.failure = exc
                pipeline.started = True
                _attach_stage_context(exc, task, self.name)
                raise
            # Sequential execution is quiescent between stages — the
            # one scheduler that can persist crash-recovery checkpoint
            # frames mid-graph (docs/RECOVERY.md).
            quiesce = getattr(ctx.engine, "checkpoint_quiesce", None)
            if quiesce is not None:
                quiesce(inline=True)
        pipeline.started = True

    def join(self, pipeline: Pipeline) -> None:
        if pipeline.failed and pipeline.failure is not None:
            raise pipeline.failure
        if not pipeline.started:
            raise RuntimeGraphError(
                f"graph was never started: {pipeline.describe()}"
            )

    def shutdown(self, pipeline: Pipeline, timeout_s: float = 0.5) -> bool:
        """Sequential runs hold no FIFOs or threads; a cancelled run
        has already unwound by the time anyone can call this."""
        return True


class ThreadedScheduler:
    """One thread per task, blocking FIFO connections in between.

    ``stage_timeout_s`` arms a per-stage watchdog: ``join()`` waits at
    most that long for each stage thread (cumulatively from the point
    the previous stage finished) and raises
    :class:`~repro.errors.DeviceTimeoutError` naming the stalled stage.
    Worker threads are daemonic so a genuinely hung device simulator
    cannot wedge interpreter shutdown.
    """

    name = "threaded"

    def __init__(self, queue_capacity: int = 64,
                 stage_timeout_s: "float | None" = None,
                 job_id: "str | None" = None,
                 tenant: "str | None" = None):
        self.queue_capacity = queue_capacity
        self.stage_timeout_s = stage_timeout_s
        # Service-job attribution: stamped onto watchdog timeouts so a
        # multi-tenant error report can name whose stage stalled.
        self.job_id = job_id
        self.tenant = tenant

    def start(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        pipeline.validate()
        pipeline.wire(
            self.queue_capacity, metrics=getattr(ctx.tracer, "metrics", None)
        )
        errors: list = []  # [(task, exception)]
        tracer = ctx.tracer
        # Stage spans run on worker threads; capture the graph span on
        # the scheduling thread so they nest under it explicitly.
        parent = tracer.current()

        def runner(task):
            try:
                with tracer.span(
                    "run.graph.stage",
                    parent=parent,
                    task_id=task.task_id,
                    device=task.device,
                    task_kind=task.kind,
                    scheduler=self.name,
                    queue_capacity=self.queue_capacity,
                ) as span:
                    batch_size = getattr(task, "batch_size", None)
                    if batch_size is not None:
                        span.set(batch_size=batch_size)
                    covered = getattr(task, "covered_task_ids", None)
                    if covered is not None:
                        span.set(
                            fused=len(covered) > 1,
                            fused_span=len(covered),
                        )
                    task.run(ctx)
                    stage = ctx.graph_run.stages.get(task.task_id)
                    if stage is not None:
                        span.set(items=stage.items, busy_s=stage.busy_s)
                    if task.output_conn is not None:
                        span.set(
                            out_items=task.output_conn.items_transferred,
                            queue_depth=task.output_conn.approximate_depth,
                        )
                    # Queue-wait is an explicit attribute (not folded
                    # into the span duration) so profile reports can
                    # separate blocking on FIFOs from actual work.
                    wait_in = (
                        task.input_conn.consumer_wait_s
                        if task.input_conn is not None
                        else 0.0
                    )
                    wait_out = (
                        task.output_conn.producer_wait_s
                        if task.output_conn is not None
                        else 0.0
                    )
                    span.set(
                        queue_wait_in_us=wait_in * 1e6,
                        queue_wait_out_us=wait_out * 1e6,
                        queue_wait_us=(wait_in + wait_out) * 1e6,
                    )
                    source = ctx.artifact_source
                    if source is not None:
                        span.set(artifact_source=source)
                    breaker = ctx.health_state(task)
                    if breaker is not None:
                        span.set(breaker_state=breaker)
            except BaseException as exc:  # propagate to finish()
                errors.append((task, exc))
                # Unblock downstream by closing our output if any.
                if task.output_conn is not None:
                    task.output_conn.close()

        pipeline.threads = [
            threading.Thread(
                target=runner,
                args=(task,),
                name=f"lime-{task.task_id}",
                daemon=True,
            )
            for task in pipeline.tasks
        ]
        pipeline._errors = errors
        for thread in pipeline.threads:
            thread.start()
        pipeline.started = True

    def run_to_completion(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        self.start(pipeline, ctx)
        self.join(pipeline)

    # How long each join slice blocks before re-checking for recorded
    # stage errors. Small enough that a failed stage is noticed (and
    # its wedged FIFOs drained) promptly; large enough not to spin.
    _JOIN_SLICE_S = 0.02

    def join(self, pipeline: Pipeline) -> None:
        if not pipeline.started:
            raise RuntimeGraphError(
                f"graph was never started: {pipeline.describe()}"
            )
        errors = pipeline._errors
        for thread, task in zip(pipeline.threads, pipeline.tasks):
            if errors:
                # A stage already failed (or the job was cancelled);
                # stop waiting for orderly completion and drain below.
                break
            deadline = (
                time.perf_counter() + self.stage_timeout_s
                if self.stage_timeout_s is not None
                else None
            )
            while thread.is_alive() and not errors:
                if deadline is not None and time.perf_counter() >= deadline:
                    # The stage watchdog fired: a stage is stalled
                    # (hung kernel, wedged queue). Threads are
                    # daemonic, so drain what we can and surface the
                    # stall.
                    pipeline.failed = True
                    error = DeviceTimeoutError(
                        f"stage {task.task_id!r} on device "
                        f"{task.device!r} exceeded the "
                        f"{self.stage_timeout_s}s watchdog timeout",
                        task_id=task.task_id,
                        device=task.device,
                        job_id=self.job_id,
                        tenant=self.tenant,
                    )
                    pipeline.failure = error
                    self.shutdown(pipeline)
                    raise error
                thread.join(self._JOIN_SLICE_S)
        if errors:
            # Drain FIFOs and join the surviving workers before
            # surfacing the failure: a blocked producer (full queue
            # into a dead stage) must not wedge this join forever.
            self.shutdown(pipeline)
            task, exc = errors[0]
            pipeline.failed = True
            pipeline.failure = exc
            _attach_stage_context(exc, task, self.name)
            raise exc

    def shutdown(self, pipeline: Pipeline, timeout_s: float = 0.5) -> bool:
        """Bounded-wait teardown of a failed or cancelled run.

        Repeatedly drains every FIFO (unblocking producers stuck in
        ``put``/``close`` on full queues and waking consumers stuck in
        ``get`` via the pushed-back end-of-stream) and joins worker
        threads in short slices, until all threads are dead or
        ``timeout_s`` expires. Returns True when every worker joined;
        False means a genuinely hung (daemonic) thread was abandoned.
        """
        deadline = time.perf_counter() + max(0.0, timeout_s)
        while True:
            alive = [t for t in pipeline.threads if t.is_alive()]
            if not alive:
                return True
            for conn in pipeline.connections():
                conn.drain_bounded(0.0)
            alive[0].join(self._JOIN_SLICE_S)
            if time.perf_counter() >= deadline:
                # One last sweep so nothing stays blocked on a FIFO
                # even if we are about to abandon it.
                for conn in pipeline.connections():
                    conn.drain_bounded(0.0)
                return not any(t.is_alive() for t in pipeline.threads)
