"""Task-graph schedulers.

The paper's runtime "creates a thread for each task. These threads will
block on the incoming connections until enough data is available"
(Section 4.1) — that is :class:`ThreadedScheduler`. The deterministic
:class:`SequentialScheduler` runs the pipeline stage-by-stage over the
whole batch; for linear pipelines the two are observationally
equivalent, and the sequential one is reproducible to the cycle, which
the benchmark harness prefers.
"""

from __future__ import annotations

import threading

from repro.errors import RuntimeGraphError
from repro.runtime.graph import Pipeline
from repro.runtime.tasks import ExecutionContext


class SequentialScheduler:
    """Runs each stage to completion over the whole stream."""

    name = "sequential"

    def start(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        # Sequential execution cannot be detached; run to completion.
        self.run_to_completion(pipeline, ctx)

    def run_to_completion(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        pipeline.validate()
        tracer = ctx.tracer
        items: list = []
        for task in pipeline.tasks:
            with tracer.span(
                "run.graph.stage",
                task_id=task.task_id,
                device=task.device,
                task_kind=task.kind,
                scheduler=self.name,
                in_items=len(items),
            ) as span:
                items = task.process_batch(items, ctx)
                span.set(out_items=len(items))
        pipeline.started = True

    def join(self, pipeline: Pipeline) -> None:
        if not pipeline.started:
            raise RuntimeGraphError("graph was never started")


class ThreadedScheduler:
    """One thread per task, blocking FIFO connections in between."""

    name = "threaded"

    def __init__(self, queue_capacity: int = 64):
        self.queue_capacity = queue_capacity

    def start(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        pipeline.validate()
        pipeline.wire(self.queue_capacity)
        errors: list = []
        tracer = ctx.tracer
        # Stage spans run on worker threads; capture the graph span on
        # the scheduling thread so they nest under it explicitly.
        parent = tracer.current()

        def runner(task):
            try:
                with tracer.span(
                    "run.graph.stage",
                    parent=parent,
                    task_id=task.task_id,
                    device=task.device,
                    task_kind=task.kind,
                    scheduler=self.name,
                    queue_capacity=self.queue_capacity,
                ) as span:
                    task.run(ctx)
                    stage = ctx.graph_run.stages.get(task.task_id)
                    if stage is not None:
                        span.set(items=stage.items, busy_s=stage.busy_s)
                    if task.output_conn is not None:
                        span.set(
                            out_items=task.output_conn.items_transferred,
                            queue_depth=task.output_conn.approximate_depth,
                        )
            except BaseException as exc:  # propagate to finish()
                errors.append(exc)
                # Unblock downstream by closing our output if any.
                if task.output_conn is not None:
                    task.output_conn.close()

        pipeline.threads = [
            threading.Thread(
                target=runner, args=(task,), name=f"lime-{task.task_id}"
            )
            for task in pipeline.tasks
        ]
        pipeline._errors = errors
        for thread in pipeline.threads:
            thread.start()
        pipeline.started = True

    def run_to_completion(self, pipeline: Pipeline, ctx: ExecutionContext) -> None:
        self.start(pipeline, ctx)
        self.join(pipeline)

    def join(self, pipeline: Pipeline) -> None:
        if not pipeline.started:
            raise RuntimeGraphError("graph was never started")
        for thread in pipeline.threads:
            thread.join()
        errors = getattr(pipeline, "_errors", [])
        if errors:
            raise errors[0]
