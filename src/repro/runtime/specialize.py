"""Runtime kernel specialization (docs/FUSION.md).

The TornadoVM-lineage move: when a data-parallel kernel keeps seeing
the *same* stable operands (broadcast arrays — convolution taps, the
matrices of a matmul, cluster centroids), re-JIT a variant with those
operands treated as device-resident constants. The guard is a content
digest of the stable operands; every dispatch re-checks it, a hit
skips re-marshaling the guarded arrays, and a mismatch demotes back to
the generic kernel in one step.

Correctness is by construction: the specialized variant shares the
generic kernel's executable payload, so outputs are bit-identical —
only the modeled marshaling/launch costs change. The variant is
content-addressed in the PR 6 artifact cache under backend id
``specialize`` (:meth:`CompilerSession.compile_specialized`), so a
long-lived service observing the same stable operands across jobs
warm-loads the variant instead of re-specializing.

State machine per generic kernel::

    observing --(same guard for observe_batches)--> compile --> hit
        ^                                                        |
        +----------------- guard mismatch (demote) --------------+

``specialize.*`` counters and the ``compile.specialize`` span feed the
PR 4 profiler.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER
from repro.values import ValueArray, serialize


@dataclass(frozen=True)
class SpecializationPolicy:
    """Runtime specialization knobs (``RuntimeConfig.specialize``).

    Disabled by default: specialization changes modeled timing (that is
    its purpose), so it is strictly opt-in — the differential suites
    pin down that enabling it never changes *values*.
    """

    enabled: bool = False
    #: Consecutive batches a guard must stay stable before the
    #: specialized variant is compiled.
    observe_batches: int = 3

    def __post_init__(self):
        self.validate()

    def validate(self) -> "SpecializationPolicy":
        if self.observe_batches < 1:
            raise ConfigurationError(
                f"specialize.observe_batches must be positive, "
                f"got {self.observe_batches}"
            )
        return self


def guard_digest(args: list, broadcast) -> "tuple[str, tuple]":
    """The specialization guard for one dispatch: a content digest of
    every broadcast :class:`ValueArray` operand (the candidates for
    device residency), plus their argument positions. Returns
    ``("", ())`` when nothing is stable enough to guard on."""
    hasher = hashlib.sha256()
    positions = []
    for pos, (arg, is_broadcast) in enumerate(zip(args, broadcast)):
        if not (is_broadcast and isinstance(arg, ValueArray)):
            continue
        positions.append(pos)
        hasher.update(b"%d:" % pos)
        hasher.update(serialize(arg))
    if not positions:
        return "", ()
    return hasher.hexdigest(), tuple(positions)


class _KernelState:
    __slots__ = ("guard", "streak", "variants")

    def __init__(self):
        self.guard: "str | None" = None
        self.streak = 0
        self.variants: dict = {}   # guard -> specialized Artifact


class KernelSpecializer:
    """Guarded specialization over the runtime's map kernels.

    ``compile_fn(artifact, guard) -> (variant, info)`` is
    :meth:`CompilerSession.compile_specialized`; ``charge(seconds)``
    bills the modeled (re)compile stall to the runtime's simulated
    clock, so specialization pays for itself honestly.
    """

    def __init__(self, policy: SpecializationPolicy, compile_fn,
                 tracer=NULL_TRACER, charge=None):
        self.policy = policy
        self.compile_fn = compile_fn
        self.tracer = tracer
        self.charge = charge
        self._states: dict = {}
        #: [(generic_id, event, guard12)] — inspectable decision log.
        self.log: list = []

    def _note(self, artifact_id: str, event: str, guard: str) -> None:
        self.log.append((artifact_id, event, guard[:12]))
        self.tracer.counters.add(f"specialize.{event}")

    def observe(self, artifact, args: list, broadcast):
        """One dispatch through the state machine. Returns
        ``(artifact_to_run, resident_positions)``: the generic artifact
        with no resident operands, or the specialized variant with the
        guarded argument positions (skip their ``to_device``)."""
        key = artifact.artifact_id
        guard, positions = guard_digest(args, broadcast)
        if not guard:
            return artifact, ()
        state = self._states.get(key)
        if state is None:
            state = self._states[key] = _KernelState()
        variant = state.variants.get(guard)
        if variant is not None:
            if state.guard != guard:
                # Returning to a previously-specialized operand set
                # after a demotion: the cached variant re-arms at once.
                self._note(key, "guard_miss", guard)
            state.guard = guard
            state.streak += 1
            self._note(key, "hit", guard)
            return variant, positions
        if state.guard == guard:
            state.streak += 1
        else:
            if state.guard is not None:
                self._note(key, "guard_miss", guard)
                if state.variants:
                    self._note(key, "demote", guard)
            state.guard = guard
            state.streak = 1
        self._note(key, "observe", guard)
        if state.streak < self.policy.observe_batches:
            return artifact, ()
        variant, info = self.compile_fn(artifact, guard)
        state.variants[guard] = variant
        self._note(
            key,
            "warm" if info.get("state") == "hit" else "compile",
            guard,
        )
        if self.charge is not None:
            self.charge(info.get("modeled_s", 0.0))
        self.tracer.counters.add("specialize.active")
        return variant, positions
