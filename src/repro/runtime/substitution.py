"""Task substitution (Section 4.2).

"For each task (sub)graph that has an alternative implementation, the
runtime is in a position to perform a substitution. At present, the
runtime algorithm for doing this substitution is primitive: it prefers
a larger substitution to a smaller one. It also favors GPU and FPGA
artifacts to bytecode although that choice can be manually directed."

:class:`SubstitutionPolicy` implements exactly that primitive
algorithm, plus the manual direction hook, plus (as an ablation, and as
the paper's future-work direction) an optional communication-aware mode
that rejects substitutions whose transfer cost would exceed the
estimated compute benefit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends.common import BYTECODE, FPGA, GPU, ArtifactStore
from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER
from repro.runtime.graph import Pipeline
from repro.runtime.tasks import DeviceTask

#: Device names a directive may name.
DIRECTIVE_DEVICES = (BYTECODE, GPU, FPGA)


@dataclass
class SubstitutionPolicy:
    """Controls which artifacts the runtime substitutes."""

    use_accelerators: bool = True
    # Preference order among accelerators when spans tie on size.
    device_order: tuple = (GPU, FPGA)
    # Manual direction: task_id -> device kind ('bytecode' pins a task
    # to the CPU; 'gpu'/'fpga' restricts it to that device).
    directives: dict = field(default_factory=dict)
    # Prefer larger substitutions (the paper's primitive algorithm).
    # Disabling this prefers the smallest candidates — ablation E6.
    prefer_larger: bool = True
    # Communication-aware mode (paper future work): skip a substitution
    # when the modeled transfer time exceeds benefit_ratio x the
    # estimated CPU compute time of the covered span.
    communication_aware: bool = False
    benefit_ratio: float = 1.0
    # Runtime adaptation (paper future work): substitute an adaptive
    # task that probes CPU vs device online and migrates to the winner.
    adaptive: bool = False

    def __post_init__(self):
        # Defensive copy: two Runtimes sharing one policy must not
        # observe each other's directive mutations.
        self.directives = dict(self.directives)
        # Health-scoped pins: the subset of bytecode directives installed
        # by the health subsystem (circuit breaker) rather than by the
        # user. Only these are revocable via promote(); user-authored
        # directives survive promote() untouched.
        self._health_pins = set()
        # Eager validation: a typo'd device name must fail loudly at
        # construction, not be silently ignored during substitution.
        for task_id, device in self.directives.items():
            if device not in DIRECTIVE_DEVICES:
                raise ConfigurationError(
                    f"unknown device {device!r} in directive for task "
                    f"{task_id!r}; expected one of "
                    f"{', '.join(DIRECTIVE_DEVICES)}"
                )

    def demote(self, task_ids: list, health: bool = False) -> None:
        """Pin tasks to bytecode — the runtime re-substitution
        directive added by the supervisor when a device span has
        exhausted its retries.

        With ``health=True`` the pin is recorded as health-scoped:
        revocable later via :meth:`promote` when the device's circuit
        breaker re-closes. A health pin never overwrites a pre-existing
        user directive, so promote() cannot lift a manual pin.
        """
        for task_id in task_ids:
            if health and task_id not in self.directives:
                self._health_pins.add(task_id)
            self.directives[task_id] = BYTECODE

    def promote(self, task_ids: list) -> list:
        """Inverse of health-scoped :meth:`demote`: lift bytecode pins
        the health subsystem installed so the span is eligible for
        re-substitution. User-authored directives are left untouched.
        Returns the task ids actually un-pinned."""
        lifted = []
        for task_id in task_ids:
            if task_id in self._health_pins:
                self._health_pins.discard(task_id)
                if self.directives.get(task_id) == BYTECODE:
                    del self.directives[task_id]
                lifted.append(task_id)
        return lifted

    def allows(self, artifact, covered_ids: list) -> bool:
        for task_id in covered_ids:
            directive = self.directives.get(task_id)
            if directive is None:
                continue
            if directive == BYTECODE:
                return False
            if directive != artifact.device:
                return False
        return True


@dataclass
class SubstitutionDecision:
    artifact_id: str
    device: str
    start_index: int
    covered_task_ids: list
    reason: str = ""


def plan_substitutions(
    pipeline: Pipeline,
    store: ArtifactStore,
    policy: SubstitutionPolicy,
    cost_estimator=None,
    counters=None,
    fusion_mode: str = "auto",
    fusion_plan=None,
) -> list:
    """Choose non-overlapping artifact substitutions for a pipeline.

    Returns a list of :class:`SubstitutionDecision` ordered by start
    index. ``cost_estimator(artifact, covered_ids) -> (transfer_s,
    cpu_s)`` enables the communication-aware mode. ``counters`` (a
    :class:`repro.obs.Counters`) accumulates which policy rule decided
    each candidate's fate. ``fusion_mode`` gates multi-stage (fused)
    candidates: ``'auto'`` takes any, ``'off'`` takes none (each stage
    substitutes — and crosses the marshaling boundary — on its own),
    ``'plan'`` takes exactly the spans ``fusion_plan`` sanctions
    (docs/FUSION.md).
    """
    counters = NULL_TRACER.counters if counters is None else counters
    if not policy.use_accelerators:
        counters.add("substitution.skipped[accelerators-disabled]")
        return []
    task_ids = pipeline.task_ids()
    candidates = []
    for rank, device in enumerate(policy.device_order):
        for start, artifact in store.spans(task_ids, device):
            covered = artifact.manifest.task_ids
            if len(covered) > 1 and fusion_mode != "auto":
                if fusion_mode == "off":
                    counters.add("substitution.rejected[fusion-off]")
                    continue
                if fusion_plan is None or not fusion_plan.allows_span(
                    covered
                ):
                    counters.add("substitution.rejected[fusion-plan]")
                    continue
            if not policy.allows(artifact, covered):
                counters.add("substitution.rejected[directive]")
                continue
            candidates.append((len(covered), -rank, start, artifact))
    counters.add("substitution.candidates", len(candidates))
    # Primitive algorithm: prefer larger; ties by device order, then
    # leftmost.
    candidates.sort(
        key=lambda c: (c[0] if policy.prefer_larger else -c[0], c[1], -c[2]),
        reverse=True,
    )
    taken: set = set()
    decisions: list[SubstitutionDecision] = []
    for size, _, start, artifact in candidates:
        span = set(range(start, start + size))
        if span & taken:
            counters.add("substitution.rejected[overlap]")
            continue
        covered = artifact.manifest.task_ids
        reason = (
            "prefer-larger" if policy.prefer_larger else "prefer-smaller"
        )
        if policy.communication_aware and cost_estimator is not None:
            transfer_s, cpu_s = cost_estimator(artifact, covered)
            if transfer_s > policy.benefit_ratio * cpu_s:
                counters.add("substitution.rejected[communication]")
                continue
            reason = (
                f"communication-aware: transfer {transfer_s:.3g}s <= "
                f"{policy.benefit_ratio}x cpu {cpu_s:.3g}s"
            )
        taken |= span
        counters.add(f"substitution.taken[{artifact.device}]")
        decisions.append(
            SubstitutionDecision(
                artifact_id=artifact.artifact_id,
                device=artifact.device,
                start_index=start,
                covered_task_ids=list(covered),
                reason=reason,
            )
        )
    decisions.sort(key=lambda d: d.start_index)
    return decisions


def apply_substitutions(
    pipeline: Pipeline,
    decisions: list,
    store: ArtifactStore,
    executor_factory,
    batch_size: int = 4096,
) -> Pipeline:
    """Rebuild the pipeline with device tasks in place of the covered
    spans. ``executor_factory(artifact) -> callable`` supplies each
    device task's executor; ``batch_size`` is the marshaling batch the
    device tasks drain and dispatch per boundary crossing
    (``RuntimeConfig.batch_size``)."""
    if not decisions:
        return pipeline
    new_tasks = []
    index = 0
    by_start = {d.start_index: d for d in decisions}
    while index < len(pipeline.tasks):
        decision = by_start.get(index)
        if decision is None:
            new_tasks.append(pipeline.tasks[index])
            index += 1
            continue
        artifact = store.lookup(decision.artifact_id)
        new_tasks.append(
            DeviceTask(
                artifact_id=decision.artifact_id,
                device=decision.device,
                covered_task_ids=decision.covered_task_ids,
                executor=executor_factory(artifact),
                batch_size=batch_size,
            )
        )
        index += len(decision.covered_task_ids)
    return Pipeline(new_tasks)
