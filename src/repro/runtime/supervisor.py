"""Supervised device execution: retry, backoff, and demotion.

The runtime always holds a bytecode artifact for every task
(Section 4.1), so no device failure needs to be fatal: a failing
GPU/FPGA executor is retried under a :class:`RetryPolicy`, and when
retries are exhausted the :class:`Supervisor` performs runtime
re-substitution — the caller supplies a bytecode fallback built from
the always-available artifact, the failed batch is replayed on it, and
the span is demoted (a ``bytecode`` directive is added to the
substitution policy so later graph runs skip the failed device
entirely).

Everything here is deterministic: backoff jitter comes from a seeded
RNG and backoff time is charged as *simulated* seconds (recorded in
spans and counters), never slept on the wall clock.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass

from repro.errors import (
    ConfigurationError,
    DeviceError,
    DeviceTimeoutError,
    LiquidMetalError,
    MarshalingError,
    RetryExhaustedError,
)
from repro.obs.metrics import NULL_METRICS
from repro.obs.tracer import NULL_TRACER
from repro.runtime.faults import _XorShift


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failing device task, and how.

    Backoff is exponential with deterministic jitter: attempt ``k``
    (1-based) backs off ``base_backoff_s * backoff_multiplier**(k-1)``
    seconds, capped at ``max_backoff_s``, scaled by a jitter factor in
    ``[1 - jitter_ratio, 1 + jitter_ratio)`` drawn from a seeded RNG.

    Retryability is per error class: transient ``DeviceError`` /
    ``MarshalingError`` faults are retried by default, while
    ``DeviceTimeoutError`` (a stalled device) demotes immediately —
    retrying a hang just hangs again.
    """

    max_attempts: int = 3
    base_backoff_s: float = 100e-6
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 0.1
    jitter_ratio: float = 0.1
    seed: int = 0x5EED
    retry_device_errors: bool = True
    retry_marshaling_errors: bool = True
    retry_timeouts: bool = False

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise ConfigurationError("backoff seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, "
                f"got {self.backoff_multiplier}"
            )
        if not 0.0 <= self.jitter_ratio <= 1.0:
            raise ConfigurationError(
                f"jitter_ratio must be in [0, 1], got {self.jitter_ratio}"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        if isinstance(exc, DeviceTimeoutError):
            return self.retry_timeouts
        if isinstance(exc, MarshalingError):
            return self.retry_marshaling_errors
        if isinstance(exc, DeviceError):
            return self.retry_device_errors
        return False

    def backoff_s(self, attempt: int, unit: float) -> float:
        """Backoff before retry #``attempt`` given a unit draw."""
        base = min(
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        return base * (1.0 + self.jitter_ratio * (2.0 * unit - 1.0))


@dataclass
class DemotionRecord:
    """One runtime re-substitution: a device span demoted to bytecode."""

    task_id: str
    device: str
    attempts: int
    error: str              # class name of the final error
    covered_task_ids: list
    # Simulated seconds of backoff this call accumulated before giving
    # up — the health registry charges it to the span's breaker clock.
    backoff_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "device": self.device,
            "attempts": self.attempts,
            "error": self.error,
            "covered_task_ids": list(self.covered_task_ids),
            "backoff_s": self.backoff_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DemotionRecord":
        return cls(**payload)


class Supervisor:
    """Wraps device execution with retry/backoff and demotion.

    One supervisor belongs to one runtime; it owns the retry RNG, the
    accumulated (simulated) backoff time, and the demotion log. The
    tracer records a ``retry.attempt`` span per retry and a
    ``demotion.taken`` span per re-substitution, plus matching
    counters, so ``python -m repro trace``/``faults`` show the whole
    recovery.
    """

    def __init__(self, policy: "RetryPolicy | None" = None,
                 tracer=NULL_TRACER, job_id: "str | None" = None,
                 tenant: "str | None" = None):
        self.policy = policy or RetryPolicy()
        self.tracer = tracer
        # Service-job attribution, stamped onto RetryExhaustedError so
        # multi-tenant error reports can say whose retries ran out.
        self.job_id = job_id
        self.tenant = tenant
        self.metrics = getattr(tracer, "metrics", NULL_METRICS)
        self._lock = threading.Lock()
        # Per-task-id RNG streams: concurrent device tasks under the
        # ThreadedScheduler must not interleave draws from one shared
        # stream, or the backoff sequence depends on thread timing.
        # Each task id gets its own deterministic stream derived from
        # the policy seed, so draw order across tasks is irrelevant.
        self._rngs: dict = {}
        self._backoff_by_task: dict = {}
        self.demotions: list[DemotionRecord] = []

    @property
    def total_backoff_s(self) -> float:
        """Accumulated simulated backoff. Summed per task id in sorted
        key order, so the float total is bit-identical run-to-run no
        matter how concurrent stage threads interleaved their draws."""
        per_task = self._backoff_by_task
        return sum(per_task[task_id] for task_id in sorted(per_task))

    def _draw_backoff(self, task_id: str, attempt: int) -> float:
        """Draw jitter and accumulate backoff in ONE critical section.

        The draw and the total-backoff accumulation used to sit in two
        separate lock acquisitions, letting concurrent tasks interleave
        between them; doing both atomically (against a per-task stream)
        makes the total independent of scheduling.
        """
        with self._lock:
            rng = self._rngs.get(task_id)
            if rng is None:
                stream_seed = self.policy.seed ^ zlib.crc32(
                    task_id.encode("utf-8")
                )
                rng = self._rngs[task_id] = _XorShift(stream_seed)
            backoff = self.policy.backoff_s(attempt, rng.random())
            self._backoff_by_task[task_id] = (
                self._backoff_by_task.get(task_id, 0.0) + backoff
            )
        return backoff

    def run(self, attempt_fn, *, task_id: str, device: str,
            fallback=None, covered_task_ids=None, on_demote=None):
        """Execute ``attempt_fn()`` under the retry policy.

        On exhausted retries (or a non-retryable error), replays via
        ``fallback()`` — calling ``on_demote(record, error)`` first so
        the engine can pin the span to bytecode — or raises
        :class:`RetryExhaustedError` when no fallback exists.
        """
        policy = self.policy
        counters = self.tracer.counters
        last: "LiquidMetalError | None" = None
        attempts = 0
        call_backoff_s = 0.0
        while attempts < policy.max_attempts:
            attempts += 1
            try:
                result = attempt_fn()
                if attempts > 1:
                    # A recovered task used to be indistinguishable
                    # from a first-try success in traces; mark it.
                    counters.add("retry.recovered")
                    counters.add(f"retry.recovered[{device}]")
                    with self.tracer.span(
                        "retry.recovered",
                        task_id=task_id,
                        device=device,
                        attempts=attempts,
                        backoff_s=call_backoff_s,
                    ):
                        pass
                return result
            except LiquidMetalError as exc:
                last = exc
                if not policy.is_retryable(exc):
                    break
                if attempts >= policy.max_attempts:
                    break
                backoff = self._draw_backoff(task_id, attempts)
                call_backoff_s += backoff
                counters.add("retry.attempt")
                counters.add(f"retry.attempt[{device}]")
                self.metrics.histogram("retry.backoff_us").observe(
                    backoff * 1e6
                )
                with self.tracer.span(
                    "retry.attempt",
                    task_id=task_id,
                    device=device,
                    attempt=attempts,
                    backoff_s=backoff,
                    error=type(exc).__name__,
                ):
                    pass
        if fallback is None:
            raise RetryExhaustedError(
                f"task {task_id!r} on {device} failed after "
                f"{attempts} attempt(s): {last}",
                task_id=task_id,
                device=device,
                attempts=attempts,
                cause=last,
                job_id=self.job_id,
                tenant=self.tenant,
            ) from last
        record = DemotionRecord(
            task_id=task_id,
            device=device,
            attempts=attempts,
            error=type(last).__name__,
            covered_task_ids=list(covered_task_ids or []),
            backoff_s=call_backoff_s,
        )
        with self._lock:
            self.demotions.append(record)
        counters.add("demotion.taken")
        counters.add(f"demotion.taken[{device}]")
        with self.tracer.span(
            "demotion.taken",
            task_id=task_id,
            device=device,
            attempts=attempts,
            error=record.error,
            covered=",".join(record.covered_task_ids),
        ):
            if on_demote is not None:
                on_demote(record, last)
            return fallback()

    # -- checkpoint state (docs/RECOVERY.md) ---------------------------

    def export_state(self) -> dict:
        """Snapshot the per-task RNG stream positions, accumulated
        backoff, and the demotion log for a checkpoint frame."""
        with self._lock:
            return {
                "rngs": {
                    task_id: rng.state
                    for task_id, rng in self._rngs.items()
                },
                "backoff": dict(self._backoff_by_task),
                "demotions": [d.to_dict() for d in self.demotions],
            }

    def restore_state(self, payload: dict) -> None:
        """Restore a snapshot taken by :meth:`export_state`, so live
        retries after a checkpoint resume draw the same jitter the
        uninterrupted run would have."""
        with self._lock:
            self._rngs = {
                task_id: _XorShift(1)
                for task_id in payload["rngs"]
            }
            for task_id, state in payload["rngs"].items():
                self._rngs[task_id].state = int(state)
            self._backoff_by_task = {
                task_id: float(backoff)
                for task_id, backoff in payload["backoff"].items()
            }
            self.demotions = [
                DemotionRecord.from_dict(row)
                for row in payload["demotions"]
            ]

    def __repr__(self) -> str:
        return (
            f"<Supervisor {len(self.demotions)} demotions, "
            f"backoff {self.total_backoff_s:.3g}s>"
        )
