"""Runtime task classes.

"The runtime contains a class for every distinct kind of task that can
arise in the Lime language (e.g., sources, sinks, filters)"
(Section 4.1). :class:`DeviceTask` is the product of task substitution:
a stage (or fused span of stages) executing on an accelerator behind
the marshaling boundary.

Each task supports two execution modes: ``process_batch`` for the
deterministic sequential scheduler, and ``run`` for the thread-per-task
scheduler.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RuntimeGraphError
from repro.runtime.queues import END_OF_STREAM, Connection
from repro.values import MutableArray, ValueArray


class ExecutionContext:
    """What tasks need while executing: the engine's interpreter (with
    cycle metering) and the current graph's timing record."""

    def __init__(self, engine, graph_run):
        self.engine = engine
        self.graph_run = graph_run

    def invoke(self, method: str, args: list):
        """Call a compiled method; returns (value, abstract cycles)."""
        return self.engine.metered_call(method, args)

    def seconds_for_cycles(self, cycles: int) -> float:
        return self.engine.ledger.cycles_to_seconds(cycles)

    @property
    def tracer(self):
        """The engine's tracer (null when tracing is disabled or when
        the engine is a bare test stub)."""
        from repro.obs.tracer import NULL_TRACER

        config = getattr(self.engine, "config", None)
        return getattr(config, "tracer", None) or NULL_TRACER

    @property
    def metrics(self):
        """The tracer's metrics registry (null when disabled)."""
        from repro.obs.metrics import NULL_METRICS

        return getattr(self.tracer, "metrics", NULL_METRICS)

    @property
    def artifact_source(self) -> "str | None":
        """The engine store's provenance (``cold``/``warm``/``mixed``),
        or None for bare test stubs — lets the schedulers stamp
        ``artifact_source`` on stage spans so a trace shows whether a
        run executed freshly compiled or cache-loaded artifacts."""
        store = getattr(self.engine, "store", None)
        return getattr(store, "provenance", None)

    def health_state(self, task) -> "str | None":
        """The circuit-breaker state for a device task's span, or None
        for plain bytecode tasks / engines without a health registry —
        lets the schedulers stamp ``breaker_state`` on stage spans."""
        key = getattr(task, "artifact_id", None)
        registry = getattr(self.engine, "health", None)
        if key is None or registry is None:
            return None
        return registry.state_of(task.device, key)

    @property
    def cancel_token(self):
        """The job's :class:`~repro.runtime.cancel.CancelToken`, or
        None for standalone runs and bare test stubs. Task loops cache
        this once and poll ``token.check()`` at firing/batch
        boundaries — cancellation is cooperative, never preemptive."""
        return getattr(self.engine, "cancel_token", None)


class Task:
    kind = "task"
    device = "bytecode"

    def __init__(self, task_id: Optional[str]):
        self.task_id = task_id or f"dynamic:{id(self)}"
        self.input_conn: Optional[Connection] = None
        self.output_conn: Optional[Connection] = None

    # Sequential mode ------------------------------------------------------

    def process_batch(self, items: list, ctx: ExecutionContext) -> list:
        raise NotImplementedError

    # Threaded mode --------------------------------------------------------

    def run(self, ctx: ExecutionContext) -> None:
        raise NotImplementedError

    def _stage(self, ctx: ExecutionContext):
        return ctx.graph_run.stage(self.task_id, self.device)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.task_id}>"


# Per-item runtime overheads (abstract CPU cycles) for the host-side
# queue handling of each stage.
_QUEUE_CYCLES = 30


class SourceTask(Task):
    """Produces the elements of a value array, ``rate`` items per
    firing (Figure 1, line 17: ``input.source(1)``)."""

    kind = "source"

    def __init__(self, array: ValueArray, rate: int, task_id=None):
        super().__init__(task_id)
        if not isinstance(array, ValueArray):
            raise RuntimeGraphError(
                "source() requires a value array at run time"
            )
        self.array = array
        self.rate = max(rate, 1)

    def emit_items(self) -> list:
        if self.rate == 1:
            return list(self.array)
        return [
            self.array[i : i + self.rate]
            for i in range(0, len(self.array), self.rate)
        ]

    def process_batch(self, items, ctx):
        token = ctx.cancel_token
        if token is not None:
            token.check()
        out = self.emit_items()
        stage = self._stage(ctx)
        stage.items += len(out)
        stage.busy_s += ctx.seconds_for_cycles(_QUEUE_CYCLES * len(out))
        return out

    def run(self, ctx):
        stage = self._stage(ctx)
        token = ctx.cancel_token
        for item in self.emit_items():
            if token is not None:
                token.check()
            self.output_conn.put(item)
            stage.items += 1
        stage.busy_s += ctx.seconds_for_cycles(_QUEUE_CYCLES * stage.items)
        self.output_conn.close()


class SinkTask(Task):
    """Accumulates stream items into a mutable array (Figure 1,
    line 19: ``result.<bit>sink()``)."""

    kind = "sink"

    def __init__(self, array: MutableArray, task_id=None):
        super().__init__(task_id)
        if not isinstance(array, MutableArray):
            raise RuntimeGraphError(
                "sink() requires a mutable array at run time"
            )
        self.array = array
        self._index = 0

    def _store(self, item) -> None:
        if self._index >= len(self.array):
            raise RuntimeGraphError(
                f"sink overflow: array of length {len(self.array)} "
                f"cannot take item #{self._index + 1}"
            )
        self.array[self._index] = item
        self._index += 1

    def process_batch(self, items, ctx):
        token = ctx.cancel_token
        if token is not None:
            token.check()
        stage = self._stage(ctx)
        for item in items:
            self._store(item)
        stage.items += len(items)
        stage.busy_s += ctx.seconds_for_cycles(_QUEUE_CYCLES * len(items))
        return []

    def run(self, ctx):
        stage = self._stage(ctx)
        token = ctx.cancel_token
        while True:
            item = self.input_conn.get()
            if item is END_OF_STREAM:
                break
            if token is not None:
                token.check()
            self._store(item)
            stage.items += 1
        stage.busy_s += ctx.seconds_for_cycles(_QUEUE_CYCLES * stage.items)


class FilterTask(Task):
    """An inner task: repeatedly applies a local method, consuming
    ``arity`` items per firing (Section 2.2: the actor fires "when the
    port contains sufficient data to satisfy the argument requirements
    of the method")."""

    kind = "filter"

    def __init__(self, method: str, arity: int = 1, task_id=None,
                 relocatable: bool = False, instance=None):
        super().__init__(task_id)
        self.method = method
        self.arity = max(arity, 1)
        self.relocatable = relocatable
        # Stateful tasks (Section 2.1): the isolating-constructor-built
        # instance that carries the pipeline state across firings.
        self.instance = instance

    def _call_args(self, batch: list) -> list:
        if self.instance is not None:
            return [self.instance] + list(batch)
        return list(batch)

    def _latency_observer(self, ctx):
        """Per-firing simulated-latency histogram observer, or ``None``
        when metrics are disabled (so the hot loop pays one None check
        per firing, nothing more)."""
        hist = ctx.metrics.histogram(f"stage.item_latency_us[{self.task_id}]")
        return hist.observe if hist.enabled else None

    def process_batch(self, items, ctx):
        stage = self._stage(ctx)
        out = []
        if len(items) % self.arity:
            raise RuntimeGraphError(
                f"filter {self.method} requires groups of {self.arity} "
                f"items; {len(items)} provided"
            )
        observe = self._latency_observer(ctx)
        token = ctx.cancel_token
        cycles = 0
        for i in range(0, len(items), self.arity):
            if token is not None:
                token.check()
            value, used = ctx.invoke(
                self.method, self._call_args(items[i : i + self.arity])
            )
            cycles += used + _QUEUE_CYCLES
            if observe is not None:
                observe(ctx.seconds_for_cycles(used + _QUEUE_CYCLES) * 1e6)
            out.append(value)
        stage.items += len(out)
        stage.busy_s += ctx.seconds_for_cycles(cycles)
        return out

    def run(self, ctx):
        stage = self._stage(ctx)
        observe = self._latency_observer(ctx)
        token = ctx.cancel_token
        cycles = 0
        while True:
            batch = self.input_conn.get_batch(self.arity)
            if batch and batch[0] is END_OF_STREAM:
                break
            if token is not None:
                token.check()
            value, used = ctx.invoke(self.method, self._call_args(batch))
            cycles += used + _QUEUE_CYCLES
            if observe is not None:
                observe(ctx.seconds_for_cycles(used + _QUEUE_CYCLES) * 1e6)
            self.output_conn.put(value)
            stage.items += 1
        stage.busy_s += ctx.seconds_for_cycles(cycles)
        self.output_conn.close()


class DeviceTask(Task):
    """A substituted span of filters running on an accelerator.

    ``executor`` is provided by the engine when the substitution is
    performed; it takes a list of items and returns
    ``(outputs, busy_seconds)`` with marshaling and kernel/RTL time
    already recorded in the ledger.

    ``batch_size`` is the marshaling batch: how many FIFO elements are
    drained and dispatched across the host/device boundary per
    crossing (``RuntimeConfig.batch_size``). Both scheduler modes chunk
    identically, so sequential and threaded runs cross the boundary the
    same number of times for the same stream.
    """

    kind = "device"

    def __init__(
        self,
        artifact_id: str,
        device: str,
        covered_task_ids: list,
        executor: Callable,
        batch_size: int = 4096,
    ):
        super().__init__(artifact_id)
        # Kept under its own name: it is the breaker key the health
        # registry files this span under (ExecutionContext.health_state).
        self.artifact_id = artifact_id
        self.device = device
        self.covered_task_ids = list(covered_task_ids)
        self.executor = executor
        self.batch_size = max(int(batch_size), 1)

    def process_batch(self, items, ctx):
        stage = self._stage(ctx)
        if not items:
            return []
        token = ctx.cancel_token
        outputs: list = []
        for start in range(0, len(items), self.batch_size):
            if token is not None:
                token.check()
            out, seconds = self.executor(
                list(items[start : start + self.batch_size])
            )
            outputs.extend(out)
            stage.busy_s += seconds
        stage.items += len(outputs)
        return outputs

    def run(self, ctx):
        stage = self._stage(ctx)
        token = ctx.cancel_token
        done = False
        while not done:
            batch, done = self.input_conn.get_up_to(self.batch_size)
            if batch:
                if token is not None:
                    token.check()
                outputs, seconds = self.executor(batch)
                stage.busy_s += seconds
                stage.items += len(outputs)
                for value in outputs:
                    self.output_conn.put(value)
        self.output_conn.close()
