"""The simulated-time ledger.

Execution in this reproduction is always functionally real (every value
is computed), while *time* is modeled: the bytecode interpreter reports
abstract CPU cycles, the GPU simulator reports kernel times, the FPGA
simulator reports cycles at its synthesized clock, and the marshaling
boundary reports per-step transfer costs. The ledger aggregates these
into an end-to-end simulated time.

For task graphs the stages run concurrently (a thread per task,
Section 4.1), so a graph's wall time is modeled as the slowest stage's
busy time plus the pipeline fill latency — the standard steady-state
pipeline approximation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TransferRecord:
    """One host<->device crossing (Figure 3's three steps plus the
    physical link)."""

    direction: str          # 'to-device' | 'from-device'
    num_bytes: int
    serialize_s: float      # Lime value -> byte array
    crossing_s: float       # JNI boundary
    convert_s: float        # byte array -> packed C value (or back)
    link_s: float           # DMA over PCIe / UART
    link_name: str = ""

    @property
    def total_s(self) -> float:
        return self.serialize_s + self.crossing_s + self.convert_s + self.link_s

    def to_dict(self) -> dict:
        return {
            "direction": self.direction,
            "num_bytes": self.num_bytes,
            "serialize_s": self.serialize_s,
            "crossing_s": self.crossing_s,
            "convert_s": self.convert_s,
            "link_s": self.link_s,
            "link_name": self.link_name,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TransferRecord":
        return cls(**payload)


@dataclass
class OffloadRecord:
    """One data-parallel offload (map/reduce) or device batch run."""

    kind: str               # 'map' | 'reduce' | 'filter-batch'
    target: str             # method or artifact id
    device: str
    items: int
    kernel_s: float
    transfers: list = field(default_factory=list)
    # Kernel-time breakdown (for scale extrapolation): fixed launch
    # overhead vs compute (scales with items x work) vs memory
    # (scales with items).
    launch_s: float = 0.0
    compute_s: float = 0.0
    memory_s: float = 0.0
    # True when this offload ran inside a task-graph stage: its time is
    # already accounted by the graph's pipeline model, so the ledger
    # excludes it from the standalone offload total.
    in_graph: bool = False

    @property
    def transfer_s(self) -> float:
        return sum(t.total_s for t in self.transfers)

    @property
    def total_s(self) -> float:
        return self.kernel_s + self.transfer_s

    def to_dict(self) -> dict:
        """Checkpoint-frame form (docs/RECOVERY.md). JSON floats
        round-trip exactly (repr-based), so a replayed record charges
        the ledger bit-identically."""
        return {
            "kind": self.kind,
            "target": self.target,
            "device": self.device,
            "items": self.items,
            "kernel_s": self.kernel_s,
            "transfers": [t.to_dict() for t in self.transfers],
            "launch_s": self.launch_s,
            "compute_s": self.compute_s,
            "memory_s": self.memory_s,
            "in_graph": self.in_graph,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "OffloadRecord":
        payload = dict(payload)
        payload["transfers"] = [
            TransferRecord.from_dict(t) for t in payload["transfers"]
        ]
        return cls(**payload)


@dataclass
class StageTime:
    task_id: str
    device: str
    busy_s: float = 0.0
    items: int = 0


@dataclass
class GraphRun:
    """Timing of one task-graph execution."""

    graph_id: str
    stages: dict = field(default_factory=dict)   # task_id -> StageTime
    fill_latency_s: float = 0.0

    def stage(self, task_id: str, device: str) -> StageTime:
        if task_id not in self.stages:
            self.stages[task_id] = StageTime(task_id, device)
        return self.stages[task_id]

    @property
    def wall_s(self) -> float:
        """Pipeline steady-state model: the slowest *resource*
        dominates. Bytecode stages each run on their own host thread
        (the paper's thread-per-task scheduler on a multicore host), so
        they overlap; stages substituted onto the same accelerator
        share that device and serialize."""
        device_busy: dict = {}
        slowest = 0.0
        for stage in self.stages.values():
            if stage.device == "bytecode":
                slowest = max(slowest, stage.busy_s)
            else:
                device_busy[stage.device] = (
                    device_busy.get(stage.device, 0.0) + stage.busy_s
                )
        for busy in device_busy.values():
            slowest = max(slowest, busy)
        return slowest + self.fill_latency_s

    @property
    def total_work_s(self) -> float:
        return sum(s.busy_s for s in self.stages.values())


class TimingLedger:
    """Aggregated simulated time for one runtime invocation."""

    def __init__(self, cpu_clock_hz: float = 3.0e9):
        self.cpu_clock_hz = cpu_clock_hz
        self.host_cycles = 0
        self.offloads: list[OffloadRecord] = []
        self.graph_runs: list[GraphRun] = []

    # -- recording -------------------------------------------------------

    def add_host_cycles(self, cycles: int) -> None:
        self.host_cycles += cycles

    def add_offload(self, record: OffloadRecord) -> None:
        self.offloads.append(record)

    def new_graph_run(self, graph_id: str) -> GraphRun:
        run = GraphRun(graph_id)
        self.graph_runs.append(run)
        return run

    # -- aggregation -------------------------------------------------------

    @property
    def host_s(self) -> float:
        return self.host_cycles / self.cpu_clock_hz

    @property
    def offload_s(self) -> float:
        """Blocking offload time outside task graphs (in-graph device
        batches are covered by the graph pipeline model)."""
        return sum(o.total_s for o in self.offloads if not o.in_graph)

    @property
    def graph_s(self) -> float:
        return sum(run.wall_s for run in self.graph_runs)

    @property
    def total_s(self) -> float:
        """End-to-end simulated time: host execution plus blocking
        offloads plus graph executions."""
        return self.host_s + self.offload_s + self.graph_s

    def cycles_to_seconds(self, cycles: int) -> float:
        return cycles / self.cpu_clock_hz

    def summary(self) -> dict:
        return {
            "host_s": self.host_s,
            "offload_s": self.offload_s,
            "graph_s": self.graph_s,
            "total_s": self.total_s,
            "offloads": len(self.offloads),
            "graph_runs": len(self.graph_runs),
        }
