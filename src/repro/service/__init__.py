"""repro.service — the long-lived co-execution service.

A persistent, multi-tenant front end over the compiler and runtime:
one shared artifact cache, one service-scoped health registry, a
:class:`DevicePool` of simulated accelerator slots, and an
:class:`AdmissionController` enforcing bounded per-tenant queues with
deterministic weighted round-robin. See docs/SERVICE.md.
"""

from repro.service.admission import AdmissionController, TenantState
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
)
from repro.service.journal import (
    JOURNAL_SCHEMA,
    NULL_JOURNAL,
    RECOVER_SCHEMA,
    JobJournal,
    JobReplay,
    JournalSnapshot,
    RecoveredOutcome,
    load_journal,
    outcome_digest,
    render_recover_report,
    validate_recover_file,
    validate_recover_report,
)
from repro.service.pool import DevicePool, Lease
from repro.service.service import (
    SERVICE_SCHEMA,
    CoExecutionService,
    ServiceConfig,
    render_service_report,
    run_recovery_driver,
    run_service_driver,
    validate_service_file,
    validate_service_report,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "RECOVER_SCHEMA",
    "JobJournal",
    "NULL_JOURNAL",
    "JobReplay",
    "JournalSnapshot",
    "RecoveredOutcome",
    "load_journal",
    "outcome_digest",
    "render_recover_report",
    "validate_recover_file",
    "validate_recover_report",
    "run_recovery_driver",
    "AdmissionController",
    "TenantState",
    "DevicePool",
    "Lease",
    "Job",
    "JOB_STATES",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "SERVICE_SCHEMA",
    "CoExecutionService",
    "ServiceConfig",
    "run_service_driver",
    "validate_service_report",
    "validate_service_file",
    "render_service_report",
]
