"""Admission control: bounded per-tenant queues + deterministic WRR.

Two protections for a saturated service:

* **Bounded queue depth** — each tenant may hold at most
  ``max_queue_depth`` queued jobs. The bound is per tenant, so one
  flooding tenant exhausts its own budget, not the service's. Over
  the bound, ``submit`` raises an honest
  :class:`~repro.errors.AdmissionRejected` carrying the observed
  depth and a ``retry_after_s`` hint derived from the mean observed
  job duration.

* **Deterministic weighted round-robin** — dispatch order between
  tenants uses the *smooth* WRR algorithm (the nginx variant): every
  pick adds each active tenant's weight to its running ``current``
  score, picks the maximum (ties broken by tenant name), and subtracts
  the total active weight from the winner. A weight-2 tenant gets
  exactly twice the picks of a weight-1 tenant, interleaved rather
  than bursty, and the order is a pure function of the queue states —
  no clocks, no randomness — so fairness is unit-testable.
"""

from __future__ import annotations

import threading
from collections import deque

from repro.errors import AdmissionRejected, ConfigurationError

__all__ = ["AdmissionController", "TenantState"]

#: Fallback duration estimate (wall seconds) before any job completed.
_DEFAULT_JOB_S = 0.05


class TenantState:
    """One tenant's queue and WRR bookkeeping."""

    def __init__(self, name: str, weight: int):
        self.name = name
        self.weight = weight
        self.current = 0          # smooth-WRR running score
        self.queue: deque = deque()
        # Lifetime tallies for the service report.
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0

    def __repr__(self) -> str:
        return (
            f"<TenantState {self.name} w={self.weight} "
            f"depth={len(self.queue)}>"
        )


class AdmissionController:
    """Per-tenant fair queuing for the co-execution service."""

    def __init__(self, max_queue_depth: int = 8, metrics=None):
        if max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, got {max_queue_depth}"
            )
        self.max_queue_depth = max_queue_depth
        self.metrics = metrics
        self._lock = threading.Lock()
        self._tenants: dict = {}          # name -> TenantState
        self._durations_s: list = []      # completed-job wall seconds
        self.total_admitted = 0
        self.total_rejected = 0

    # -- tenants -----------------------------------------------------------

    def register(self, name: str, weight: int = 1) -> TenantState:
        """Register (or re-weight) a tenant. Weight must be >= 1."""
        if weight < 1:
            raise ConfigurationError(
                f"tenant weight must be >= 1, got {name}={weight}"
            )
        with self._lock:
            state = self._tenants.get(name)
            if state is None:
                state = self._tenants[name] = TenantState(name, weight)
            else:
                state.weight = weight
            return state

    def tenants(self) -> list:
        with self._lock:
            return [self._tenants[name] for name in sorted(self._tenants)]

    def queue_depth(self, tenant: str) -> int:
        with self._lock:
            state = self._tenants.get(tenant)
            return len(state.queue) if state is not None else 0

    def total_pending(self) -> int:
        with self._lock:
            return sum(len(s.queue) for s in self._tenants.values())

    # -- duration feedback -------------------------------------------------

    def observe_duration(self, wall_s: float) -> None:
        """Feed one completed job's wall time into the retry-after
        estimator."""
        with self._lock:
            self._durations_s.append(max(wall_s, 0.0))

    def _mean_job_s(self) -> float:
        if not self._durations_s:
            return _DEFAULT_JOB_S
        return sum(self._durations_s) / len(self._durations_s)

    def retry_after_hint_s(self, tenant: str) -> float:
        """How long a rejected client should back off: the pending
        backlog ahead of it times the mean observed job duration."""
        with self._lock:
            pending = sum(len(s.queue) for s in self._tenants.values())
            mean = (
                sum(self._durations_s) / len(self._durations_s)
                if self._durations_s
                else _DEFAULT_JOB_S
            )
        return max(pending, 1) * mean

    # -- submission --------------------------------------------------------

    def enqueue(self, tenant: str, job, force: bool = False) -> None:
        """Queue a job for a registered tenant, or raise the typed
        :class:`AdmissionRejected` when the tenant is at its depth
        bound. ``force`` bypasses the bound — recovery re-admits
        journaled jobs that were already admitted once and must not
        be dropped by a depth race on restart."""
        with self._lock:
            state = self._tenants.get(tenant)
            if state is None:
                raise ConfigurationError(
                    f"unknown tenant {tenant!r}; register it first"
                )
            state.submitted += 1
            depth = len(state.queue)
            if depth >= self.max_queue_depth and not force:
                state.rejected += 1
                self.total_rejected += 1
                pending = sum(
                    len(s.queue) for s in self._tenants.values()
                )
                hint = max(pending, 1) * self._mean_job_s()
                raise AdmissionRejected(
                    f"tenant {tenant!r} queue is full "
                    f"({depth}/{self.max_queue_depth}); "
                    f"retry in ~{hint:.3g}s",
                    tenant=tenant,
                    queue_depth=depth,
                    retry_after_s=hint,
                )
            state.queue.append(job)
            state.admitted += 1
            self.total_admitted += 1

    # -- dispatch ----------------------------------------------------------

    def next_job(self, exclude=()):
        """Pop the next job to dispatch under smooth WRR, or None when
        every (non-excluded) tenant queue is empty.

        ``exclude`` names tenants the dispatcher already tried this
        round (their head job could not get a lease); they keep their
        queue position and their WRR score untouched.
        """
        exclude = set(exclude)
        with self._lock:
            active = [
                self._tenants[name]
                for name in sorted(self._tenants)
                if self._tenants[name].queue and name not in exclude
            ]
            if not active:
                return None
            total = sum(s.weight for s in active)
            best = None
            for state in active:
                state.current += state.weight
                if best is None or state.current > best.current:
                    # Strict > keeps ties on the first tenant in name
                    # order — deterministic by construction.
                    best = state
            best.current -= total
            return best.queue.popleft()

    def requeue_front(self, job) -> None:
        """Put a popped-but-undispatchable job back at the head of its
        tenant's queue (its turn comes around again next round)."""
        with self._lock:
            state = self._tenants.get(job.tenant)
            if state is None:
                raise ConfigurationError(
                    f"unknown tenant {job.tenant!r}"
                )
            state.queue.appendleft(job)

    def remove(self, job) -> bool:
        """Drop a queued job (cancellation before dispatch). True when
        the job was found and removed."""
        with self._lock:
            state = self._tenants.get(job.tenant)
            if state is None:
                return False
            try:
                state.queue.remove(job)
                return True
            except ValueError:
                return False

    def snapshot(self) -> list:
        """Tenant rows for the ``repro.service/1`` report."""
        with self._lock:
            return [
                {
                    "tenant": name,
                    "weight": state.weight,
                    "queued": len(state.queue),
                    "submitted": state.submitted,
                    "admitted": state.admitted,
                    "rejected": state.rejected,
                }
                for name, state in sorted(self._tenants.items())
            ]
