"""Job records for the co-execution service.

A :class:`Job` is one submitted task-graph run: source program, entry
point, arguments, the tenant it belongs to, and the lifecycle state
the service moves it through:

    QUEUED ──dispatch──► RUNNING ──► COMPLETED
       │                    │   └──► FAILED      (typed error)
       └────cancel──────────┴──────► CANCELLED   (explicit or deadline)

Every job carries its own :class:`~repro.runtime.cancel.CancelToken`
(deadline included) and a ``done`` event callers wait on. The record
itself is dumb data plus synchronization — all policy lives in
:class:`~repro.service.service.CoExecutionService`.
"""

from __future__ import annotations

import threading

from repro.runtime.cancel import CancelToken

__all__ = [
    "Job",
    "QUEUED", "RUNNING", "COMPLETED", "FAILED", "CANCELLED",
    "JOB_STATES",
]

QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, COMPLETED, FAILED, CANCELLED)


class Job:
    """One submitted run and everything the service knows about it."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        source: str,
        entry: str,
        args: list,
        app: str = "",
        filename: str = "<lime>",
        deadline_s: float | None = None,
        clock=None,
    ):
        self.job_id = job_id
        self.tenant = tenant
        self.source = source
        self.entry = entry
        self.args = list(args or [])
        self.app = app or filename
        self.filename = filename
        self.token = CancelToken(
            job_id=job_id,
            tenant=tenant,
            deadline_s=deadline_s,
            clock=clock,
        )
        self.state = QUEUED
        #: Device families the compiled program has artifacts for —
        #: the lease universe (set by the service at submit time).
        self.device_families: tuple = ()
        #: Typed compile failure captured at submit; surfaces when
        #: the job runs (submission itself stays non-throwing).
        self.compile_error: "BaseException | None" = None
        self.lease = None
        self.outcome = None                # RunOutcome on COMPLETED
        self.error: BaseException | None = None
        self.leased_families: tuple = ()
        self.wall_s = 0.0                  # dispatch-to-finish wall time
        self.done = threading.Event()
        #: True when the job was re-admitted by recovery (journal
        #: replay) rather than a fresh ``submit()``.
        self.recovered = False
        #: How the recovered job resumes: "checkpoint" | "scratch".
        self.recovery_mode = ""
        #: (spec_index, call_index) crash firings already journaled —
        #: suppressed on re-run so the job converges past its crash.
        self.crash_suppression: set = set()
        #: Outcome digest (see ``repro.service.journal.outcome_digest``)
        #: — the bit-identity certificate recovery verifies against.
        self.digest: "str | None" = None
        #: Canonical fault-log payload captured at completion.
        self.fault_log: "list | None" = None

    @property
    def finished(self) -> bool:
        return self.state in (COMPLETED, FAILED, CANCELLED)

    def describe(self) -> dict:
        """The job's row in ``status()`` and the service report."""
        row = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "app": self.app,
            "entry": self.entry,
            "state": self.state,
            "leased": list(self.leased_families),
        }
        if self.outcome is not None:
            row["simulated_s"] = self.outcome.ledger.total_s
        if self.digest is not None:
            row["digest"] = self.digest
        if self.recovered:
            row["recovered"] = True
            row["recovery_mode"] = self.recovery_mode
        if self.error is not None:
            row["error"] = {
                "type": type(self.error).__name__,
                "message": str(self.error),
                "job_id": getattr(self.error, "job_id", None),
                "tenant": getattr(self.error, "tenant", None),
            }
        return row

    def __repr__(self) -> str:
        return f"<Job {self.job_id} {self.tenant} {self.app} {self.state}>"
