"""Durable job journal for crash-consistent co-execution.

The :class:`JobJournal` is a write-ahead log of every job state
transition the service performs — ``submitted`` / ``admitted`` /
``leased`` / ``running`` / ``completed`` / ``failed`` / ``cancelled``
/ ``crashed`` / ``recovered`` — appended as torn-write-tolerant frames
(length + sha256, see :func:`repro.values.frame_record`) to
``<journal_dir>/journal.rj`` (``repro.journal/1``). The ``submitted``
record carries the job's *full deterministic inputs* (source, entry,
wire-serialized arguments), so a restarted service can re-run the job
bit-identically; the ``completed`` record carries the outcome digest
and enough of the result to satisfy ``result()`` without re-running
(idempotent dedup).

No fsync: the simulated :class:`~repro.errors.ProcessCrash` marks the
journal *dead* — every later append is silently dropped, modeling the
lost writes of a real crash — and on restart
:func:`load_journal` folds the surviving records per job, dropping a
torn tail record exactly (and nothing before it).

``repro.recover/1`` is the machine-readable recovery report the
service's ``recover()`` produces; validate/render helpers follow the
profile/health/service report pattern.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading

from repro.errors import ConfigurationError
from repro.obs.tracer import NULL_TRACER
from repro.values import deserialize, frame_record, serialize, unframe_records

__all__ = [
    "JOURNAL_SCHEMA",
    "RECOVER_SCHEMA",
    "canonical_args",
    "JobJournal",
    "NULL_JOURNAL",
    "JobReplay",
    "JournalSnapshot",
    "load_journal",
    "outcome_digest",
    "RecoveredOutcome",
    "validate_recover_report",
    "validate_recover_file",
    "render_recover_report",
]

#: Schema stamp for journal records.
JOURNAL_SCHEMA = "repro.journal/1"

#: Schema stamp for recovery reports.
RECOVER_SCHEMA = "repro.recover/1"

#: File magic heading every journal file (frames follow).
JOURNAL_MAGIC = b"RJ1\n"

#: Journal file name inside the journal directory.
JOURNAL_FILE = "journal.rj"

#: Per-job checkpoint files live under this subdirectory.
CHECKPOINT_DIR = "checkpoints"

#: Record types a journal may carry, in lifecycle order.
RECORD_TYPES = (
    "submitted", "admitted", "leased", "running",
    "completed", "failed", "cancelled", "crashed", "recovered",
)

#: Terminal record types (the job needs no re-run).
TERMINAL_TYPES = ("completed", "failed", "cancelled")


def canonical_args(args) -> list:
    """One round-trip of job arguments through the wire format.

    Lime's ``float`` is 32-bit on the wire, so a Python double inside
    a ``float[]`` array loses precision the first time it is
    serialized. A journaled service therefore canonicalizes arguments
    *at submit*: the first run and any crash-recovered re-run (whose
    arguments come back out of the journal) execute bit-identical
    inputs. Raises on values outside the wire format.
    """
    return [deserialize(serialize(value)) for value in args]


def outcome_digest(value, output: str, total_s: float,
                   fault_log: list) -> str:
    """The job-outcome digest recovery certifies bit-identity with:
    sha256 over the value's repr, the printed output, the exact
    simulated seconds, and the canonical fault log."""
    h = hashlib.sha256()
    h.update(repr(value).encode("utf-8"))
    h.update(b"\x00")
    h.update(output.encode("utf-8"))
    h.update(b"\x00")
    h.update(repr(float(total_s)).encode("utf-8"))
    h.update(b"\x00")
    h.update(
        json.dumps(
            list(fault_log or []), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    )
    return h.hexdigest()


class _FrozenLedger:
    """The ledger view a journal-deduplicated outcome exposes: the
    recorded totals, immutable."""

    def __init__(self, total_s: float, summary: dict):
        self.total_s = float(total_s)
        self._summary = dict(summary or {})

    def summary(self) -> dict:
        return dict(self._summary)

    def __repr__(self) -> str:
        return f"<_FrozenLedger total_s={self.total_s!r}>"


class RecoveredOutcome:
    """A completed job's outcome reconstructed from its journal record
    — what ``result()`` returns after an idempotent dedup. Quacks like
    :class:`~repro.runtime.engine.RunOutcome` (value / output / ledger
    / seconds) plus the recovery fields (digest, fault_log)."""

    def __init__(self, value, output: str, total_s: float,
                 summary: dict, digest: str, fault_log: list):
        self.value = value
        self.output = output
        self.ledger = _FrozenLedger(total_s, summary)
        self.digest = digest
        self.fault_log = list(fault_log or [])
        self.trace = None

    @property
    def seconds(self) -> float:
        return self.ledger.total_s

    def __repr__(self) -> str:
        return f"<RecoveredOutcome digest={self.digest[:12]}…>"


class JobJournal:
    """Append-only journal over ``<journal_dir>/journal.rj``.

    Writes are framed JSON records; :meth:`mark_dead` models the
    process dying — every subsequent append is dropped, exactly the
    writes a real crash would lose.
    """

    enabled = True

    def __init__(self, journal_dir: str, tracer=NULL_TRACER):
        self.journal_dir = journal_dir
        self.tracer = tracer
        self.path = os.path.join(journal_dir, JOURNAL_FILE)
        self._lock = threading.Lock()
        self._dead = False
        self.records_written = 0
        os.makedirs(os.path.join(journal_dir, CHECKPOINT_DIR),
                    exist_ok=True)
        if not os.path.exists(self.path):
            with open(self.path, "wb") as f:
                f.write(JOURNAL_MAGIC)

    # -- plumbing ------------------------------------------------------

    @property
    def dead(self) -> bool:
        return self._dead

    def mark_dead(self) -> None:
        """The simulated process crash: all later appends are lost."""
        with self._lock:
            self._dead = True
        self.tracer.counters.add("journal.dead")

    def checkpoint_path(self, job_id: str) -> str:
        return os.path.join(
            self.journal_dir, CHECKPOINT_DIR, f"{job_id}.ckpt"
        )

    def append(self, record: dict) -> None:
        payload = json.dumps(
            {"schema": JOURNAL_SCHEMA, **record},
            separators=(",", ":"),
            sort_keys=True,
        ).encode("utf-8")
        frame = frame_record(payload)
        with self._lock:
            if self._dead:
                self.tracer.counters.add("journal.append.dropped")
                return
            with open(self.path, "ab") as f:
                f.write(frame)
            self.records_written += 1
        counters = self.tracer.counters
        counters.add("journal.append")
        counters.add(f"journal.append[{record.get('type')}]")

    # -- record constructors -------------------------------------------

    def record_submitted(self, job) -> None:
        args_wire: "list | None" = []
        for value in job.args:
            try:
                args_wire.append(serialize(value).hex())
            except Exception:
                # Inputs outside the wire format cannot be re-run from
                # the journal; the job is journaled but unrecoverable.
                args_wire = None
                break
        self.append({
            "type": "submitted",
            "job_id": job.job_id,
            "tenant": job.tenant,
            "app": job.app,
            "entry": job.entry,
            "filename": job.filename,
            "source": job.source,
            "args": args_wire,
        })

    def record_admitted(self, job_id: str) -> None:
        self.append({"type": "admitted", "job_id": job_id})

    def record_leased(self, job_id: str, families) -> None:
        self.append({
            "type": "leased", "job_id": job_id,
            "families": list(families),
        })

    def record_running(self, job_id: str) -> None:
        self.append({"type": "running", "job_id": job_id})

    def record_completed(self, job) -> None:
        outcome = job.outcome
        try:
            value_wire = serialize(outcome.value).hex()
        except Exception:
            value_wire = None
        self.append({
            "type": "completed",
            "job_id": job.job_id,
            "digest": job.digest,
            "value": value_wire,
            "value_repr": repr(outcome.value),
            "output": outcome.output,
            "total_s": outcome.ledger.total_s,
            "ledger": outcome.ledger.summary(),
            "fault_log": list(job.fault_log or []),
        })

    def record_failed(self, job_id: str, error: BaseException) -> None:
        self.append({
            "type": "failed",
            "job_id": job_id,
            "error_type": type(error).__name__,
            "error": str(error),
        })

    def record_cancelled(self, job_id: str,
                         error: "BaseException | None" = None) -> None:
        self.append({
            "type": "cancelled",
            "job_id": job_id,
            "error": str(error) if error is not None else "",
        })

    def record_crashed(self, job_id: str, crash) -> None:
        """The one record a dying service gets to write: which crash
        firing killed it — the pair recovery suppresses on re-run."""
        self.append({
            "type": "crashed",
            "job_id": job_id,
            "spec_index": crash.spec_index,
            "call_index": crash.call_index,
            "site": crash.site,
            "target": crash.target,
        })

    def record_recovered(self, job_id: str, mode: str) -> None:
        self.append({"type": "recovered", "job_id": job_id, "mode": mode})

    def __repr__(self) -> str:
        state = "dead" if self._dead else "live"
        return (
            f"<JobJournal {self.path} {state} "
            f"{self.records_written} record(s)>"
        )


class _NullJournal:
    """No-op journal for services running without a journal_dir."""

    enabled = False
    dead = False
    records_written = 0
    path = None

    def mark_dead(self) -> None:
        pass

    def checkpoint_path(self, job_id: str) -> None:
        return None

    def append(self, record: dict) -> None:
        pass

    def record_submitted(self, job) -> None:
        pass

    def record_admitted(self, job_id) -> None:
        pass

    def record_leased(self, job_id, families) -> None:
        pass

    def record_running(self, job_id) -> None:
        pass

    def record_completed(self, job) -> None:
        pass

    def record_failed(self, job_id, error) -> None:
        pass

    def record_cancelled(self, job_id, error=None) -> None:
        pass

    def record_crashed(self, job_id, crash) -> None:
        pass

    def record_recovered(self, job_id, mode) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullJournal>"


NULL_JOURNAL = _NullJournal()


class JobReplay:
    """One job's state folded out of the journal records."""

    def __init__(self, job_id: str):
        self.job_id = job_id
        self.tenant = ""
        self.app = ""
        self.entry = ""
        self.filename = "<lime>"
        self.source = ""
        self.args: "list | None" = []
        self.state = "submitted"       # last journaled lifecycle state
        self.admitted = False
        self.families: list = []
        self.completed: "dict | None" = None
        self.error_type = ""
        self.error = ""
        self.crashes: list = []        # [(spec_index, call_index), ...]
        self.recovered_modes: list = []
        self.unrecoverable = False

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_TYPES

    def apply(self, record: dict) -> None:
        kind = record.get("type")
        if kind == "submitted":
            self.tenant = record.get("tenant", "")
            self.app = record.get("app", "")
            self.entry = record.get("entry", "")
            self.filename = record.get("filename", "<lime>")
            self.source = record.get("source", "")
            wire = record.get("args")
            if wire is None:
                self.args = None
                self.unrecoverable = True
            else:
                self.args = [deserialize(bytes.fromhex(a)) for a in wire]
        elif kind == "admitted":
            self.admitted = True
        elif kind == "leased":
            self.families = list(record.get("families", []))
            self.state = "leased"
        elif kind == "running":
            self.state = "running"
        elif kind in TERMINAL_TYPES:
            self.state = kind
            if kind == "completed":
                self.completed = record
            else:
                self.error_type = record.get("error_type", "")
                self.error = record.get("error", "")
        elif kind == "crashed":
            self.crashes.append(
                (record.get("spec_index", 0), record.get("call_index", 0))
            )
            # A crashed job is not terminal: it re-runs on recovery.
            self.state = "crashed"
        elif kind == "recovered":
            self.recovered_modes.append(record.get("mode", ""))

    def outcome(self) -> RecoveredOutcome:
        """Reconstruct the completed outcome (requires ``completed``)."""
        record = self.completed
        value = None
        if record.get("value") is not None:
            value = deserialize(bytes.fromhex(record["value"]))
        return RecoveredOutcome(
            value=value,
            output=record.get("output", ""),
            total_s=record.get("total_s", 0.0),
            summary=record.get("ledger", {}),
            digest=record.get("digest", ""),
            fault_log=record.get("fault_log", []),
        )

    def __repr__(self) -> str:
        return f"<JobReplay {self.job_id} {self.app} {self.state}>"


class JournalSnapshot:
    """Everything :func:`load_journal` learned from one journal file."""

    def __init__(self, jobs: dict, records: int, torn_bytes: int,
                 existed: bool):
        self.jobs = jobs               # job_id -> JobReplay (in order)
        self.records = records
        self.torn_bytes = torn_bytes
        self.existed = existed

    def __repr__(self) -> str:
        return (
            f"<JournalSnapshot {len(self.jobs)} job(s), "
            f"{self.records} record(s), torn={self.torn_bytes}>"
        )


def load_journal(journal_dir: str) -> JournalSnapshot:
    """Replay a journal directory into per-job folded state. Missing
    file → empty snapshot; a torn tail drops exactly the torn record;
    a record that fails to decode stops the fold there (everything
    after it is unreachable anyway under append-only semantics)."""
    path = os.path.join(journal_dir, JOURNAL_FILE)
    try:
        with open(path, "rb") as f:
            data = f.read()
    except OSError:
        return JournalSnapshot({}, 0, 0, existed=False)
    if not data.startswith(JOURNAL_MAGIC):
        raise ConfigurationError(
            f"{path} is not a repro job journal (bad magic)"
        )
    payloads, torn = unframe_records(data[len(JOURNAL_MAGIC):])
    jobs: dict = {}
    records = 0
    for payload in payloads:
        try:
            record = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            break
        if (
            not isinstance(record, dict)
            or record.get("schema") != JOURNAL_SCHEMA
        ):
            break
        job_id = record.get("job_id")
        if not job_id:
            break
        records += 1
        replay = jobs.get(job_id)
        if replay is None:
            replay = jobs[job_id] = JobReplay(job_id)
        replay.apply(record)
    return JournalSnapshot(jobs, records, torn, existed=True)


# ---------------------------------------------------------------------------
# repro.recover/1 report validation / rendering
# ---------------------------------------------------------------------------

_REPORT_KEYS = ("schema", "journal", "deduped", "recovered", "totals")
_RECOVERED_KEYS = ("job_id", "app", "tenant", "mode", "state")
_MODES = ("checkpoint", "scratch", "unrecoverable")


def validate_recover_report(payload) -> list:
    """Schema check for a ``repro.recover/1`` report; returns problem
    strings (empty = valid)."""
    problems: list = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != RECOVER_SCHEMA:
        problems.append(
            f"schema must be {RECOVER_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for key in _REPORT_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    journal = payload.get("journal")
    if journal is not None and not isinstance(journal, dict):
        problems.append("journal must be an object")
    for name in ("deduped", "recovered"):
        rows = payload.get(name, [])
        if not isinstance(rows, list):
            problems.append(f"{name} must be a list")
            continue
        for index, row in enumerate(rows):
            where = f"{name}[{index}]"
            if not isinstance(row, dict):
                problems.append(f"{where} must be an object")
                continue
            if "job_id" not in row:
                problems.append(f"{where} missing key 'job_id'")
            if name == "recovered":
                for key in _RECOVERED_KEYS:
                    if key not in row:
                        problems.append(f"{where} missing key {key!r}")
                if row.get("mode") not in _MODES:
                    problems.append(
                        f"{where} has unknown mode {row.get('mode')!r}"
                    )
    totals = payload.get("totals")
    if isinstance(totals, dict):
        if totals.get("deduped") != len(payload.get("deduped", []) or []):
            problems.append(
                "totals.deduped disagrees with the deduped list"
            )
        if totals.get("recovered") != len(
            payload.get("recovered", []) or []
        ):
            problems.append(
                "totals.recovered disagrees with the recovered list"
            )
    elif "totals" in payload:
        problems.append("totals must be an object")
    return problems


def validate_recover_file(path: str) -> dict:
    """Load and validate a recovery report; raises on problems."""
    with open(path) as f:
        payload = json.load(f)
    problems = validate_recover_report(payload)
    if problems:
        raise ConfigurationError(
            f"recovery report {path} is invalid: " + "; ".join(problems)
        )
    return payload


def render_recover_report(report: dict) -> str:
    """The human-readable form of a recovery report (CLI default)."""
    lines = []
    journal = report.get("journal", {})
    lines.append(
        "recovery — journal {p}: {r} record(s), {t} torn byte(s)".format(
            p=journal.get("path", "?"),
            r=journal.get("records", 0),
            t=journal.get("torn_bytes", 0),
        )
    )
    lines.append("")
    deduped = report.get("deduped", [])
    for row in deduped:
        digest = row.get("digest") or ""
        lines.append(
            f"{row['job_id']}  [{row.get('state', '?').upper()}]  "
            f"deduped (idempotent replay)"
            + (f"  digest={digest[:12]}" if digest else "")
        )
    for row in report.get("recovered", []):
        digest = row.get("digest") or ""
        lines.append(
            f"{row['job_id']}  {row.get('app', ''):<14} "
            f"[{row.get('state', '?').upper()}]  "
            f"recovered:{row.get('mode')}"
            f"  suppressed={row.get('crashes_suppressed', 0)}"
            + (f"  digest={digest[:12]}" if digest else "")
        )
    if not deduped and not report.get("recovered"):
        lines.append("(nothing to recover)")
    totals = report.get("totals", {})
    lines.append("")
    lines.append(
        "totals: {j} journaled job(s) — {d} deduped, {r} recovered "
        "({c} from checkpoint, {s} from scratch), {x} rejected".format(
            j=totals.get("jobs", 0),
            d=totals.get("deduped", 0),
            r=totals.get("recovered", 0),
            c=totals.get("from_checkpoint", 0),
            s=totals.get("from_scratch", 0),
            x=totals.get("rejected", 0),
        )
    )
    driver = report.get("driver")
    if driver:
        lines.append(
            "driver: {j} job(s), {n} restart(s), {v} verified "
            "bit-identical, {k} checkpoint resume(s)".format(
                j=driver.get("jobs", 0),
                n=driver.get("restarts", 0),
                v=driver.get("verified_jobs", 0),
                k=driver.get("checkpoint_resumes", 0),
            )
        )
    return "\n".join(lines)
