"""Shared device pools: N simulated accelerator slots leased per job.

The co-execution service owns one :class:`DevicePool` holding a fixed
number of slots per device *family* (``gpu``, ``fpga``). A job leases
one slot from every family its substitution policy may offload to —
all-or-nothing, so a job never runs with half its device set and the
concurrent result stays bit-identical to the standalone run. Bytecode
needs no lease: it is the always-available fallback (Section 4.1), so
a job holding zero slots can still make progress.

Leases are handles, not locks: the pool is thread-safe, releases are
idempotent, and the occupancy gauges (``pool.occupancy[family]``)
return to zero when every job has completed, failed, or been
cancelled — the no-leaked-leases invariant the service tests pin.
"""

from __future__ import annotations

import itertools
import threading

from repro.errors import ConfigurationError
from repro.obs.metrics import NULL_METRICS

__all__ = ["DevicePool", "Lease"]


class Lease:
    """One job's hold on device slots (one slot per listed family)."""

    __slots__ = ("lease_id", "families", "released")

    def __init__(self, lease_id: str, families: tuple):
        self.lease_id = lease_id
        self.families = tuple(families)
        self.released = False

    def __repr__(self) -> str:
        state = "released" if self.released else "held"
        return (
            f"<Lease {self.lease_id} "
            f"[{', '.join(self.families) or 'bytecode-only'}] {state}>"
        )


class DevicePool:
    """Thread-safe slot accounting for the simulated device fleet."""

    def __init__(self, slots: dict, metrics=None):
        for family, count in slots.items():
            if count < 0:
                raise ConfigurationError(
                    f"pool slots must be >= 0, got {family}={count}"
                )
        self.slots = dict(slots)
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._lock = threading.Lock()
        self._in_use = {family: 0 for family in self.slots}
        self._peak = {family: 0 for family in self.slots}
        self._ids = itertools.count(1)
        # Lifetime tallies for the service report.
        self.leases_granted = 0
        self.leases_denied = 0
        self.leases_released = 0

    def _gauge(self, family: str) -> None:
        self.metrics.gauge(f"pool.occupancy[{family}]").set(
            self._in_use[family]
        )

    def capacity(self, family: str) -> int:
        """Configured slots for a family (0 when absent)."""
        return self.slots.get(family, 0)

    def available(self, family: str) -> int:
        with self._lock:
            return self.slots.get(family, 0) - self._in_use.get(family, 0)

    def acquire(self, families) -> "Lease | None":
        """Lease one slot from every family in ``families`` — all or
        nothing. Returns None (leaving the pool untouched) when any
        family has no free slot. An empty request always succeeds: the
        job runs bytecode-only and holds nothing."""
        families = tuple(families)
        with self._lock:
            for family in families:
                if family not in self.slots:
                    raise ConfigurationError(
                        f"pool has no {family!r} family "
                        f"(configured: {sorted(self.slots)})"
                    )
                if self._in_use[family] >= self.slots[family]:
                    self.leases_denied += 1
                    return None
            for family in families:
                self._in_use[family] += 1
                if self._in_use[family] > self._peak[family]:
                    self._peak[family] = self._in_use[family]
                self._gauge(family)
            self.leases_granted += 1
            return Lease(f"lease-{next(self._ids)}", families)

    def release(self, lease: "Lease | None") -> None:
        """Return a lease's slots. Idempotent and None-tolerant so the
        job teardown path can call it unconditionally."""
        if lease is None:
            return
        with self._lock:
            if lease.released:
                return
            lease.released = True
            self.leases_released += 1
            for family in lease.families:
                self._in_use[family] -= 1
                self._gauge(family)

    def occupancy(self) -> dict:
        """Current slots-in-use per family."""
        with self._lock:
            return dict(self._in_use)

    def snapshot(self) -> dict:
        """The pool section of the ``repro.service/1`` report."""
        with self._lock:
            return {
                "slots": dict(self.slots),
                "in_use": dict(self._in_use),
                "peak": dict(self._peak),
                "granted": self.leases_granted,
                "denied": self.leases_denied,
                "released": self.leases_released,
            }

    def __repr__(self) -> str:
        with self._lock:
            used = ", ".join(
                f"{family}={self._in_use[family]}/{self.slots[family]}"
                for family in sorted(self.slots)
            )
        return f"<DevicePool {used}>"
