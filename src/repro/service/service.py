"""The long-lived co-execution service (docs/SERVICE.md).

:class:`CoExecutionService` keeps the whole runtime stack alive across
jobs: one :class:`~repro.compiler.CompilerSession` (sharing one
artifact cache and an in-memory compile memo), one *service-scoped*
:class:`~repro.runtime.health.HealthRegistry` (breaker state shared
across jobs — a device quarantined by tenant A's failures is
quarantined for tenant B too, and re-promotes for everyone), one
:class:`~repro.service.pool.DevicePool` of simulated accelerator
slots, and one :class:`~repro.service.admission.AdmissionController`
enforcing bounded per-tenant queues with deterministic weighted
round-robin dispatch.

The API is ``submit / status / result / cancel / drain``. Each
admitted job runs a full task-graph runtime on its own thread with its
own interpreter, timing ledger, and fault injector — simulated time is
per job, so concurrent execution is bit-identical to standalone
execution — while device access is arbitrated by slot leases and the
shared breakers.

Degradation matrix (see docs/SERVICE.md):

==================  =============================================
Pool family full    job stays QUEUED; other tenants' heads tried
Family breaker OPEN job dispatches *without* that family's lease;
                    its spans run bytecode via the shared breaker,
                    advancing the quarantine clock toward probing
Deadline expired    job CANCELLED before it acquires any lease
Cancel mid-run      cooperative stop at the next firing boundary;
                    queues drained, threads joined, lease released
==================  =============================================
"""

from __future__ import annotations

import dataclasses
import threading
import time
from dataclasses import dataclass, field

from repro.backends.common import FPGA, GPU
from repro.compiler import CompileOptions, CompilerSession
from repro.errors import (
    AdmissionRejected,
    ConfigurationError,
    JobCancelledError,
    LiquidMetalError,
)
from repro.obs.metrics import NULL_METRICS
from repro.runtime.engine import Runtime, RuntimeConfig
from repro.runtime.health import HealthRegistry
from repro.service.admission import AdmissionController
from repro.service.jobs import (
    CANCELLED,
    COMPLETED,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
)
from repro.service.pool import DevicePool

__all__ = [
    "SERVICE_SCHEMA",
    "ServiceConfig",
    "CoExecutionService",
    "validate_service_report",
    "validate_service_file",
    "render_service_report",
    "run_service_driver",
]

#: Schema stamp for service reports.
SERVICE_SCHEMA = "repro.service/1"


@dataclass
class ServiceConfig:
    """Knobs for one co-execution service instance."""

    #: Simulated accelerator slots in the shared pool.
    gpu_slots: int = 2
    fpga_slots: int = 1
    #: Concurrent jobs actually executing (threads), not queue depth.
    max_running: int = 4
    #: Per-tenant queued-job bound; over it, submit() rejects.
    max_queue_depth: int = 8
    #: Base runtime config every job derives from (scheduler, retry,
    #: health policy, fault plan, tracer...). Per-job fields
    #: (job_id/tenant/policy) are overridden at dispatch.
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: Compiler options for the service's shared CompilerSession
    #: (point its CacheOptions at a cache_dir to share artifacts).
    compile_options: "CompileOptions | None" = None
    #: Wall clock used for job deadlines and retry-after estimates —
    #: injectable so deadline tests are deterministic.
    clock: object = time.monotonic

    def __post_init__(self):
        if self.gpu_slots < 0 or self.fpga_slots < 0:
            raise ConfigurationError("pool slots must be >= 0")
        if self.max_running < 1:
            raise ConfigurationError(
                f"max_running must be >= 1, got {self.max_running}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1, "
                f"got {self.max_queue_depth}"
            )


class CoExecutionService:
    """A persistent, multi-tenant front end over the runtime stack."""

    def __init__(self, config: "ServiceConfig | None" = None):
        self.config = config or ServiceConfig()
        self.tracer = self.config.runtime.tracer
        self.metrics = getattr(self.tracer, "metrics", NULL_METRICS)
        self.session = CompilerSession(self.config.compile_options)
        # Service-scoped health: one registry for every job's runtime.
        self.health = HealthRegistry(
            self.config.runtime.health, tracer=self.tracer
        )
        self.pool = DevicePool(
            {GPU: self.config.gpu_slots, FPGA: self.config.fpga_slots},
            metrics=self.metrics,
        )
        self.admission = AdmissionController(
            self.config.max_queue_depth, metrics=self.metrics
        )
        self._lock = threading.RLock()
        self._jobs: dict = {}       # job_id -> Job (insertion-ordered)
        self._threads: list = []
        self._seq = 0
        self._running = 0
        self._draining = False

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "CoExecutionService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.drain()

    # -- tenants -----------------------------------------------------------

    def register_tenant(self, name: str, weight: int = 1) -> None:
        """Register a tenant (or change its weight). Submissions for
        unregistered tenants are auto-registered at weight 1."""
        self.admission.register(name, weight)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        source: str,
        entry: str,
        args: "list | None" = None,
        *,
        tenant: str,
        app: str = "",
        filename: str = "<lime>",
        deadline_s: "float | None" = None,
    ) -> str:
        """Admit one job. Returns its job id, or raises the typed
        :class:`~repro.errors.AdmissionRejected` when the tenant's
        queue is at its bound (or the service is draining)."""
        counters = self.tracer.counters
        with self._lock:
            if self._draining:
                counters.add("service.reject")
                raise AdmissionRejected(
                    "service is draining; not admitting new jobs",
                    tenant=tenant,
                    queue_depth=self.admission.queue_depth(tenant),
                    retry_after_s=self.admission.retry_after_hint_s(
                        tenant
                    ),
                    reason="draining",
                )
            if tenant not in (t.name for t in self.admission.tenants()):
                self.admission.register(tenant, 1)
            self._seq += 1
            job = Job(
                job_id=f"job-{self._seq:04d}",
                tenant=tenant,
                source=source,
                entry=entry,
                args=args,
                app=app,
                filename=filename,
                deadline_s=deadline_s,
                clock=self.config.clock,
            )
            try:
                self.admission.enqueue(tenant, job)
            except AdmissionRejected:
                counters.add("service.reject")
                counters.add(f"service.reject[{tenant}]")
                raise
            self._jobs[job.job_id] = job
        # Compile up front (memoized across jobs) so dispatch knows
        # which device families this program can actually use — a
        # gpu-only job must not hold the fpga slot. Compile failures
        # are captured, not raised: the job fails typed when it runs.
        try:
            compiled = self.session.compile_cached(
                source, filename=filename
            )
        except LiquidMetalError as exc:
            job.compile_error = exc
        else:
            job.device_families = tuple(
                family
                for family in self.config.runtime.policy.device_order
                if compiled.store.for_device(family)
            )
        counters.add("service.admit")
        counters.add(f"service.admit[{tenant}]")
        with self.tracer.span(
            "service.job.submit",
            job_id=job.job_id,
            tenant=tenant,
            app=job.app,
            deadline_s=deadline_s,
        ):
            pass
        self._dispatch()
        return job.job_id

    # -- inspection --------------------------------------------------------

    def _job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job id {job_id!r}")
        return job

    def status(self, job_id: str) -> dict:
        """A point-in-time row for one job (state, tenant, leases,
        error if any)."""
        return self._job(job_id).describe()

    def result(self, job_id: str, timeout_s: "float | None" = None):
        """Block until the job finishes; return its
        :class:`~repro.runtime.engine.RunOutcome` or re-raise the
        job's typed error (FAILED and CANCELLED both raise)."""
        job = self._job(job_id)
        if not job.done.wait(timeout_s):
            raise TimeoutError(
                f"job {job_id} still {job.state} after {timeout_s}s"
            )
        if job.state == COMPLETED:
            return job.outcome
        if job.error is not None:
            raise job.error
        raise ConfigurationError(
            f"job {job_id} finished in state {job.state!r} "
            f"without an error record"
        )

    # -- cancellation ------------------------------------------------------

    def cancel(self, job_id: str, reason: str = "cancelled") -> str:
        """Cancel a job. A queued job is removed immediately; a
        running job's token is tripped and its runtime unwinds at the
        next firing boundary (queues drained, lease released). Returns
        the job's state after the attempt (finished jobs are left
        alone)."""
        job = self._job(job_id)
        with self._lock:
            if job.state == QUEUED and self.admission.remove(job):
                job.token.cancel(reason)
                self._finish_unrun(job)
                return job.state
        if job.state == RUNNING:
            job.token.cancel(reason)
        return job.state

    def _finish_unrun(self, job: Job) -> None:
        """Finish a job that never ran (cancelled or deadline-expired
        while queued): record the typed error, count it, wake waiters.
        Caller holds the lock or owns the job."""
        try:
            job.token.check()
        except JobCancelledError as exc:
            job.error = exc
        job.state = CANCELLED
        counters = self.tracer.counters
        counters.add("service.job.cancelled")
        counters.add(f"service.job.cancelled[{job.tenant}]")
        job.done.set()

    # -- dispatch ----------------------------------------------------------

    def _lease_request(self, job: Job) -> tuple:
        """Device families this job should lease: every family its
        compiled program has artifacts for that has configured slots —
        minus any family with an OPEN breaker (graceful degradation:
        the job runs, its spans fall back to bytecode through the
        shared breakers, and the quarantine clock keeps advancing so
        the family can re-promote)."""
        if not self.config.runtime.policy.use_accelerators:
            return ()
        return tuple(
            family
            for family in job.device_families
            if self.pool.capacity(family) > 0
            and not self.health.family_open(family)
        )

    def _dispatch(self) -> None:
        """Fill free running slots from the tenant queues (smooth WRR
        order). A head job whose lease cannot be granted is requeued
        at the front and its tenant skipped for the rest of the round,
        so one starved tenant never blocks the others."""
        to_start: list = []
        with self._lock:
            tried: set = set()
            while self._running + len(to_start) < self.config.max_running:
                job = self.admission.next_job(exclude=tried)
                if job is None:
                    break
                if job.token.cancelled():
                    # Deadline expired (or cancel raced the queue):
                    # finish it before it ever takes a lease.
                    self._finish_unrun(job)
                    continue
                lease = self.pool.acquire(self._lease_request(job))
                if lease is None:
                    self.admission.requeue_front(job)
                    tried.add(job.tenant)
                    continue
                job.lease = lease
                job.leased_families = lease.families
                job.state = RUNNING
                to_start.append(job)
            self._running += len(to_start)
            for job in to_start:
                thread = threading.Thread(
                    target=self._run_job,
                    args=(job,),
                    name=f"svc-{job.job_id}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()

    def _runtime_config(self, job: Job) -> RuntimeConfig:
        base = self.config.runtime
        families = tuple(
            family
            for family in base.policy.device_order
            if self.pool.capacity(family) > 0
        )
        # The job keeps OPEN families in its policy: the shared
        # breakers mediate every batch, serving bytecode while OPEN
        # and shadow-probing in HALF_OPEN — that is how a quarantined
        # family re-promotes across jobs.
        policy = dataclasses.replace(base.policy, device_order=families)
        return base.with_overrides(
            policy=policy, job_id=job.job_id, tenant=job.tenant
        )

    def _run_job(self, job: Job) -> None:
        counters = self.tracer.counters
        start_wall = time.perf_counter()
        runtime = None
        try:
            with self.tracer.span(
                "service.job.run",
                job_id=job.job_id,
                tenant=job.tenant,
                app=job.app,
                leased=",".join(job.leased_families),
            ) as span:
                if job.compile_error is not None:
                    raise job.compile_error
                compiled = self.session.compile_cached(
                    job.source, filename=job.filename
                )
                runtime = Runtime(
                    compiled,
                    self._runtime_config(job),
                    health_registry=self.health,
                    cancel_token=job.token,
                )
                outcome = runtime.run(job.entry, job.args)
                job.outcome = outcome
                job.state = COMPLETED
                span.set(
                    state=COMPLETED, simulated_s=outcome.ledger.total_s
                )
            counters.add("service.job.completed")
            counters.add(f"service.job.completed[{job.tenant}]")
        except JobCancelledError as exc:
            job.error = exc
            job.state = CANCELLED
            counters.add("service.job.cancelled")
            counters.add(f"service.job.cancelled[{job.tenant}]")
        except LiquidMetalError as exc:
            job.error = exc
            job.state = FAILED
            counters.add("service.job.failed")
            counters.add(f"service.job.failed[{job.tenant}]")
        except BaseException as exc:  # defensive: never hang a waiter
            job.error = exc
            job.state = FAILED
            counters.add("service.job.failed")
        finally:
            if runtime is not None:
                # Drain any wreckage a cancellation left behind, then
                # detach the runtime's listener from the shared
                # registry.
                runtime.shutdown_active()
                runtime.close()
            self.pool.release(job.lease)
            job.wall_s = time.perf_counter() - start_wall
            self.admission.observe_duration(job.wall_s)
            with self._lock:
                self._running -= 1
            job.done.set()
            self._dispatch()

    # -- drain -------------------------------------------------------------

    def drain(self, timeout_s: "float | None" = 60.0) -> dict:
        """Stop admitting, finish (or time out on) every job already
        admitted, join worker threads, and return the final service
        report."""
        with self._lock:
            self._draining = True
            jobs = list(self._jobs.values())
        self._dispatch()
        deadline = (
            None if timeout_s is None
            else time.perf_counter() + timeout_s
        )
        for job in jobs:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.perf_counter())
            )
            if not job.done.wait(remaining):
                raise TimeoutError(
                    f"drain timed out waiting on {job.job_id} "
                    f"({job.state})"
                )
        for thread in list(self._threads):
            thread.join(1.0)
        return self.to_report()

    # -- report ------------------------------------------------------------

    def to_report(self) -> dict:
        """The machine-readable service report (``repro.service/1``)."""
        with self._lock:
            jobs = list(self._jobs.values())
            running = self._running
        rows = [job.describe() for job in jobs]
        by_state = {state: 0 for state in JOB_STATES}
        for row in rows:
            by_state[row["state"]] += 1
        by_tenant: dict = {}
        for row in rows:
            slot = by_tenant.setdefault(
                row["tenant"], {state: 0 for state in JOB_STATES}
            )
            slot[row["state"]] += 1
        tenants = []
        for tenant_row in self.admission.snapshot():
            counts = by_tenant.get(
                tenant_row["tenant"], {state: 0 for state in JOB_STATES}
            )
            tenants.append({**tenant_row, **{
                "completed": counts[COMPLETED],
                "failed": counts[FAILED],
                "cancelled": counts[CANCELLED],
            }})
        health_totals = self.health.to_report()["totals"]
        cfg = self.config
        return {
            "schema": SERVICE_SCHEMA,
            "config": {
                "gpu_slots": cfg.gpu_slots,
                "fpga_slots": cfg.fpga_slots,
                "max_running": cfg.max_running,
                "max_queue_depth": cfg.max_queue_depth,
                "scheduler": cfg.runtime.scheduler,
            },
            "tenants": tenants,
            "jobs": rows,
            "pool": self.pool.snapshot(),
            "admission": {
                "admitted": self.admission.total_admitted,
                "rejected": self.admission.total_rejected,
            },
            "health": health_totals,
            "totals": {
                "jobs": len(rows),
                "running": running,
                **by_state,
            },
        }

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"<CoExecutionService jobs={len(self._jobs)} "
                f"running={self._running} "
                f"draining={self._draining}>"
            )


# ---------------------------------------------------------------------------
# Report validation / rendering (the profile/health report pattern)
# ---------------------------------------------------------------------------

_REPORT_KEYS = (
    "schema", "config", "tenants", "jobs", "pool", "admission",
    "health", "totals",
)
_JOB_KEYS = ("job_id", "tenant", "app", "entry", "state", "leased")
_TENANT_KEYS = (
    "tenant", "weight", "queued", "submitted", "admitted", "rejected",
    "completed", "failed", "cancelled",
)


def validate_service_report(payload) -> list:
    """Schema check for a ``repro.service/1`` report; returns problem
    strings (empty = valid)."""
    problems: list = []
    if not isinstance(payload, dict):
        return [f"report must be an object, got {type(payload).__name__}"]
    if payload.get("schema") != SERVICE_SCHEMA:
        problems.append(
            f"schema must be {SERVICE_SCHEMA!r}, "
            f"got {payload.get('schema')!r}"
        )
    for key in _REPORT_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    jobs = payload.get("jobs", [])
    if not isinstance(jobs, list):
        problems.append("jobs must be a list")
        jobs = []
    for index, row in enumerate(jobs):
        where = f"jobs[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _JOB_KEYS:
            if key not in row:
                problems.append(f"{where} missing key {key!r}")
        if row.get("state") not in JOB_STATES:
            problems.append(
                f"{where} has unknown state {row.get('state')!r}"
            )
        if row.get("state") in (FAILED, CANCELLED):
            error = row.get("error")
            if not isinstance(error, dict) or "type" not in error:
                problems.append(
                    f"{where} is {row.get('state')} but has no typed "
                    f"error record"
                )
    for index, row in enumerate(payload.get("tenants", []) or []):
        where = f"tenants[{index}]"
        if not isinstance(row, dict):
            problems.append(f"{where} must be an object")
            continue
        for key in _TENANT_KEYS:
            if key not in row:
                problems.append(f"{where} missing key {key!r}")
    totals = payload.get("totals")
    if isinstance(totals, dict):
        if totals.get("jobs") != len(jobs):
            problems.append("totals.jobs disagrees with the jobs list")
        counted = sum(
            totals.get(state, 0) for state in JOB_STATES
        )
        if counted != len(jobs):
            problems.append(
                "totals per-state counts do not sum to totals.jobs"
            )
    elif "totals" in payload:
        problems.append("totals must be an object")
    pool = payload.get("pool")
    if isinstance(pool, dict):
        in_use = pool.get("in_use", {})
        quiescent = (
            isinstance(totals, dict)
            and totals.get("running", 0) == 0
            and totals.get(QUEUED, 0) == 0
        )
        if quiescent and any(v != 0 for v in in_use.values()):
            problems.append(
                f"leaked device leases: pool.in_use={in_use} with no "
                f"running or queued jobs"
            )
    elif "pool" in payload:
        problems.append("pool must be an object")
    return problems


def validate_service_file(path: str) -> dict:
    """Load and validate a service report; raises on problems."""
    import json

    with open(path) as f:
        payload = json.load(f)
    problems = validate_service_report(payload)
    if problems:
        raise ConfigurationError(
            f"service report {path} is invalid: " + "; ".join(problems)
        )
    return payload


def render_service_report(report: dict) -> str:
    """The human-readable form of a service report (CLI default)."""
    lines = []
    cfg = report.get("config", {})
    lines.append(
        "co-execution service — {s} scheduler, pool gpu={g} fpga={f}, "
        "max_running={r}, queue_depth<={q}".format(
            s=cfg.get("scheduler", "?"),
            g=cfg.get("gpu_slots", "?"),
            f=cfg.get("fpga_slots", "?"),
            r=cfg.get("max_running", "?"),
            q=cfg.get("max_queue_depth", "?"),
        )
    )
    lines.append("")
    for row in report.get("tenants", []):
        lines.append(
            "tenant {t} (w={w}): submitted={s} admitted={a} "
            "rejected={j} completed={c} failed={f} cancelled={x}".format(
                t=row.get("tenant"),
                w=row.get("weight"),
                s=row.get("submitted"),
                a=row.get("admitted"),
                j=row.get("rejected"),
                c=row.get("completed"),
                f=row.get("failed"),
                x=row.get("cancelled"),
            )
        )
    lines.append("")
    for row in report.get("jobs", []):
        extra = ""
        if "simulated_s" in row:
            extra = f"  {row['simulated_s'] * 1e3:.6g}ms"
        if "error" in row:
            extra = f"  {row['error']['type']}: {row['error']['message']}"
        lines.append(
            f"{row['job_id']}  {row['tenant']:<6} {row['app']:<16} "
            f"[{row['state'].upper()}]{extra}"
        )
    pool = report.get("pool", {})
    lines.append("")
    lines.append(
        "pool: slots={slots} peak={peak} in_use={in_use} "
        "granted={granted} denied={denied}".format(
            slots=pool.get("slots"),
            peak=pool.get("peak"),
            in_use=pool.get("in_use"),
            granted=pool.get("granted"),
            denied=pool.get("denied"),
        )
    )
    totals = report.get("totals", {})
    health = report.get("health", {})
    lines.append(
        "totals: {n} job(s) — {c} completed, {f} failed, {x} cancelled; "
        "admission {a} admitted / {r} rejected; health: {b} breaker(s), "
        "{t} trip(s), {p} re-promotion(s)".format(
            n=totals.get("jobs", 0),
            c=totals.get(COMPLETED, 0),
            f=totals.get(FAILED, 0),
            x=totals.get(CANCELLED, 0),
            a=report.get("admission", {}).get("admitted", 0),
            r=report.get("admission", {}).get("rejected", 0),
            b=health.get("breakers", 0),
            t=health.get("trips", 0),
            p=health.get("repromotions", 0),
        )
    )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Deterministic multi-tenant driver (CLI `serve` / make serve-smoke)
# ---------------------------------------------------------------------------

#: Apps the driver cycles through — light, deterministic workloads
#: spanning stream/map/reduce flavors and both device families.
DRIVER_APPS = (
    "bitflip",
    "gray_pipeline",
    "parity",
    "crc8",
    "running_sum",
    "saxpy",
    "vector_sum",
    "convolution",
)


def run_service_driver(
    tenants: int = 3,
    jobs_per_tenant: int = 8,
    gpu_slots: int = 2,
    fpga_slots: int = 1,
    max_running: int = 4,
    max_queue_depth: int = 8,
    scheduler: str = "sequential",
    fault_plan=None,
    stage_timeout_s: "float | None" = 10.0,
    verify: bool = False,
    tracer=None,
) -> dict:
    """Drive a service deterministically: ``tenants`` tenants (weights
    cycling 1,2,3) each submit ``jobs_per_tenant`` jobs cycling over
    :data:`DRIVER_APPS`, then the service drains. Saturation is
    handled honestly: an :class:`AdmissionRejected` submission waits
    for this tenant's oldest unfinished job and retries.

    With ``verify=True`` every completed job is compared against a
    standalone fault-free run of the same app on the same scheduler:
    values and printed output must match bit-identically, and — when
    the driver itself runs fault-free — simulated seconds too. The
    returned ``repro.service/1`` report gains a ``driver`` section
    with the verification tally; mismatches raise.
    """
    from repro.apps import SUITE, workloads

    runtime = RuntimeConfig(
        scheduler=scheduler,
        fault_plan=fault_plan,
        stage_timeout_s=(
            stage_timeout_s if scheduler == "threaded" else None
        ),
    )
    if tracer is not None:
        runtime = runtime.with_overrides(tracer=tracer)
    service = CoExecutionService(ServiceConfig(
        gpu_slots=gpu_slots,
        fpga_slots=fpga_slots,
        max_running=max_running,
        max_queue_depth=max_queue_depth,
        runtime=runtime,
    ))
    for i in range(tenants):
        service.register_tenant(f"t{i}", weight=(i % 3) + 1)

    submitted: list = []        # (job_id, app, tenant)
    pending_by_tenant: dict = {f"t{i}": [] for i in range(tenants)}
    cycle = 0
    for _ in range(jobs_per_tenant):
        for i in range(tenants):
            tenant = f"t{i}"
            app = DRIVER_APPS[cycle % len(DRIVER_APPS)]
            cycle += 1
            entry, args = workloads.small_args(app)
            while True:
                try:
                    job_id = service.submit(
                        SUITE[app].source,
                        entry,
                        args,
                        tenant=tenant,
                        app=app,
                        filename=f"<{app}.lime>",
                    )
                    submitted.append((job_id, app, tenant))
                    pending_by_tenant[tenant].append(job_id)
                    break
                except AdmissionRejected:
                    # Honest backpressure: wait out the oldest job we
                    # have in flight for this tenant, then retry.
                    waiting = pending_by_tenant[tenant]
                    if not waiting:
                        raise
                    service.result(waiting.pop(0), timeout_s=60.0)

    report = service.drain()

    if verify:
        solo_cache: dict = {}
        checked = 0
        for job_id, app, _tenant in submitted:
            outcome = service.result(job_id)
            if app not in solo_cache:
                entry, args = workloads.small_args(app)
                compiled = service.session.compile_cached(
                    SUITE[app].source, filename=f"<{app}.lime>"
                )
                solo = Runtime(
                    compiled, RuntimeConfig(scheduler=scheduler)
                ).run(entry, args)
                solo_cache[app] = solo
            solo = solo_cache[app]
            if repr(outcome.value) != repr(solo.value):
                raise LiquidMetalError(
                    f"{job_id} ({app}): concurrent value diverged "
                    f"from the standalone run"
                )
            if outcome.output != solo.output:
                raise LiquidMetalError(
                    f"{job_id} ({app}): concurrent output diverged "
                    f"from the standalone run"
                )
            if fault_plan is None and (
                outcome.ledger.total_s != solo.ledger.total_s
            ):
                raise LiquidMetalError(
                    f"{job_id} ({app}): simulated seconds diverged "
                    f"({outcome.ledger.total_s} != "
                    f"{solo.ledger.total_s})"
                )
            checked += 1
        report["driver"] = {
            "verified_jobs": checked,
            "apps": sorted(solo_cache),
            "timing_checked": fault_plan is None,
        }
    return report
